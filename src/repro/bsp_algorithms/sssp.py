"""Single-source shortest paths in the BSP model.

The distance-flooding generalization of Algorithm 2 to weighted edges —
the algorithm behind the paper's Kajdanowicz et al. comparison (Giraph
SSSP on a Twitter graph, §IV).  A vertex adopting a shorter distance
floods ``distance + w(v, n)`` to each neighbour ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.bsp_algorithms._scatter import arcs_from
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPShortestPaths", "BSPSSSPResult", "bsp_sssp"]


class BSPShortestPaths(VertexProgram):
    """Weighted distance flooding (Pregel's canonical SSSP)."""

    def __init__(self, source: int):
        self.source = int(source)

    def initial_value(self, vertex: int, graph) -> float:
        return 0.0 if vertex == self.source else float("inf")

    def compute(self, ctx: VertexContext, messages: Sequence[float]) -> None:
        dist = min(messages) if messages else float("inf")
        improved = dist < ctx.value
        if improved:
            ctx.value = dist
        if improved or (ctx.superstep == 0 and ctx.vertex_id == self.source):
            nbrs = ctx.neighbors()
            try:
                weights = ctx.edge_weights()
            except ValueError:  # unweighted graph: unit arcs
                weights = np.ones(nbrs.size)
            for n, w in zip(nbrs.tolist(), weights.tolist()):
                ctx.send(n, ctx.value + w)
        ctx.vote_to_halt()


@dataclass
class BSPSSSPResult:
    """Outcome of the vectorized BSP shortest paths."""

    source: int
    #: Shortest distances; +inf for unreachable vertices.
    distances: np.ndarray
    num_supersteps: int
    active_per_superstep: list[int] = field(default_factory=list)
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)


def bsp_sssp(
    graph: CSRGraph,
    source: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 100_000,
) -> BSPSSSPResult:
    """Vectorized BSP SSSP (unit weights when the graph is unweighted)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    if graph.weights is not None and graph.weights.size and graph.weights.min() < 0:
        raise ValueError("bsp_sssp requires non-negative weights")
    tracer = Tracer(label="bsp/sssp")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    deg = graph.degrees()
    row_ptr, col_idx = graph.row_ptr, graph.col_idx
    src = graph.arc_sources()
    weights = (
        graph.weights if graph.weights is not None else np.ones(col_idx.size)
    )

    active_hist: list[int] = []
    message_hist: list[int] = []

    senders = np.asarray([source], dtype=np.int64)
    sent = int(deg[senders].sum())
    enq = np.zeros(n, dtype=np.int64)
    np.add.at(enq, col_idx[row_ptr[source]: row_ptr[source + 1]], 1)
    record_superstep(
        tracer, superstep=0, active=n, received=0, sent=sent,
        enqueues_per_destination=enq if sent else None, costs=costs,
    )
    active_hist.append(n)
    message_hist.append(sent)

    superstep = 1
    while sent and superstep < max_supersteps:
        arc_mask = arcs_from(senders, row_ptr)
        dst = col_idx[arc_mask]
        payload = dist[src[arc_mask]] + weights[arc_mask]
        received = int(dst.size)

        incoming = np.full(n, np.inf)
        np.minimum.at(incoming, dst, payload)
        receivers = np.unique(dst)
        improved = receivers[incoming[receivers] < dist[receivers]]
        dist[improved] = incoming[improved]

        active = int(receivers.size)
        senders = improved
        sent = int(deg[senders].sum())
        enq = np.zeros(n, dtype=np.int64)
        if sent:
            np.add.at(enq, col_idx[arcs_from(senders, row_ptr)], 1)
        record_superstep(
            tracer, superstep=superstep, active=active, received=received,
            sent=sent, enqueues_per_destination=enq if sent else None,
            costs=costs,
        )
        active_hist.append(active)
        message_hist.append(sent)
        superstep += 1

    return BSPSSSPResult(
        source=source,
        distances=dist,
        num_supersteps=superstep,
        active_per_superstep=active_hist,
        messages_per_superstep=message_hist,
        trace=tracer.trace,
    )
