"""Single-source shortest paths in the BSP model.

The distance-flooding generalization of Algorithm 2 to weighted edges —
the algorithm behind the paper's Kajdanowicz et al. comparison (Giraph
SSSP on a Twitter graph, §IV).  A vertex adopting a shorter distance
floods ``distance + w(v, n)`` to each neighbour ``n``.

The module pairs the per-vertex :class:`BSPShortestPaths` (run by the
reference engine) with the whole-superstep :class:`DenseShortestPaths`
(run by the :class:`~repro.bsp.dense.DenseBSPEngine` — the benchmark
path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp import engine_for
from repro.bsp.dense import DenseSuperstepContext, DenseVertexProgram
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "BSPShortestPaths",
    "BSPSSSPResult",
    "DenseShortestPaths",
    "bsp_sssp",
]


class BSPShortestPaths(VertexProgram):
    """Weighted distance flooding (Pregel's canonical SSSP)."""

    def __init__(self, source: int):
        self.source = int(source)

    def initial_value(self, vertex: int, graph) -> float:
        return 0.0 if vertex == self.source else float("inf")

    def compute(self, ctx: VertexContext, messages: Sequence[float]) -> None:
        dist = min(messages) if messages else float("inf")
        improved = dist < ctx.value
        if improved:
            ctx.value = dist
        if improved or (ctx.superstep == 0 and ctx.vertex_id == self.source):
            nbrs = ctx.neighbors()
            try:
                weights = ctx.edge_weights()
            except ValueError:  # unweighted graph: unit arcs
                weights = np.ones(nbrs.size)
            for n, w in zip(nbrs.tolist(), weights.tolist()):
                ctx.send(n, ctx.value + w)
        ctx.vote_to_halt()


class DenseShortestPaths(DenseVertexProgram):
    """Weighted distance flooding as whole-superstep array kernels."""

    combine = np.minimum
    combine_identity = np.inf
    message_dtype = np.float64

    def __init__(self, source: int):
        self.source = int(source)

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        """Distance 0 at the source, infinity elsewhere."""
        dist = np.full(graph.num_vertices, np.inf)
        dist[self.source] = 0.0
        return dist

    def arc_payload(
        self, graph: CSRGraph, values: np.ndarray, selection: np.ndarray
    ) -> np.ndarray:
        """A sender floods its distance plus the arc weight (unit arcs
        when the graph is unweighted)."""
        payload = values[graph.arc_sources()[selection]]
        if graph.weights is not None:
            return payload + graph.weights[selection]
        return payload + 1.0

    def compute(self, ctx: DenseSuperstepContext) -> np.ndarray | None:
        ctx.vote_to_halt()
        if ctx.superstep == 0:
            return np.asarray([self.source], dtype=np.int64)
        dist, receivers = ctx.values, ctx.receivers
        improved = receivers[ctx.messages[receivers] < dist[receivers]]
        dist[improved] = ctx.messages[improved]
        return improved


@dataclass
class BSPSSSPResult:
    """Outcome of the dense-engine BSP shortest paths."""

    source: int
    #: Shortest distances; +inf for unreachable vertices.
    distances: np.ndarray
    num_supersteps: int
    active_per_superstep: list[int] = field(default_factory=list)
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)


def bsp_sssp(
    graph: CSRGraph,
    source: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 100_000,
    num_workers: int | None = None,
    partition: str = "hash",
    telemetry=None,
    engine=None,
) -> BSPSSSPResult:
    """Dense-engine BSP SSSP (unit weights when the graph is unweighted).

    ``num_workers`` > 1 shards the scatter/gather over that many worker
    processes under the given ``partition`` placement (distances are
    unaffected — min-combine folds are exact at any partition).
    ``telemetry`` records wall-clock spans without affecting results.
    ``engine`` reuses a warm caller-owned engine built on this graph
    (left open afterwards; the engine-construction kwargs are then
    ignored).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    if graph.weights is not None and graph.weights.size and graph.weights.min() < 0:
        raise ValueError("bsp_sssp requires non-negative weights")
    with engine_for(
        graph,
        engine,
        num_workers=num_workers,
        partition=partition,
        costs=costs,
        telemetry=telemetry,
    ) as eng:
        result = eng.run(
            DenseShortestPaths(source),
            max_supersteps=max_supersteps,
            trace_label="bsp/sssp",
        )
    return BSPSSSPResult(
        source=source,
        distances=result.values,
        num_supersteps=result.num_supersteps,
        active_per_superstep=result.active_per_superstep,
        messages_per_superstep=result.messages_per_superstep,
        trace=result.trace,
    )
