"""Triangle counting in the BSP model (paper Algorithm 3).

Three supersteps replace the shared-memory triply-nested loop:

* **superstep 0** — every vertex v sends its id to each neighbour n with
  ``v < n``  (one message per undirected edge);
* **superstep 1** — each received id ``m`` is retransmitted to every
  neighbour ``n`` with ``m < v < n``  (one message per *possible
  triangle*, i.e. per ordered wedge — this is the explosion);
* **superstep 2** — a vertex receiving ``m`` checks ``m ∈ Neighbors(v)``;
  on a hit a triangle ``m < sender < v`` exists and a found-notification
  is sent back to ``m`` (delivered in a final drain superstep).

"Although this algorithm is easy to express in the model, the number of
messages generated is much larger than the number of edges" (§V): the
paper counts 5.5 billion possible-triangle messages against 30.9 million
actual triangles — 181x the shared-memory writes for 9.4x the time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.graph.dag import ascending_orientation
from repro.graph.wedges import (
    WEDGE_BATCH,
    WedgeIndex,
    build_wedge_index,
    iter_closed_wedges,
)
from repro.runtime.loops import Tracer
from repro.telemetry.core import NULL_TELEMETRY, worker_track
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "BSPTriangleCounting",
    "BSPTriangleResult",
    "bsp_count_triangles",
]


class BSPTriangleCounting(VertexProgram):
    """Algorithm 3, verbatim vertex program.

    After the run, each vertex's state holds the number of triangles in
    which it is the *minimum-id* corner (the found-notifications of the
    final superstep); summing all states gives the triangle count.
    """

    def initial_value(self, vertex: int, graph) -> int:
        return 0

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        v = ctx.vertex_id
        if ctx.superstep == 0:                      # lines 1-4
            for n in ctx.neighbors().tolist():
                if v < n:
                    ctx.send(n, v)
        elif ctx.superstep == 1:                    # lines 5-9
            nbrs = ctx.neighbors().tolist()
            for m in messages:
                for n in nbrs:
                    if m < v < n:
                        ctx.send(n, m)
        elif ctx.superstep == 2:                    # lines 10-13
            nbrs = set(ctx.neighbors().tolist())
            for m in messages:
                if m in nbrs:
                    ctx.send(m, m)
        else:
            # Drain superstep: count the found-notifications.
            ctx.value = ctx.value + len(messages)
        ctx.vote_to_halt()


@dataclass
class BSPTriangleResult:
    """Outcome of the vectorized BSP triangle counting."""

    total_triangles: int
    #: Triangles counted at their minimum-id corner.
    per_vertex: np.ndarray
    #: Possible triangles materialized as superstep-1 messages.
    possible_triangles: int
    num_supersteps: int
    messages_per_superstep: list[int] = field(default_factory=list)
    active_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)


# -- sharded closure scan (multiprocessing.Pool helpers) ---------------
_SCAN_INDEX: WedgeIndex | None = None


def _scan_init(index: WedgeIndex) -> None:
    """Pool initializer: stash the wedge index once per worker."""
    global _SCAN_INDEX
    _SCAN_INDEX = index


def _scan_arc_range(
    arc_range: tuple[int, int],
) -> tuple[int, np.ndarray, int]:
    """Closure-scan one contiguous out-arc range.

    Returns ``(closed, per_vertex, busy_ns)`` — the triangle count of
    the range, the per-minimum-corner histogram, and the worker's busy
    time for telemetry attribution.
    """
    t0 = time.perf_counter_ns()
    index = _SCAN_INDEX
    n = index.num_vertices
    per_vertex = np.zeros(n, dtype=np.int64)
    closed = 0
    for u, _centre, _w, hit in iter_closed_wedges(
        index, batch_size=WEDGE_BATCH, arc_range=arc_range
    ):
        hits = int(np.count_nonzero(hit))
        closed += hits
        if hits:
            per_vertex += np.bincount(u[hit], minlength=n)
    return closed, per_vertex, time.perf_counter_ns() - t0


def _arc_ranges(index: WedgeIndex, num_workers: int) -> list[tuple[int, int]]:
    """Split the out-arcs into contiguous ranges of ~equal wedge load."""
    m = int(index.dag_dst.size)
    cum = np.concatenate([[0], np.cumsum(index.wedges_per_arc)])
    total = int(cum[-1])
    bounds = [0]
    for i in range(1, num_workers):
        b = int(np.searchsorted(cum, total * i // num_workers))
        bounds.append(min(max(b, bounds[-1]), m))
    bounds.append(m)
    return [(bounds[i], bounds[i + 1]) for i in range(num_workers)]


def bsp_count_triangles(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    num_workers: int | None = None,
    telemetry=None,
) -> BSPTriangleResult:
    """Vectorized whole-superstep execution of Algorithm 3.

    ``num_workers`` > 1 shards the superstep-2 closure scan (the
    dominant cost — one membership test per possible triangle) over a
    process pool, each worker taking one contiguous out-arc range of
    roughly equal wedge load.  Per-range triangle counts and
    per-minimum-corner histograms are integers, so the merge is exact
    and the result is bit-identical to the serial scan.  ``telemetry``
    records one wall-clock span per superstep plus per-worker scan
    spans, without affecting results.
    """
    if graph.directed:
        raise ValueError("BSP triangle counting requires an undirected graph")
    tel = NULL_TELEMETRY if telemetry is None else telemetry
    n = graph.num_vertices
    tracer = Tracer(label="bsp/triangles")
    dag = ascending_orientation(graph)
    # Wedge enumeration + closure check shared with the GraphCT kernel
    # ("both algorithms perform the same number of reads to the graph").
    index = build_wedge_index(dag)
    dag_dst = index.dag_dst
    in_degree = index.in_degree
    wedges_per_arc = index.wedges_per_arc

    message_hist: list[int] = []
    active_hist: list[int] = []

    deg = graph.degrees()

    # --- superstep 0: v -> n for v < n: one message per undirected edge.
    # Every vertex scans its full neighbour list to apply the v < n test.
    step_start = tel.now()
    s0_sent = int(dag_dst.size)
    enq0 = in_degree
    record_superstep(
        tracer, superstep=0, active=n, received=0, sent=s0_sent,
        enqueues_per_destination=enq0 if s0_sent else None, costs=costs,
        compute_reads=float(graph.num_arcs),
        compute_instructions=graph.num_arcs * costs.edge_visit_instructions,
    )
    message_hist.append(s0_sent)
    active_hist.append(n)
    if tel.enabled:
        tel.add_span(
            "superstep", step_start, tel.now(), category="superstep",
            superstep=0, active=n, sent=s0_sent, received=0,
        )
        tel.counter("messages_sent", s0_sent, superstep=0)

    # --- superstep 1: each message m at v fans out to neighbours n > v.
    # Receivers of superstep-0 messages are the DAG arc destinations;
    # vertex v receives in_degree(v) messages and forwards each to its
    # out_degree(v) higher neighbours: wedge count = sum in*out.
    step_start = tel.now()
    s1_sent = index.total_wedges
    enq1 = (
        np.bincount(dag_dst, weights=wedges_per_arc, minlength=n).astype(
            np.int64
        )
        if s1_sent
        else np.zeros(n, dtype=np.int64)
    )
    s0_receivers = int(np.count_nonzero(in_degree))
    # Each received message m is tested against every neighbour of v
    # (the m < v < n filter scans the whole list).
    s1_scan = float(np.sum(in_degree * deg))
    record_superstep(
        tracer, superstep=1, active=s0_receivers, received=s0_sent,
        sent=s1_sent, enqueues_per_destination=enq1 if s1_sent else None,
        costs=costs,
        compute_reads=s1_scan,
        compute_instructions=s1_scan * costs.edge_visit_instructions,
    )
    message_hist.append(s1_sent)
    active_hist.append(s0_receivers)
    if tel.enabled:
        tel.add_span(
            "superstep", step_start, tel.now(), category="superstep",
            superstep=1, active=s0_receivers, sent=s1_sent,
            received=s0_sent,
        )
        tel.counter("messages_sent", s1_sent, superstep=1)

    # --- superstep 2: closure check m ∈ Neighbors(v); hits notify m.
    # Each wedge is one message (payload u = m, destination w); a hit
    # notifies the minimum corner m.
    step_start = tel.now()
    per_vertex = np.zeros(n, dtype=np.int64)
    total_triangles = 0
    if num_workers is not None and num_workers > 1 and s1_sent:
        # Sharded closure scan: disjoint contiguous out-arc ranges
        # partition the wedge set; integer merges keep the count and
        # histogram bit-identical to the serial scan.
        method = "fork" if "fork" in get_all_start_methods() else "spawn"
        ranges = _arc_ranges(index, num_workers)
        with get_context(method).Pool(
            processes=num_workers, initializer=_scan_init, initargs=(index,)
        ) as pool:
            for wkr, (closed, hist, busy_ns) in enumerate(
                pool.imap(_scan_arc_range, ranges)
            ):
                total_triangles += closed
                per_vertex += hist
                if tel.enabled:
                    t_recv = tel.now()
                    tel.add_span(
                        "scan", max(step_start, t_recv - busy_ns), t_recv,
                        category="worker", track=worker_track(wkr),
                        superstep=2, worker=wkr,
                        arcs=int(ranges[wkr][1] - ranges[wkr][0]),
                        closed=int(closed),
                    )
    else:
        for u, _centre, _w, hit in iter_closed_wedges(
            index, batch_size=WEDGE_BATCH
        ):
            closed = int(np.count_nonzero(hit))
            total_triangles += closed
            if closed:
                per_vertex += np.bincount(u[hit], minlength=n)

    s1_receivers = int(np.count_nonzero(enq1))
    s2_sent = total_triangles                     # found-notifications
    enq2 = per_vertex                             # one message per hit, to m
    # Membership test m in Neighbors(v): binary search over the sorted
    # adjacency list, one probe chain per wedge message.
    probe_depth = np.ceil(np.log2(np.maximum(deg[dag_dst], 2)))
    s2_scan = float(np.sum(wedges_per_arc * probe_depth))
    record_superstep(
        tracer, superstep=2, active=s1_receivers, received=s1_sent,
        sent=s2_sent, enqueues_per_destination=enq2 if s2_sent else None,
        costs=costs,
        compute_reads=s2_scan,
        compute_instructions=s2_scan * costs.intersection_step_instructions,
    )
    message_hist.append(s2_sent)
    active_hist.append(s1_receivers)
    if tel.enabled:
        tel.add_span(
            "superstep", step_start, tel.now(), category="superstep",
            superstep=2, active=s1_receivers, sent=s2_sent,
            received=s1_sent,
        )
        tel.counter("messages_sent", s2_sent, superstep=2)

    # --- drain superstep: deliver the notifications.
    num_supersteps = 3
    if s2_sent:
        step_start = tel.now()
        s2_receivers = int(np.count_nonzero(per_vertex))
        record_superstep(
            tracer, superstep=3, active=s2_receivers, received=s2_sent,
            sent=0, enqueues_per_destination=None, costs=costs,
        )
        message_hist.append(0)
        active_hist.append(s2_receivers)
        num_supersteps = 4
        if tel.enabled:
            tel.add_span(
                "superstep", step_start, tel.now(), category="superstep",
                superstep=3, active=s2_receivers, sent=0,
                received=s2_sent,
            )
            tel.counter("messages_sent", 0, superstep=3)

    return BSPTriangleResult(
        total_triangles=total_triangles,
        per_vertex=per_vertex,
        possible_triangles=s1_sent,
        num_supersteps=num_supersteps,
        messages_per_superstep=message_hist,
        active_per_superstep=active_hist,
        trace=tracer.trace,
    )
