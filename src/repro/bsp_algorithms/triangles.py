"""Triangle counting in the BSP model (paper Algorithm 3).

Three supersteps replace the shared-memory triply-nested loop:

* **superstep 0** — every vertex v sends its id to each neighbour n with
  ``v < n``  (one message per undirected edge);
* **superstep 1** — each received id ``m`` is retransmitted to every
  neighbour ``n`` with ``m < v < n``  (one message per *possible
  triangle*, i.e. per ordered wedge — this is the explosion);
* **superstep 2** — a vertex receiving ``m`` checks ``m ∈ Neighbors(v)``;
  on a hit a triangle ``m < sender < v`` exists and a found-notification
  is sent back to ``m`` (delivered in a final drain superstep).

"Although this algorithm is easy to express in the model, the number of
messages generated is much larger than the number of edges" (§V): the
paper counts 5.5 billion possible-triangle messages against 30.9 million
actual triangles — 181x the shared-memory writes for 9.4x the time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.graph.dag import ascending_orientation
from repro.graph.wedges import (
    WEDGE_BATCH,
    build_wedge_index,
    iter_closed_wedges,
)
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "BSPTriangleCounting",
    "BSPTriangleResult",
    "bsp_count_triangles",
]


class BSPTriangleCounting(VertexProgram):
    """Algorithm 3, verbatim vertex program.

    After the run, each vertex's state holds the number of triangles in
    which it is the *minimum-id* corner (the found-notifications of the
    final superstep); summing all states gives the triangle count.
    """

    def initial_value(self, vertex: int, graph) -> int:
        return 0

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        v = ctx.vertex_id
        if ctx.superstep == 0:                      # lines 1-4
            for n in ctx.neighbors().tolist():
                if v < n:
                    ctx.send(n, v)
        elif ctx.superstep == 1:                    # lines 5-9
            nbrs = ctx.neighbors().tolist()
            for m in messages:
                for n in nbrs:
                    if m < v < n:
                        ctx.send(n, m)
        elif ctx.superstep == 2:                    # lines 10-13
            nbrs = set(ctx.neighbors().tolist())
            for m in messages:
                if m in nbrs:
                    ctx.send(m, m)
        else:
            # Drain superstep: count the found-notifications.
            ctx.value = ctx.value + len(messages)
        ctx.vote_to_halt()


@dataclass
class BSPTriangleResult:
    """Outcome of the vectorized BSP triangle counting."""

    total_triangles: int
    #: Triangles counted at their minimum-id corner.
    per_vertex: np.ndarray
    #: Possible triangles materialized as superstep-1 messages.
    possible_triangles: int
    num_supersteps: int
    messages_per_superstep: list[int] = field(default_factory=list)
    active_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)


def bsp_count_triangles(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
) -> BSPTriangleResult:
    """Vectorized whole-superstep execution of Algorithm 3."""
    if graph.directed:
        raise ValueError("BSP triangle counting requires an undirected graph")
    n = graph.num_vertices
    tracer = Tracer(label="bsp/triangles")
    dag = ascending_orientation(graph)
    # Wedge enumeration + closure check shared with the GraphCT kernel
    # ("both algorithms perform the same number of reads to the graph").
    index = build_wedge_index(dag)
    dag_dst = index.dag_dst
    in_degree = index.in_degree
    wedges_per_arc = index.wedges_per_arc

    message_hist: list[int] = []
    active_hist: list[int] = []

    deg = graph.degrees()

    # --- superstep 0: v -> n for v < n: one message per undirected edge.
    # Every vertex scans its full neighbour list to apply the v < n test.
    s0_sent = int(dag_dst.size)
    enq0 = in_degree
    record_superstep(
        tracer, superstep=0, active=n, received=0, sent=s0_sent,
        enqueues_per_destination=enq0 if s0_sent else None, costs=costs,
        compute_reads=float(graph.num_arcs),
        compute_instructions=graph.num_arcs * costs.edge_visit_instructions,
    )
    message_hist.append(s0_sent)
    active_hist.append(n)

    # --- superstep 1: each message m at v fans out to neighbours n > v.
    # Receivers of superstep-0 messages are the DAG arc destinations;
    # vertex v receives in_degree(v) messages and forwards each to its
    # out_degree(v) higher neighbours: wedge count = sum in*out.
    s1_sent = index.total_wedges
    enq1 = (
        np.bincount(dag_dst, weights=wedges_per_arc, minlength=n).astype(
            np.int64
        )
        if s1_sent
        else np.zeros(n, dtype=np.int64)
    )
    s0_receivers = int(np.count_nonzero(in_degree))
    # Each received message m is tested against every neighbour of v
    # (the m < v < n filter scans the whole list).
    s1_scan = float(np.sum(in_degree * deg))
    record_superstep(
        tracer, superstep=1, active=s0_receivers, received=s0_sent,
        sent=s1_sent, enqueues_per_destination=enq1 if s1_sent else None,
        costs=costs,
        compute_reads=s1_scan,
        compute_instructions=s1_scan * costs.edge_visit_instructions,
    )
    message_hist.append(s1_sent)
    active_hist.append(s0_receivers)

    # --- superstep 2: closure check m ∈ Neighbors(v); hits notify m.
    # Each wedge is one message (payload u = m, destination w); a hit
    # notifies the minimum corner m.
    per_vertex = np.zeros(n, dtype=np.int64)
    total_triangles = 0
    for u, _centre, _w, hit in iter_closed_wedges(
        index, batch_size=WEDGE_BATCH
    ):
        closed = int(np.count_nonzero(hit))
        total_triangles += closed
        if closed:
            per_vertex += np.bincount(u[hit], minlength=n)

    s1_receivers = int(np.count_nonzero(enq1))
    s2_sent = total_triangles                     # found-notifications
    enq2 = per_vertex                             # one message per hit, to m
    # Membership test m in Neighbors(v): binary search over the sorted
    # adjacency list, one probe chain per wedge message.
    probe_depth = np.ceil(np.log2(np.maximum(deg[dag_dst], 2)))
    s2_scan = float(np.sum(wedges_per_arc * probe_depth))
    record_superstep(
        tracer, superstep=2, active=s1_receivers, received=s1_sent,
        sent=s2_sent, enqueues_per_destination=enq2 if s2_sent else None,
        costs=costs,
        compute_reads=s2_scan,
        compute_instructions=s2_scan * costs.intersection_step_instructions,
    )
    message_hist.append(s2_sent)
    active_hist.append(s1_receivers)

    # --- drain superstep: deliver the notifications.
    num_supersteps = 3
    if s2_sent:
        s2_receivers = int(np.count_nonzero(per_vertex))
        record_superstep(
            tracer, superstep=3, active=s2_receivers, received=s2_sent,
            sent=0, enqueues_per_destination=None, costs=costs,
        )
        message_hist.append(0)
        active_hist.append(s2_receivers)
        num_supersteps = 4

    return BSPTriangleResult(
        total_triangles=total_triangles,
        per_vertex=per_vertex,
        possible_triangles=s1_sent,
        num_supersteps=num_supersteps,
        messages_per_superstep=message_hist,
        active_per_superstep=active_hist,
        trace=tracer.trace,
    )
