"""Community detection by label propagation in the BSP model.

The synchronous counterpart of
:func:`repro.graphct.community.label_propagation_communities`: every
superstep each vertex floods its label and adopts the plurality label of
the messages received in the *next* superstep.  Because all updates use
the previous superstep's labels (the stale-data property the paper
analyzes for connected components), synchronous LPA can oscillate on
bipartite-like structures; the keep-own-label-on-ties rule quiets most
oscillation and ``max_supersteps`` bounds the rest (community-free
inputs like plain RMAT legitimately churn to the cap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.bsp._scatter import enqueue_histogram
from repro.graph.csr import CSRGraph
from repro.graphct.community import _tie_jitter, modularity
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "BSPLabelPropagation",
    "BSPCommunityResult",
    "bsp_label_propagation_communities",
]


def _plurality(labels: np.ndarray, current: int, superstep: int, seed: int, vertex: int) -> int:
    """Most frequent value; ties keep ``current`` when possible, else
    break by the seeded hash jitter (deterministic random)."""
    values, counts = np.unique(labels, return_counts=True)
    top = values[counts == counts.max()]
    if current in top:
        return int(current)
    score = counts + _tie_jitter(values, superstep, seed, context=vertex)
    return int(values[np.argmax(score)])


class BSPLabelPropagation(VertexProgram):
    """Synchronous label propagation as a vertex program."""

    def __init__(self, max_supersteps: int = 50, seed: int = 0):
        self.max_supersteps = max_supersteps
        self.seed = seed

    def initial_value(self, vertex: int, graph) -> int:
        return vertex

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        if ctx.superstep == 0:
            ctx.send_to_neighbors(ctx.value)
            ctx.vote_to_halt()
            return
        changed = False
        if messages:
            best = _plurality(
                np.asarray(messages), ctx.value, ctx.superstep, self.seed,
                ctx.vertex_id
            )
            if best != ctx.value:
                ctx.value = best
                changed = True
        if changed and ctx.superstep < self.max_supersteps:
            ctx.send_to_neighbors(ctx.value)
        ctx.vote_to_halt()


@dataclass
class BSPCommunityResult:
    """Outcome of the vectorized BSP label propagation."""

    labels: np.ndarray
    num_communities: int
    num_supersteps: int
    messages_per_superstep: list[int] = field(default_factory=list)
    modularity: float = 0.0
    trace: WorkTrace = field(default_factory=WorkTrace)


def bsp_label_propagation_communities(
    graph: CSRGraph,
    *,
    max_supersteps: int = 50,
    seed: int = 0,
    costs: KernelCosts = DEFAULT_COSTS,
) -> BSPCommunityResult:
    """Vectorized synchronous label propagation.

    Partitions need not equal the shared-memory kernel's (synchronous
    updates see one-superstep-stale labels — the same model effect the
    paper quantifies for connected components); the tests assert
    *quality* (valid labels, comparable modularity) rather than label
    equality.
    """
    if graph.directed:
        raise ValueError("community detection requires an undirected graph")
    if max_supersteps < 1:
        raise ValueError("max_supersteps must be >= 1")
    n = graph.num_vertices
    tracer = Tracer(label="bsp/community")
    labels = np.arange(n, dtype=np.int64)
    deg = graph.degrees()
    src = graph.arc_sources()
    dst = graph.col_idx

    message_hist: list[int] = []

    # Superstep 0: everyone floods its label.
    sent = int(deg.sum())
    senders_mask = np.ones(n, dtype=bool)
    enq = deg.astype(np.int64).copy()
    record_superstep(
        tracer, superstep=0, active=n, received=0, sent=sent,
        enqueues_per_destination=enq if sent else None, costs=costs,
    )
    message_hist.append(sent)

    superstep = 1
    while sent and superstep < max_supersteps:
        arc_live = senders_mask[src]
        live_dst = dst[arc_live]
        live_lbl = labels[src[arc_live]]
        received = int(live_dst.size)

        new_labels = labels.copy()
        if received:
            # Plurality per destination: count (dst, label) pairs.
            order = np.lexsort((live_lbl, live_dst))
            d_sorted = live_dst[order]
            l_sorted = live_lbl[order]
            group_start = np.ones(d_sorted.size, dtype=bool)
            group_start[1:] = (d_sorted[1:] != d_sorted[:-1]) | (
                l_sorted[1:] != l_sorted[:-1]
            )
            starts = np.flatnonzero(group_start)
            counts = np.diff(np.append(starts, d_sorted.size))
            g_dst = d_sorted[starts]
            g_lbl = l_sorted[starts]
            # Per-destination maximum count, to apply the keep-own rule.
            max_count = np.zeros(n, dtype=np.int64)
            np.maximum.at(max_count, g_dst, counts)
            own_in_top = np.zeros(n, dtype=bool)
            own_groups = g_lbl == labels[g_dst]
            own_in_top[g_dst[own_groups]] = (
                counts[own_groups] == max_count[g_dst[own_groups]]
            )
            # Remaining ties break by the seeded hash jitter.
            score = counts + _tie_jitter(g_lbl, superstep, seed, context=g_dst)
            sel = np.lexsort((-score, g_dst))
            first = np.ones(sel.size, dtype=bool)
            first[1:] = g_dst[sel][1:] != g_dst[sel][:-1]
            winners_dst = g_dst[sel][first]
            winners_lbl = g_lbl[sel][first]
            adopt = (winners_lbl != labels[winners_dst]) & ~own_in_top[
                winners_dst
            ]
            new_labels[winners_dst[adopt]] = winners_lbl[adopt]

        changed = np.flatnonzero(new_labels != labels)
        labels = new_labels
        senders_mask = np.zeros(n, dtype=bool)
        senders_mask[changed] = True
        sent = int(deg[changed].sum()) if superstep < max_supersteps else 0
        enq = np.zeros(n, dtype=np.int64)
        if sent:
            enq = enqueue_histogram(dst[senders_mask[src]], n)
        record_superstep(
            tracer, superstep=superstep,
            active=int(np.unique(live_dst).size) if received else 0,
            received=received, sent=sent,
            enqueues_per_destination=enq if sent else None, costs=costs,
        )
        message_hist.append(sent)
        superstep += 1

    # Canonicalize community names to their smallest member.
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        labels[members] = members.min()

    return BSPCommunityResult(
        labels=labels,
        num_communities=int(np.unique(labels).size),
        num_supersteps=superstep,
        messages_per_superstep=message_hist,
        modularity=modularity(graph, labels),
        trace=tracer.trace,
    )
