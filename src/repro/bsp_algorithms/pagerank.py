"""PageRank in the BSP model (the canonical Pregel example).

Each superstep every vertex sums its incoming rank contributions, applies
the damping update, and sends ``rank / degree`` to its neighbours for a
fixed number of supersteps (Pregel's original formulation runs 30).  Not
part of the paper's experiments; included because it exercises the
framework's sum-combiner and aggregator surfaces and cross-validates
against the shared-memory :func:`repro.graphct.pagerank` kernel.

The module pairs the per-vertex :class:`BSPPageRank` (run by the
reference engine) with the whole-superstep :class:`DensePageRank` (run by
the :class:`~repro.bsp.dense.DenseBSPEngine` — the benchmark path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp import engine_for
from repro.bsp.dense import DenseSuperstepContext, DenseVertexProgram
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPPageRank", "BSPPageRankResult", "DensePageRank", "bsp_pagerank"]


class BSPPageRank(VertexProgram):
    """Fixed-superstep PageRank vertex program.

    Dangling-vertex mass is redistributed uniformly via the ``dangling``
    sum aggregator when the engine provides one; otherwise ranks are
    normalized at read-out (both paths produce the same ordering).
    """

    def __init__(self, num_supersteps: int = 30, damping: float = 0.85):
        if num_supersteps < 1:
            raise ValueError("num_supersteps must be >= 1")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.num_supersteps = num_supersteps
        self.damping = damping

    def initial_value(self, vertex: int, graph) -> float:
        return 1.0 / max(graph.num_vertices, 1)

    def compute(self, ctx: VertexContext, messages: Sequence[float]) -> None:
        n = ctx.num_vertices
        if ctx.superstep > 0:
            incoming = sum(messages)
            dangling = 0.0
            try:
                dangling = ctx.aggregated("dangling") or 0.0
            except KeyError:
                pass
            ctx.value = (
                (1.0 - self.damping) / n
                + self.damping * (incoming + dangling / n)
            )
        if ctx.superstep < self.num_supersteps:
            degree = ctx.degree()
            if degree:
                ctx.send_to_neighbors(ctx.value / degree)
            else:
                try:
                    ctx.aggregate("dangling", ctx.value)
                except KeyError:
                    pass
        else:
            ctx.vote_to_halt()


class DensePageRank(DenseVertexProgram):
    """Fixed-superstep PageRank as whole-superstep array kernels.

    Dangling-vertex mass is redistributed uniformly every superstep: via
    the ``dangling`` sum aggregator when the engine provides one, through
    an internal sum otherwise (both produce identical ranks — the
    aggregated value *is* that sum, delayed one superstep boundary).
    """

    combine = np.add
    combine_identity = 0.0
    message_dtype = np.float64

    def __init__(self, num_supersteps: int = 30, damping: float = 0.85):
        if num_supersteps < 1:
            raise ValueError("num_supersteps must be >= 1")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.num_supersteps = num_supersteps
        self.damping = damping

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        """Uniform 1/n starting rank."""
        n = graph.num_vertices
        return np.full(n, 1.0 / max(n, 1))

    def arc_payload(
        self, graph: CSRGraph, values: np.ndarray, selection: np.ndarray
    ) -> np.ndarray:
        """A sender floods ``rank / degree`` to each neighbour."""
        deg = graph.degrees().astype(np.float64)
        share = np.zeros(values.size)
        np.divide(values, deg, out=share, where=deg > 0)
        return share[graph.arc_sources()[selection]]

    def compute(self, ctx: DenseSuperstepContext) -> np.ndarray | None:
        n = ctx.num_vertices
        values = ctx.values
        dangling_mask = ctx.graph.degrees() == 0
        if ctx.superstep > 0:
            try:
                dangling = float(ctx.aggregated("dangling") or 0.0)
            except KeyError:
                dangling = float(values[dangling_mask].sum())
            values[:] = (
                (1.0 - self.damping) / n
                + self.damping * (ctx.messages + dangling / n)
            )
        if ctx.superstep < self.num_supersteps:
            try:
                ctx.aggregate("dangling", float(values[dangling_mask].sum()))
            except KeyError:
                pass
            return ctx.active
        ctx.vote_to_halt()
        return None


@dataclass
class BSPPageRankResult:
    """Outcome of the dense-engine BSP PageRank."""

    ranks: np.ndarray
    num_supersteps: int
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)


def bsp_pagerank(
    graph: CSRGraph,
    *,
    num_supersteps: int = 30,
    damping: float = 0.85,
    costs: KernelCosts = DEFAULT_COSTS,
    num_workers: int | None = None,
    partition: str = "hash",
    telemetry=None,
    engine=None,
) -> BSPPageRankResult:
    """Dense-engine fixed-superstep BSP PageRank (with dangling handling).

    ``num_workers`` > 1 shards the scatter/gather over that many worker
    processes under the given ``partition`` placement.  Sharded float
    summation may differ from single-process ranks in the last ulp
    (the per-shard partial sums merge in shard order).
    ``telemetry`` records wall-clock spans without affecting results.
    ``engine`` reuses a warm caller-owned engine built on this graph
    (left open afterwards; the engine-construction kwargs are then
    ignored).
    """
    program = DensePageRank(num_supersteps=num_supersteps, damping=damping)
    with engine_for(
        graph,
        engine,
        num_workers=num_workers,
        partition=partition,
        costs=costs,
        telemetry=telemetry,
    ) as eng:
        result = eng.run(
            program,
            max_supersteps=num_supersteps + 1,
            trace_label="bsp/pagerank",
        )
    return BSPPageRankResult(
        ranks=result.values,
        num_supersteps=result.num_supersteps,
        messages_per_superstep=result.messages_per_superstep,
        trace=result.trace,
    )
