"""PageRank in the BSP model (the canonical Pregel example).

Each superstep every vertex sums its incoming rank contributions, applies
the damping update, and sends ``rank / degree`` to its neighbours for a
fixed number of supersteps (Pregel's original formulation runs 30).  Not
part of the paper's experiments; included because it exercises the
framework's sum-combiner and aggregator surfaces and cross-validates
against the shared-memory :func:`repro.graphct.pagerank` kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPPageRank", "BSPPageRankResult", "bsp_pagerank"]


class BSPPageRank(VertexProgram):
    """Fixed-superstep PageRank vertex program.

    Dangling-vertex mass is redistributed uniformly via the ``dangling``
    sum aggregator when the engine provides one; otherwise ranks are
    normalized at read-out (both paths produce the same ordering).
    """

    def __init__(self, num_supersteps: int = 30, damping: float = 0.85):
        if num_supersteps < 1:
            raise ValueError("num_supersteps must be >= 1")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.num_supersteps = num_supersteps
        self.damping = damping

    def initial_value(self, vertex: int, graph) -> float:
        return 1.0 / max(graph.num_vertices, 1)

    def compute(self, ctx: VertexContext, messages: Sequence[float]) -> None:
        n = ctx.num_vertices
        if ctx.superstep > 0:
            incoming = sum(messages)
            dangling = 0.0
            try:
                dangling = ctx.aggregated("dangling") or 0.0
            except KeyError:
                pass
            ctx.value = (
                (1.0 - self.damping) / n
                + self.damping * (incoming + dangling / n)
            )
        if ctx.superstep < self.num_supersteps:
            degree = ctx.degree()
            if degree:
                ctx.send_to_neighbors(ctx.value / degree)
            else:
                try:
                    ctx.aggregate("dangling", ctx.value)
                except KeyError:
                    pass
        else:
            ctx.vote_to_halt()


@dataclass
class BSPPageRankResult:
    """Outcome of the vectorized BSP PageRank."""

    ranks: np.ndarray
    num_supersteps: int
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)


def bsp_pagerank(
    graph: CSRGraph,
    *,
    num_supersteps: int = 30,
    damping: float = 0.85,
    costs: KernelCosts = DEFAULT_COSTS,
) -> BSPPageRankResult:
    """Vectorized fixed-superstep BSP PageRank (with dangling handling)."""
    if num_supersteps < 1:
        raise ValueError("num_supersteps must be >= 1")
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = graph.num_vertices
    tracer = Tracer(label="bsp/pagerank")
    if n == 0:
        return BSPPageRankResult(
            ranks=np.empty(0), num_supersteps=0, trace=tracer.trace
        )
    ranks = np.full(n, 1.0 / n)
    deg = graph.degrees().astype(np.float64)
    dangling_mask = deg == 0
    src = graph.arc_sources()
    dst = graph.col_idx
    message_hist: list[int] = []
    arcs = graph.num_arcs
    enq = np.zeros(n, dtype=np.int64)
    np.add.at(enq, dst, 1)

    for superstep in range(num_supersteps + 1):
        sending = superstep < num_supersteps
        sent = arcs if sending else 0
        if superstep > 0:
            contrib = np.zeros(n)
            share = np.zeros(n)
            np.divide(ranks, deg, out=share, where=~dangling_mask)
            np.add.at(contrib, dst, share[src])
            dangling = float(ranks[dangling_mask].sum())
            ranks = (1.0 - damping) / n + damping * (contrib + dangling / n)
        record_superstep(
            tracer, superstep=superstep, active=n,
            received=arcs if superstep > 0 else 0, sent=sent,
            enqueues_per_destination=enq if sent else None, costs=costs,
        )
        message_hist.append(sent)

    return BSPPageRankResult(
        ranks=ranks,
        num_supersteps=num_supersteps + 1,
        messages_per_superstep=message_hist,
        trace=tracer.trace,
    )
