"""Deprecated alias of :mod:`repro.bsp._scatter`.

The scatter helpers live in :mod:`repro.bsp._scatter` (the dense BSP
engine is their primary consumer).  This historical location re-exports
them for external callers but warns on import; in-tree code imports the
canonical module directly.
"""

from __future__ import annotations

import warnings

from repro.bsp._scatter import arcs_from, enqueue_histogram

__all__ = ["arcs_from", "enqueue_histogram"]

warnings.warn(
    "repro.bsp_algorithms._scatter is deprecated; import arcs_from and "
    "enqueue_histogram from repro.bsp._scatter instead",
    DeprecationWarning,
    stacklevel=2,
)
