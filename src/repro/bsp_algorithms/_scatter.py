"""Shared vectorized message-scatter primitives.

The helpers live in :mod:`repro.bsp._scatter` now — the dense BSP engine
is their primary consumer — and are re-exported here so the remaining
hand-vectorized kernels (and external callers) keep importing from the
historical location.
"""

from __future__ import annotations

from repro.bsp._scatter import arcs_from, enqueue_histogram

__all__ = ["arcs_from", "enqueue_histogram"]
