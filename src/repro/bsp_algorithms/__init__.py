"""The paper's graph algorithms in the BSP model.

Each module pairs the paper's pseudocode as a
:class:`~repro.bsp.vertex.VertexProgram` (the readable reference, run by
the reference engine) with a
:class:`~repro.bsp.dense.DenseVertexProgram` of the same superstep
semantics (whole-superstep NumPy kernels, run by the
:class:`~repro.bsp.dense.DenseBSPEngine` — the benchmark path).  The
test suite asserts the two paths agree on final states, superstep
counts, and per-superstep message counts.

* :mod:`~repro.bsp_algorithms.connected_components` — Algorithm 1,
* :mod:`~repro.bsp_algorithms.bfs` — Algorithm 2,
* :mod:`~repro.bsp_algorithms.triangles` — Algorithm 3,
* :mod:`~repro.bsp_algorithms.sssp` — weighted distance flooding (the
  Kajdanowicz comparison),
* :mod:`~repro.bsp_algorithms.pagerank` — the canonical Pregel example.
"""

from repro.bsp_algorithms.betweenness import (
    BSPBetweennessResult,
    bsp_betweenness_centrality,
)
from repro.bsp_algorithms.bfs import (
    BSPBFSResult,
    BSPBreadthFirstSearch,
    DenseBreadthFirstSearch,
    bsp_breadth_first_search,
)
from repro.bsp_algorithms.community import (
    BSPCommunityResult,
    BSPLabelPropagation,
    bsp_label_propagation_communities,
)
from repro.bsp_algorithms.connected_components import (
    BSPComponentsResult,
    BSPConnectedComponents,
    DenseConnectedComponents,
    bsp_connected_components,
)
from repro.bsp_algorithms.kcore import (
    BSPKCore,
    BSPKCoreResult,
    DenseKCore,
    bsp_k_core,
)
from repro.bsp_algorithms.mis import (
    BSPLubyMIS,
    BSPMISResult,
    bsp_maximal_independent_set,
)
from repro.bsp_algorithms.pagerank import (
    BSPPageRank,
    BSPPageRankResult,
    DensePageRank,
    bsp_pagerank,
)
from repro.bsp_algorithms.sssp import (
    BSPShortestPaths,
    BSPSSSPResult,
    DenseShortestPaths,
    bsp_sssp,
)
from repro.bsp_algorithms.triangles import (
    BSPTriangleCounting,
    BSPTriangleResult,
    bsp_count_triangles,
)

__all__ = [
    "BSPBFSResult",
    "BSPBetweennessResult",
    "BSPBreadthFirstSearch",
    "BSPCommunityResult",
    "BSPLabelPropagation",
    "BSPComponentsResult",
    "BSPConnectedComponents",
    "BSPKCore",
    "BSPKCoreResult",
    "BSPLubyMIS",
    "BSPMISResult",
    "BSPPageRank",
    "BSPPageRankResult",
    "BSPSSSPResult",
    "BSPShortestPaths",
    "BSPTriangleCounting",
    "BSPTriangleResult",
    "DenseBreadthFirstSearch",
    "DenseConnectedComponents",
    "DenseKCore",
    "DensePageRank",
    "DenseShortestPaths",
    "bsp_betweenness_centrality",
    "bsp_breadth_first_search",
    "bsp_connected_components",
    "bsp_count_triangles",
    "bsp_k_core",
    "bsp_label_propagation_communities",
    "bsp_maximal_independent_set",
    "bsp_pagerank",
    "bsp_sssp",
]
