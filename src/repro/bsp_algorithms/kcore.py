"""k-core membership in the BSP model.

The message-passing formulation of iterated degree pruning: a vertex
whose surviving degree drops below *k* removes itself and notifies its
neighbours, which decrement their surviving degrees in the next
superstep.  Removal cascades one hop per superstep — another instance of
the model's stale-data latency (a shared-memory peel round cascades
within the round).

``bsp_k_core`` answers membership for one ``k``; combined with the
GraphCT decomposition kernel it also serves as a per-k cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.bsp_algorithms._scatter import arcs_from
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPKCore", "BSPKCoreResult", "bsp_k_core"]


class BSPKCore(VertexProgram):
    """k-core membership vertex program.

    Vertex state: surviving degree, or -1 once dropped.  Each received
    message is a neighbour's departure notice.
    """

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k

    def initial_value(self, vertex: int, graph) -> int:
        return graph.degree(vertex)

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        if ctx.value >= 0:
            ctx.value = ctx.value - len(messages)
            if ctx.value < self.k:
                ctx.value = -1
                ctx.send_to_neighbors(1)
        ctx.vote_to_halt()


@dataclass
class BSPKCoreResult:
    """Outcome of a BSP k-core membership computation."""

    k: int
    #: True where the vertex belongs to the k-core.
    in_core: np.ndarray
    num_supersteps: int
    #: Vertices dropped per superstep (the peeling wave).
    dropped_per_superstep: list[int] = field(default_factory=list)
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def core_size(self) -> int:
        return int(np.count_nonzero(self.in_core))


def bsp_k_core(
    graph: CSRGraph,
    k: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 100_000,
) -> BSPKCoreResult:
    """Vectorized BSP k-core membership (semantics of :class:`BSPKCore`)."""
    if graph.directed:
        raise ValueError("k-core requires an undirected graph")
    if k < 0:
        raise ValueError("k must be non-negative")
    n = graph.num_vertices
    tracer = Tracer(label="bsp/kcore")
    deg = graph.degrees().astype(np.int64)
    surviving = deg.copy()
    alive = np.ones(n, dtype=bool)
    row_ptr, col_idx = graph.row_ptr, graph.col_idx
    src = graph.arc_sources()

    dropped_hist: list[int] = []
    message_hist: list[int] = []

    # Superstep 0: everyone checks its initial degree.
    droppers = np.flatnonzero(surviving < k)
    alive[droppers] = False
    sent = int(deg[droppers].sum())
    enq = np.zeros(n, dtype=np.int64)
    if sent:
        np.add.at(enq, col_idx[arcs_from(droppers, row_ptr)], 1)
    record_superstep(
        tracer, superstep=0, active=n, received=0, sent=sent,
        enqueues_per_destination=enq if sent else None, costs=costs,
    )
    dropped_hist.append(int(droppers.size))
    message_hist.append(sent)

    superstep = 1
    while sent and superstep < max_supersteps:
        arc_mask = arcs_from(droppers, row_ptr)
        dst = col_idx[arc_mask]
        received = int(dst.size)
        decrements = np.zeros(n, dtype=np.int64)
        np.add.at(decrements, dst, 1)
        receivers = np.unique(dst)
        surviving[receivers] -= decrements[receivers]
        newly_dropped = receivers[
            alive[receivers] & (surviving[receivers] < k)
        ]
        alive[newly_dropped] = False

        droppers = newly_dropped
        sent = int(deg[droppers].sum())
        enq = np.zeros(n, dtype=np.int64)
        if sent:
            np.add.at(enq, col_idx[arcs_from(droppers, row_ptr)], 1)
        record_superstep(
            tracer, superstep=superstep, active=int(receivers.size),
            received=received, sent=sent,
            enqueues_per_destination=enq if sent else None, costs=costs,
        )
        dropped_hist.append(int(newly_dropped.size))
        message_hist.append(sent)
        superstep += 1

    return BSPKCoreResult(
        k=k,
        in_core=alive,
        num_supersteps=superstep,
        dropped_per_superstep=dropped_hist,
        messages_per_superstep=message_hist,
        trace=tracer.trace,
    )
