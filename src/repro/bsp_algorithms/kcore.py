"""k-core membership in the BSP model.

The message-passing formulation of iterated degree pruning: a vertex
whose surviving degree drops below *k* removes itself and notifies its
neighbours, which decrement their surviving degrees in the next
superstep.  Removal cascades one hop per superstep — another instance of
the model's stale-data latency (a shared-memory peel round cascades
within the round).

``bsp_k_core`` answers membership for one ``k``; combined with the
GraphCT decomposition kernel it also serves as a per-k cross-check.

The module pairs the per-vertex :class:`BSPKCore` (run by the reference
engine) with the whole-superstep :class:`DenseKCore` (run by the
:class:`~repro.bsp.dense.DenseBSPEngine` — the benchmark path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp import engine_for
from repro.bsp.dense import DenseSuperstepContext, DenseVertexProgram
from repro.bsp.frontier import selected_arc_count
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPKCore", "BSPKCoreResult", "DenseKCore", "bsp_k_core"]


class BSPKCore(VertexProgram):
    """k-core membership vertex program.

    Vertex state: surviving degree, or -1 once dropped.  Each received
    message is a neighbour's departure notice.
    """

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k

    def initial_value(self, vertex: int, graph) -> int:
        return graph.degree(vertex)

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        if ctx.value >= 0:
            ctx.value = ctx.value - len(messages)
            if ctx.value < self.k:
                ctx.value = -1
                ctx.send_to_neighbors(1)
        ctx.vote_to_halt()


class DenseKCore(DenseVertexProgram):
    """k-core membership as whole-superstep array kernels.

    Messages are departure notices, so ``np.add``-folding delivers each
    surviving vertex its decrement count directly.  Records the peeling
    wave in ``dropped_per_superstep``.
    """

    combine = np.add
    combine_identity = 0
    message_dtype = np.int64

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k
        #: Vertices dropped per superstep (rebuilt each run).
        self.dropped_per_superstep: list[int] = []

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        """Every vertex starts with its full degree surviving."""
        self.dropped_per_superstep = []
        return graph.degrees().astype(np.int64)

    def arc_payload(
        self, graph: CSRGraph, values: np.ndarray, selection: np.ndarray
    ) -> np.ndarray:
        """One departure notice per arc out of a dropped vertex."""
        return np.ones(selected_arc_count(selection), dtype=np.int64)

    def compute(self, ctx: DenseSuperstepContext) -> np.ndarray | None:
        ctx.vote_to_halt()
        values = ctx.values
        if ctx.superstep == 0:
            droppers = ctx.active[values[ctx.active] < self.k]
        else:
            receivers = ctx.receivers
            alive = receivers[values[receivers] >= 0]
            values[alive] -= ctx.messages[alive]
            droppers = alive[values[alive] < self.k]
        values[droppers] = -1
        self.dropped_per_superstep.append(int(droppers.size))
        return droppers


@dataclass
class BSPKCoreResult:
    """Outcome of a BSP k-core membership computation."""

    k: int
    #: True where the vertex belongs to the k-core.
    in_core: np.ndarray
    num_supersteps: int
    #: Vertices dropped per superstep (the peeling wave).
    dropped_per_superstep: list[int] = field(default_factory=list)
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def core_size(self) -> int:
        return int(np.count_nonzero(self.in_core))


def bsp_k_core(
    graph: CSRGraph,
    k: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 100_000,
    num_workers: int | None = None,
    partition: str = "hash",
    telemetry=None,
    engine=None,
) -> BSPKCoreResult:
    """Dense-engine BSP k-core membership (semantics of :class:`BSPKCore`).

    ``num_workers`` > 1 shards the scatter/gather over that many worker
    processes under the given ``partition`` placement (membership is
    unaffected — integer sum folds are exact at any partition).
    ``telemetry`` records wall-clock spans without affecting results.
    ``engine`` reuses a warm caller-owned engine built on this graph
    (left open afterwards; the engine-construction kwargs are then
    ignored).
    """
    if graph.directed:
        raise ValueError("k-core requires an undirected graph")
    if k < 0:
        raise ValueError("k must be non-negative")
    program = DenseKCore(k)
    with engine_for(
        graph,
        engine,
        num_workers=num_workers,
        partition=partition,
        costs=costs,
        telemetry=telemetry,
    ) as eng:
        result = eng.run(
            program, max_supersteps=max_supersteps, trace_label="bsp/kcore"
        )
    return BSPKCoreResult(
        k=k,
        in_core=result.values >= 0,
        num_supersteps=result.num_supersteps,
        dropped_per_superstep=program.dropped_per_superstep,
        messages_per_superstep=result.messages_per_superstep,
        trace=result.trace,
    )
