"""Betweenness centrality in the BSP model (Brandes as supersteps).

Brandes' algorithm decomposes into two message waves per source, both of
which map directly onto supersteps:

* **forward wave** — a BFS flood where each newly discovered vertex sums
  the path counts (sigma) arriving from the previous level; because sigma
  contributions are additive, this is the textbook use of a sum combiner;
* **backward wave** — once the forward wave drains, dependencies flow
  back level by level: each vertex at depth d sends
  ``sigma(pred) / sigma(v) * (1 + delta(v))`` to its depth-(d-1)
  predecessors.

Exact scores need one such pair of waves per source (GraphCT's
shared-memory kernel does the same); ``num_sources`` samples sources for
the approximate variant, matching
:func:`repro.graphct.betweenness.betweenness_centrality` semantics.

The vectorized implementation below runs the waves whole-superstep; it is
the benchmark/experiment path.  (A per-vertex ``VertexProgram`` for this
algorithm would need the two-phase switch inside ``compute`` — it is
expressible, but the paper's point about expressibility is already made
by Algorithms 1-3, so only the vectorized path ships.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp._scatter import arcs_from, enqueue_histogram
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPBetweennessResult", "bsp_betweenness_centrality"]


@dataclass
class BSPBetweennessResult:
    """Outcome of a BSP betweenness computation."""

    scores: np.ndarray
    num_sources: int
    exact: bool
    #: Supersteps across all sources (forward + backward waves).
    num_supersteps: int
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)


def bsp_betweenness_centrality(
    graph: CSRGraph,
    *,
    num_sources: int | None = None,
    seed: int = 0,
    costs: KernelCosts = DEFAULT_COSTS,
) -> BSPBetweennessResult:
    """Brandes betweenness as BSP waves; samples sources when given."""
    n = graph.num_vertices
    if num_sources is not None and not 1 <= num_sources <= n:
        raise ValueError("num_sources must be in [1, num_vertices]")
    if num_sources is None or num_sources == n:
        sources = np.arange(n, dtype=np.int64)
        exact = True
    else:
        rng = np.random.default_rng(seed)
        sources = rng.choice(n, size=num_sources, replace=False)
        exact = False

    tracer = Tracer(label="bsp/betweenness")
    scores = np.zeros(n, dtype=np.float64)
    message_hist: list[int] = []
    superstep_counter = 0

    for source in sources.tolist():
        superstep_counter = _accumulate(
            graph, int(source), scores, tracer, message_hist,
            superstep_counter, costs,
        )

    if not exact and sources.size:
        scores *= n / sources.size

    return BSPBetweennessResult(
        scores=scores,
        num_sources=int(sources.size),
        exact=exact,
        num_supersteps=superstep_counter,
        messages_per_superstep=message_hist,
        trace=tracer.trace,
    )


def _accumulate(
    graph: CSRGraph,
    source: int,
    scores: np.ndarray,
    tracer: Tracer,
    message_hist: list[int],
    superstep: int,
    costs: KernelCosts,
) -> int:
    n = graph.num_vertices
    row_ptr, col_idx = graph.row_ptr, graph.col_idx
    src = graph.arc_sources()
    deg = graph.degrees()

    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[source] = 0
    sigma[source] = 1.0
    levels: list[np.ndarray] = [np.asarray([source], dtype=np.int64)]

    # ---- forward wave: flood (distance, sigma) with a sum combiner.
    frontier = levels[0]
    while frontier.size:
        sent = int(deg[frontier].sum())
        enq = np.zeros(n, dtype=np.int64)
        if sent:
            arc_mask = arcs_from(frontier, row_ptr)
            dst = col_idx[arc_mask]
            enq = enqueue_histogram(dst, n)
            sigma_in = np.zeros(n, dtype=np.float64)
            np.add.at(sigma_in, dst, sigma[src[arc_mask]])
            fresh = np.unique(dst[dist[dst] < 0])
        else:
            fresh = np.empty(0, dtype=np.int64)
        record_superstep(
            tracer, superstep=superstep, active=int(frontier.size),
            received=0 if superstep == 0 else sent, sent=sent,
            enqueues_per_destination=enq if sent else None, costs=costs,
        )
        message_hist.append(sent)
        superstep += 1
        if not fresh.size:
            break
        depth = dist[frontier[0]] + 1
        dist[fresh] = depth
        sigma[fresh] = sigma_in[fresh]
        levels.append(fresh)
        frontier = fresh

    # ---- backward wave: dependencies flow one level up per superstep.
    delta = np.zeros(n, dtype=np.float64)
    for frontier in reversed(levels[1:]):
        arc_mask = arcs_from(frontier, row_ptr)
        dst = col_idx[arc_mask]
        senders = src[arc_mask]
        pred = dist[dst] == dist[senders] - 1
        sent = int(np.count_nonzero(pred))
        enq = np.zeros(n, dtype=np.int64)
        if sent:
            contrib = (
                sigma[dst[pred]]
                / sigma[senders[pred]]
                * (1.0 + delta[senders[pred]])
            )
            np.add.at(delta, dst[pred], contrib)
            enq += enqueue_histogram(dst[pred], n)
        record_superstep(
            tracer, superstep=superstep, active=int(frontier.size),
            received=sent, sent=sent,
            enqueues_per_destination=enq if sent else None, costs=costs,
        )
        message_hist.append(sent)
        superstep += 1

    delta[source] = 0.0
    scores += delta
    return superstep
