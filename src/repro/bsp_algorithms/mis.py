"""Maximal independent set in the BSP model (Luby's algorithm).

The canonical randomized vertex-centric algorithm — a natural citizen of
the Pregel model and a sharp illustration of the paper's theme: the
sequential greedy sweep is one pass, but it is inherently ordered; the
BSP formulation trades that for O(log n) randomized rounds of purely
local decisions.

Each round, every undecided vertex draws a priority (a deterministic
hash of (vertex, round, seed) — reproducible randomness) and floods it;
a vertex whose priority strictly beats all undecided neighbours' joins
the set and notifies its neighbourhood, which drops out.  Each round is
two supersteps (priority exchange, then join/drop notification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.bsp._scatter import arcs_from, enqueue_histogram
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPLubyMIS", "BSPMISResult", "bsp_maximal_independent_set"]

_UNDECIDED, _IN_SET, _OUT = 0, 1, 2

_MIX1 = np.uint64(0x9E3779B97F4A7C15)
_MIX2 = np.uint64(0xBF58476D1CE4E5B9)


def _priority(vertices: np.ndarray, round_index: int, seed: int) -> np.ndarray:
    """Deterministic per-(vertex, round) priority in [0, 2^53)."""
    with np.errstate(over="ignore"):
        x = np.asarray(vertices, dtype=np.uint64) * _MIX1
        x += np.uint64(round_index * 0x100000001B3 + seed)
        x = (x + _MIX1) * _MIX2
        x ^= x >> np.uint64(31)
        x *= _MIX1
        x ^= x >> np.uint64(29)
    return (x >> np.uint64(11)).astype(np.int64)


class BSPLubyMIS(VertexProgram):
    """Luby's MIS as a vertex program.

    State: 0 undecided, 1 in the set, 2 excluded.  Odd supersteps
    exchange priorities; even supersteps (>0) deliver join
    notifications.
    """

    def __init__(self, seed: int = 0, max_rounds: int = 64):
        self.seed = seed
        self.max_rounds = max_rounds

    def initial_value(self, vertex: int, graph) -> int:
        return _UNDECIDED

    def compute(self, ctx: VertexContext, messages: Sequence[tuple]) -> None:
        round_index = ctx.superstep // 2
        if ctx.superstep % 2 == 0:
            # Notification phase (superstep 0 is an empty instance).
            if ctx.value == _UNDECIDED and any(
                kind == "joined" for kind, _ in messages
            ):
                ctx.value = _OUT
            if ctx.value == _UNDECIDED and round_index < self.max_rounds:
                mine = int(
                    _priority(np.asarray([ctx.vertex_id]), round_index,
                              self.seed)[0]
                )
                ctx.send_to_neighbors(("priority", (mine, ctx.vertex_id)))
        else:
            # Priority phase: compare against undecided neighbours.
            if ctx.value == _UNDECIDED:
                mine = int(
                    _priority(np.asarray([ctx.vertex_id]), round_index,
                              self.seed)[0]
                )
                rivals = [p for kind, p in messages if kind == "priority"]
                if all((mine, ctx.vertex_id) > rival for rival in rivals):
                    ctx.value = _IN_SET
                    ctx.send_to_neighbors(("joined", ctx.vertex_id))
        # Undecided vertices must stay active: a vertex whose neighbours
        # all decided receives no messages and would otherwise sleep
        # forever instead of joining in the next round.
        if ctx.value != _UNDECIDED or round_index >= self.max_rounds:
            ctx.vote_to_halt()


@dataclass
class BSPMISResult:
    """Outcome of the vectorized BSP Luby MIS."""

    in_set: np.ndarray
    num_rounds: int
    num_supersteps: int
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def size(self) -> int:
        return int(np.count_nonzero(self.in_set))


def bsp_maximal_independent_set(
    graph: CSRGraph,
    *,
    seed: int = 0,
    max_rounds: int = 64,
    costs: KernelCosts = DEFAULT_COSTS,
) -> BSPMISResult:
    """Vectorized Luby MIS (same per-round semantics as the program).

    The resulting set differs from the greedy shared-memory kernel's
    (randomized vs ordered selection) but is equally a valid maximal
    independent set — the invariants the tests check.
    """
    if graph.directed:
        raise ValueError("MIS requires an undirected graph")
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    n = graph.num_vertices
    tracer = Tracer(label="bsp/mis")
    state = np.full(n, _UNDECIDED, dtype=np.int8)
    deg = graph.degrees()
    row_ptr, col_idx = graph.row_ptr, graph.col_idx
    src = graph.arc_sources()

    message_hist: list[int] = []
    superstep = 0
    round_index = 0
    while round_index < max_rounds:
        undecided = np.flatnonzero(state == _UNDECIDED)
        if undecided.size == 0:
            break
        # --- priority-exchange superstep.
        prio = np.full(n, -1, dtype=np.int64)
        prio[undecided] = _priority(undecided, round_index, seed)
        arc_live = (state[src] == _UNDECIDED)
        arc_live &= state[col_idx] == _UNDECIDED
        sent = int(np.count_nonzero(arc_live))
        enq = np.zeros(n, dtype=np.int64)
        if sent:
            enq = enqueue_histogram(col_idx[arc_live], n)
        record_superstep(
            tracer, superstep=superstep, active=int(undecided.size),
            received=0 if superstep == 0 else sent, sent=sent,
            enqueues_per_destination=enq if sent else None, costs=costs,
        )
        message_hist.append(sent)
        superstep += 1

        # --- decision: strict local max over undecided neighbours
        # (ties broken by vertex id, as in the program's tuple compare).
        best_nbr_prio = np.full(n, -1, dtype=np.int64)
        best_nbr_id = np.full(n, -1, dtype=np.int64)
        if sent:
            live_dst = col_idx[arc_live]
            live_src = src[arc_live]
            live_prio = prio[live_src]
            order = np.lexsort((live_src, live_prio, live_dst))
            d_sorted = live_dst[order]
            last = np.ones(d_sorted.size, dtype=bool)
            last[:-1] = d_sorted[1:] != d_sorted[:-1]
            best_nbr_prio[d_sorted[last]] = live_prio[order][last]
            best_nbr_id[d_sorted[last]] = live_src[order][last]
        mine = prio[undecided]
        rival_p = best_nbr_prio[undecided]
        rival_v = best_nbr_id[undecided]
        wins = (mine > rival_p) | (
            (mine == rival_p) & (undecided > rival_v)
        )
        joiners = undecided[wins]
        state[joiners] = _IN_SET

        # --- notification superstep: joiners tell their neighbourhoods.
        sent2 = int(deg[joiners].sum())
        enq2 = np.zeros(n, dtype=np.int64)
        if sent2:
            out_mask = arcs_from(joiners, row_ptr)
            dst2 = col_idx[out_mask]
            enq2 = enqueue_histogram(dst2, n)
            dropped = np.unique(dst2)
            state[dropped[state[dropped] == _UNDECIDED]] = _OUT
        record_superstep(
            tracer, superstep=superstep,
            active=int(np.count_nonzero(enq if sent else 0) or undecided.size),
            received=sent, sent=sent2,
            enqueues_per_destination=enq2 if sent2 else None, costs=costs,
        )
        message_hist.append(sent2)
        superstep += 1
        round_index += 1

    return BSPMISResult(
        in_set=state == _IN_SET,
        num_rounds=round_index,
        num_supersteps=superstep,
        messages_per_superstep=message_hist,
        trace=tracer.trace,
    )
