"""Connected components in the BSP model (paper Algorithm 1).

Every vertex starts as its own component (Shiloach–Vishkin style).  In
superstep 0 each vertex sets its label to its own id and floods it to all
neighbours; in every later superstep an active vertex takes the minimum of
its incoming labels, and — only if its label improved — floods the new
label onward.  When no label changes anywhere, all vertices vote to halt.

Because a message cannot be consumed until the *next* superstep, label
information moves one hop per superstep: the paper observes at least a 2x
iteration blow-up over the shared-memory algorithm, with the first few
supersteps touching nearly every vertex (Fig. 1, left).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp_algorithms._scatter import arcs_from
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "BSPConnectedComponents",
    "BSPComponentsResult",
    "bsp_connected_components",
]


class BSPConnectedComponents(VertexProgram):
    """Algorithm 1, verbatim vertex program."""

    def initial_value(self, vertex: int, graph) -> int:
        return vertex

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        vote = False
        label = ctx.value
        for m in messages:                       # lines 2-5
            if m < label:
                label = m
                vote = True
        if ctx.superstep == 0:                   # lines 6-9
            label = ctx.vertex_id
            ctx.value = label
            ctx.send_to_neighbors(label)
        else:                                    # lines 10-13
            if vote:
                ctx.value = label
                ctx.send_to_neighbors(label)
        ctx.vote_to_halt()


@dataclass
class BSPComponentsResult:
    """Outcome of the vectorized BSP connected components."""

    labels: np.ndarray
    num_components: int
    num_supersteps: int
    active_per_superstep: list[int] = field(default_factory=list)
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)


def bsp_connected_components(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 10_000,
    combine_messages: bool = False,
) -> BSPComponentsResult:
    """Vectorized whole-superstep execution of Algorithm 1.

    Superstep semantics match :class:`BSPConnectedComponents` under the
    reference engine exactly (asserted by the test suite): same labels,
    same superstep count, same per-superstep message counts.

    ``combine_messages=True`` applies a Pregel min-combiner: only one
    (minimum) message per destination is materialized per superstep, so
    queue traffic drops from edges-incident-on-senders to the receiver
    count.  The paper's runtime does *not* combine — this switch exists
    for the combiner ablation benchmark.  Labels and superstep counts are
    unaffected; only ``messages_per_superstep`` and the work trace change.
    """
    if graph.directed:
        raise ValueError(
            "BSP connected components requires an undirected graph"
        )
    n = graph.num_vertices
    tracer = Tracer(label="bsp/cc")
    labels = np.arange(n, dtype=np.int64)
    deg = graph.degrees()
    row_ptr, col_idx = graph.row_ptr, graph.col_idx
    src = graph.arc_sources()

    active_hist: list[int] = []
    message_hist: list[int] = []

    def queue_traffic(
        raw_sent: int, enq_raw: np.ndarray
    ) -> tuple[int, np.ndarray]:
        """Messages and per-destination enqueues actually materialized."""
        if not combine_messages or raw_sent == 0:
            return raw_sent, enq_raw
        combined = np.minimum(enq_raw, 1)
        return int(combined.sum()), combined

    # Superstep 0: everyone floods its own id.
    senders = np.arange(n, dtype=np.int64)
    sent_raw = int(deg.sum())
    sent, enq = queue_traffic(sent_raw, deg.astype(np.int64).copy())
    record_superstep(
        tracer, superstep=0, active=n, received=0, sent=sent,
        enqueues_per_destination=enq, costs=costs,
    )
    active_hist.append(n)
    message_hist.append(sent)

    # Pending messages are represented implicitly: the senders of the
    # previous superstep flooded labels[sender] along all their arcs.
    superstep = 1
    while sent and superstep < max_supersteps:
        # Deliver: per-destination minimum over incoming labels.
        arc_mask = arcs_from(senders, row_ptr)
        dst = col_idx[arc_mask]
        payload = labels[src[arc_mask]]

        incoming_min = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(incoming_min, dst, payload)
        receivers = np.unique(dst)
        # With a combiner only the folded message per destination is
        # dequeued; without one, every arc's message is.
        received = int(receivers.size) if combine_messages else int(dst.size)
        improved = receivers[incoming_min[receivers] < labels[receivers]]
        labels[improved] = incoming_min[improved]

        # Active set of this superstep = vertices with waiting messages.
        active = int(receivers.size)
        senders = improved
        sent_raw = int(deg[senders].sum())
        enq = np.zeros(n, dtype=np.int64)
        if sent_raw:
            out_mask = arcs_from(senders, row_ptr)
            np.add.at(enq, col_idx[out_mask], 1)
        sent, enq = queue_traffic(sent_raw, enq)
        record_superstep(
            tracer, superstep=superstep, active=active, received=received,
            sent=sent, enqueues_per_destination=enq if sent else None,
            costs=costs,
        )
        active_hist.append(active)
        message_hist.append(sent)
        superstep += 1

    return BSPComponentsResult(
        labels=labels,
        num_components=int(np.unique(labels).size),
        num_supersteps=superstep,
        active_per_superstep=active_hist,
        messages_per_superstep=message_hist,
        trace=tracer.trace,
    )

