"""Connected components in the BSP model (paper Algorithm 1).

Every vertex starts as its own component (Shiloach–Vishkin style).  In
superstep 0 each vertex sets its label to its own id and floods it to all
neighbours; in every later superstep an active vertex takes the minimum of
its incoming labels, and — only if its label improved — floods the new
label onward.  When no label changes anywhere, all vertices vote to halt.

Because a message cannot be consumed until the *next* superstep, label
information moves one hop per superstep: the paper observes at least a 2x
iteration blow-up over the shared-memory algorithm, with the first few
supersteps touching nearly every vertex (Fig. 1, left).

The module pairs the paper's pseudocode as a per-vertex
:class:`BSPConnectedComponents` (run by the reference engine) with the
whole-superstep :class:`DenseConnectedComponents` (run by the
:class:`~repro.bsp.dense.DenseBSPEngine` — the benchmark path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp import engine_for
from repro.bsp.dense import DenseSuperstepContext, DenseVertexProgram
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "BSPConnectedComponents",
    "BSPComponentsResult",
    "DenseConnectedComponents",
    "bsp_connected_components",
]


class BSPConnectedComponents(VertexProgram):
    """Algorithm 1, verbatim vertex program."""

    def initial_value(self, vertex: int, graph) -> int:
        return vertex

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        vote = False
        label = ctx.value
        for m in messages:                       # lines 2-5
            if m < label:
                label = m
                vote = True
        if ctx.superstep == 0:                   # lines 6-9
            label = ctx.vertex_id
            ctx.value = label
            ctx.send_to_neighbors(label)
        else:                                    # lines 10-13
            if vote:
                ctx.value = label
                ctx.send_to_neighbors(label)
        ctx.vote_to_halt()


class DenseConnectedComponents(DenseVertexProgram):
    """Algorithm 1 as whole-superstep array kernels (min-label flooding)."""

    combine = np.minimum
    combine_identity = np.iinfo(np.int64).max
    message_dtype = np.int64

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        """Every vertex starts as its own component."""
        return np.arange(graph.num_vertices, dtype=np.int64)

    def arc_payload(
        self, graph: CSRGraph, values: np.ndarray, selection: np.ndarray
    ) -> np.ndarray:
        """A sender floods its current label."""
        return values[graph.arc_sources()[selection]]

    def compute(self, ctx: DenseSuperstepContext) -> np.ndarray | None:
        ctx.vote_to_halt()
        if ctx.superstep == 0:                   # lines 6-9
            labels = ctx.values
            labels[ctx.active] = ctx.active
            return ctx.active
        labels, receivers = ctx.values, ctx.receivers  # lines 10-13
        improved = receivers[ctx.messages[receivers] < labels[receivers]]
        labels[improved] = ctx.messages[improved]
        return improved


@dataclass
class BSPComponentsResult:
    """Outcome of the dense-engine BSP connected components."""

    labels: np.ndarray
    num_components: int
    num_supersteps: int
    active_per_superstep: list[int] = field(default_factory=list)
    messages_per_superstep: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)


def bsp_connected_components(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 10_000,
    combine_messages: bool = False,
    num_workers: int | None = None,
    partition: str = "hash",
    telemetry=None,
    engine=None,
) -> BSPComponentsResult:
    """Dense-engine execution of Algorithm 1.

    Superstep semantics match :class:`BSPConnectedComponents` under the
    reference engine exactly (asserted by the test suite): same labels,
    same superstep count, same per-superstep message counts.

    ``combine_messages=True`` applies a Pregel min-combiner: only one
    (minimum) message per destination is materialized per superstep, so
    queue traffic drops from edges-incident-on-senders to the receiver
    count.  The paper's runtime does *not* combine — this switch exists
    for the combiner ablation benchmark.  Labels and superstep counts are
    unaffected; only ``messages_per_superstep`` and the work trace change.

    ``num_workers`` > 1 shards the scatter/gather over that many worker
    processes under the given ``partition`` placement (results are
    unaffected — min-combine folds are exact at any partition).
    ``telemetry`` records wall-clock spans without affecting results.
    ``engine`` reuses a warm caller-owned engine built on this graph
    (left open afterwards; the engine-construction kwargs are then
    ignored).
    """
    if graph.directed:
        raise ValueError(
            "BSP connected components requires an undirected graph"
        )
    with engine_for(
        graph,
        engine,
        num_workers=num_workers,
        partition=partition,
        combine_messages=combine_messages,
        costs=costs,
        telemetry=telemetry,
    ) as eng:
        result = eng.run(
            DenseConnectedComponents(),
            max_supersteps=max_supersteps,
            trace_label="bsp/cc",
        )
    labels = result.values
    return BSPComponentsResult(
        labels=labels,
        num_components=int(np.unique(labels).size),
        num_supersteps=result.num_supersteps,
        active_per_superstep=result.active_per_superstep,
        messages_per_superstep=result.messages_per_superstep,
        trace=result.trace,
    )
