"""Breadth-first search in the BSP model (paper Algorithm 2).

The vertex state is the current distance from the source.  In superstep 0
the source sets its distance to 0 and floods it; every other vertex holds
infinity.  A vertex receiving a distance ``m`` with ``m + 1 < D`` adopts
``m + 1`` and floods its new distance.

The crucial contrast with the shared-memory level-synchronous BFS (§IV):
the BSP algorithm "must send messages to every vertex that could possibly
be on the frontier" — one message per edge incident on the frontier —
while GraphCT enqueues each undiscovered vertex exactly once.  Past the
frontier apex the message count exceeds the true frontier by an order of
magnitude (Fig. 2), and the wasted deliveries are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp.instrumentation import record_superstep
from repro.bsp_algorithms._scatter import arcs_from
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPBreadthFirstSearch", "BSPBFSResult", "bsp_breadth_first_search"]

#: Sentinel for "infinity" in integer distance arrays.
UNREACHED = np.iinfo(np.int64).max


class BSPBreadthFirstSearch(VertexProgram):
    """Algorithm 2, verbatim vertex program.

    The source vertex is a constructor argument; every vertex's state is
    its tentative distance (``None`` encodes infinity for readability).
    """

    def __init__(self, source: int):
        self.source = int(source)

    def initial_value(self, vertex: int, graph) -> int | None:
        return 0 if vertex == self.source else None

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        vote = False
        dist = ctx.value
        for m in messages:                        # lines 2-5
            if dist is None or m + 1 < dist:
                dist = m + 1
                vote = True
        if ctx.superstep == 0:                    # lines 6-10
            if dist == 0 and ctx.vertex_id == self.source:
                ctx.send_to_neighbors(dist)
        else:                                     # lines 11-14
            if vote:
                ctx.value = dist
                ctx.send_to_neighbors(dist)
        ctx.vote_to_halt()


@dataclass
class BSPBFSResult:
    """Outcome of the vectorized BSP breadth-first search."""

    source: int
    #: Hop distance; -1 for unreachable vertices.
    distances: np.ndarray
    num_supersteps: int
    #: Vertices computing in each superstep (message receivers).
    active_per_superstep: list[int] = field(default_factory=list)
    #: Messages sent in each superstep — Fig. 2's green series.
    messages_per_superstep: list[int] = field(default_factory=list)
    #: True frontier per level (newly discovered vertices) for comparison
    #: against the messages series.
    frontier_sizes: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)

    @property
    def vertices_reached(self) -> int:
        return int(np.count_nonzero(self.distances >= 0))


def bsp_breadth_first_search(
    graph: CSRGraph,
    source: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 10_000,
) -> BSPBFSResult:
    """Vectorized whole-superstep execution of Algorithm 2."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    tracer = Tracer(label="bsp/bfs")
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    deg = graph.degrees()
    row_ptr, col_idx = graph.row_ptr, graph.col_idx

    active_hist: list[int] = []
    message_hist: list[int] = []
    frontier_hist: list[int] = [1]

    # Superstep 0: every vertex computes (Pregel activates all); only the
    # source sends.
    senders = np.asarray([source], dtype=np.int64)
    sent = int(deg[senders].sum())
    enq = np.zeros(n, dtype=np.int64)
    np.add.at(enq, col_idx[row_ptr[source]: row_ptr[source + 1]], 1)
    record_superstep(
        tracer, superstep=0, active=n, received=0, sent=sent,
        enqueues_per_destination=enq, costs=costs,
    )
    active_hist.append(n)
    message_hist.append(sent)

    superstep = 1
    while sent and superstep < max_supersteps:
        arc_mask = arcs_from(senders, row_ptr)
        dst = col_idx[arc_mask]
        payload = dist[graph.arc_sources()[arc_mask]] + 1
        received = int(dst.size)

        incoming = np.full(n, UNREACHED, dtype=np.int64)
        np.minimum.at(incoming, dst, payload)
        receivers = np.unique(dst)
        improved = receivers[incoming[receivers] < dist[receivers]]
        dist[improved] = incoming[improved]
        frontier_hist.append(int(improved.size))

        active = int(receivers.size)
        senders = improved
        sent = int(deg[senders].sum())
        enq = np.zeros(n, dtype=np.int64)
        if sent:
            out_mask = arcs_from(senders, row_ptr)
            np.add.at(enq, col_idx[out_mask], 1)
        record_superstep(
            tracer, superstep=superstep, active=active, received=received,
            sent=sent, enqueues_per_destination=enq if sent else None,
            costs=costs,
        )
        active_hist.append(active)
        message_hist.append(sent)
        superstep += 1

    distances = np.where(dist == UNREACHED, -1, dist)
    return BSPBFSResult(
        source=source,
        distances=distances,
        num_supersteps=superstep,
        active_per_superstep=active_hist,
        messages_per_superstep=message_hist,
        frontier_sizes=frontier_hist,
        trace=tracer.trace,
    )

