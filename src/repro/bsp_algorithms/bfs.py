"""Breadth-first search in the BSP model (paper Algorithm 2).

The vertex state is the current distance from the source.  In superstep 0
the source sets its distance to 0 and floods it; every other vertex holds
infinity.  A vertex receiving a distance ``m`` with ``m + 1 < D`` adopts
``m + 1`` and floods its new distance.

The crucial contrast with the shared-memory level-synchronous BFS (§IV):
the BSP algorithm "must send messages to every vertex that could possibly
be on the frontier" — one message per edge incident on the frontier —
while GraphCT enqueues each undiscovered vertex exactly once.  Past the
frontier apex the message count exceeds the true frontier by an order of
magnitude (Fig. 2), and the wasted deliveries are discarded.

The module pairs the paper's pseudocode as a per-vertex
:class:`BSPBreadthFirstSearch` (run by the reference engine) with the
whole-superstep :class:`DenseBreadthFirstSearch` (run by the
:class:`~repro.bsp.dense.DenseBSPEngine` — the benchmark path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp import engine_for
from repro.bsp.dense import DenseSuperstepContext, DenseVertexProgram
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "BSPBFSResult",
    "BSPBreadthFirstSearch",
    "DenseBreadthFirstSearch",
    "bsp_breadth_first_search",
]

#: Sentinel for "infinity" in integer distance arrays.
UNREACHED = np.iinfo(np.int64).max


class BSPBreadthFirstSearch(VertexProgram):
    """Algorithm 2, verbatim vertex program.

    The source vertex is a constructor argument; every vertex's state is
    its tentative distance (``None`` encodes infinity for readability).
    """

    def __init__(self, source: int):
        self.source = int(source)

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        vote = False
        dist = ctx.value
        for m in messages:                        # lines 2-5
            if dist is None or m + 1 < dist:
                dist = m + 1
                vote = True
        if ctx.superstep == 0:                    # lines 6-10
            if dist == 0 and ctx.vertex_id == self.source:
                ctx.send_to_neighbors(dist)
        else:                                     # lines 11-14
            if vote:
                ctx.value = dist
                ctx.send_to_neighbors(dist)
        ctx.vote_to_halt()

    def initial_value(self, vertex: int, graph) -> int | None:
        return 0 if vertex == self.source else None


class DenseBreadthFirstSearch(DenseVertexProgram):
    """Algorithm 2 as whole-superstep array kernels (distance flooding).

    Besides the engine-owned distances it records ``frontier_sizes`` —
    the newly discovered vertices per level, Fig. 2's comparison series
    against the message counts.
    """

    combine = np.minimum
    combine_identity = UNREACHED
    message_dtype = np.int64

    def __init__(self, source: int):
        self.source = int(source)
        #: Newly discovered vertices per level (rebuilt each run).
        self.frontier_sizes: list[int] = []

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        """Distance 0 at the source, infinity elsewhere."""
        self.frontier_sizes = [1]
        dist = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
        dist[self.source] = 0
        return dist

    def arc_payload(
        self, graph: CSRGraph, values: np.ndarray, arc_mask: np.ndarray
    ) -> np.ndarray:
        """A sender floods its distance; +1 charged at the receiving arc
        (same value as sending ``dist + 1``)."""
        return values[graph.arc_sources()[arc_mask]] + 1

    def compute(self, ctx: DenseSuperstepContext) -> np.ndarray | None:
        ctx.vote_to_halt()
        if ctx.superstep == 0:                    # lines 6-10
            return np.asarray([self.source], dtype=np.int64)
        dist, receivers = ctx.values, ctx.receivers  # lines 11-14
        improved = receivers[ctx.messages[receivers] < dist[receivers]]
        dist[improved] = ctx.messages[improved]
        self.frontier_sizes.append(int(improved.size))
        return improved


@dataclass
class BSPBFSResult:
    """Outcome of the dense-engine BSP breadth-first search."""

    source: int
    #: Hop distance; -1 for unreachable vertices.
    distances: np.ndarray
    num_supersteps: int
    #: Vertices computing in each superstep (message receivers).
    active_per_superstep: list[int] = field(default_factory=list)
    #: Messages sent in each superstep — Fig. 2's green series.
    messages_per_superstep: list[int] = field(default_factory=list)
    #: True frontier per level (newly discovered vertices) for comparison
    #: against the messages series.
    frontier_sizes: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)

    @property
    def vertices_reached(self) -> int:
        return int(np.count_nonzero(self.distances >= 0))


def bsp_breadth_first_search(
    graph: CSRGraph,
    source: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 10_000,
    num_workers: int | None = None,
    partition: str = "hash",
    telemetry=None,
    engine=None,
) -> BSPBFSResult:
    """Dense-engine execution of Algorithm 2.

    ``num_workers`` > 1 shards the scatter/gather over that many worker
    processes under the given ``partition`` placement.  ``telemetry``
    (a :class:`~repro.telemetry.core.Telemetry`) records wall-clock
    spans without affecting results.  ``engine`` reuses a warm
    caller-owned engine built on this graph (left open afterwards; the
    engine-construction kwargs are then ignored).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    program = DenseBreadthFirstSearch(source)
    with engine_for(
        graph,
        engine,
        num_workers=num_workers,
        partition=partition,
        costs=costs,
        telemetry=telemetry,
    ) as eng:
        result = eng.run(
            program, max_supersteps=max_supersteps, trace_label="bsp/bfs"
        )
    dist = result.values
    return BSPBFSResult(
        source=source,
        distances=np.where(dist == UNREACHED, -1, dist),
        num_supersteps=result.num_supersteps,
        active_per_superstep=result.active_per_superstep,
        messages_per_superstep=result.messages_per_superstep,
        frontier_sizes=program.frontier_sizes,
        trace=result.trace,
    )
