"""Breadth-first search in the BSP model (paper Algorithm 2).

The vertex state is the current distance from the source.  In superstep 0
the source sets its distance to 0 and floods it; every other vertex holds
infinity.  A vertex receiving a distance ``m`` with ``m + 1 < D`` adopts
``m + 1`` and floods its new distance.

The crucial contrast with the shared-memory level-synchronous BFS (§IV):
the BSP algorithm "must send messages to every vertex that could possibly
be on the frontier" — one message per edge incident on the frontier —
while GraphCT enqueues each undiscovered vertex exactly once.  Past the
frontier apex the message count exceeds the true frontier by an order of
magnitude (Fig. 2), and the wasted deliveries are discarded.

The module pairs the paper's pseudocode as a per-vertex
:class:`BSPBreadthFirstSearch` (run by the reference engine) with the
whole-superstep :class:`DenseBreadthFirstSearch` (run by the
:class:`~repro.bsp.dense.DenseBSPEngine` — the benchmark path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bsp import engine_for
from repro.bsp.dense import DenseSuperstepContext, DenseVertexProgram
from repro.bsp.frontier import arc_indices
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "BSPBFSResult",
    "BSPBreadthFirstSearch",
    "DIRECTIONS",
    "DenseBreadthFirstSearch",
    "bsp_breadth_first_search",
]

#: Sentinel for "infinity" in integer distance arrays.
UNREACHED = np.iinfo(np.int64).max

#: Execution directions accepted by :class:`DenseBreadthFirstSearch`.
DIRECTIONS = ("auto", "top-down", "bottom-up")


class BSPBreadthFirstSearch(VertexProgram):
    """Algorithm 2, verbatim vertex program.

    The source vertex is a constructor argument; every vertex's state is
    its tentative distance (``None`` encodes infinity for readability).
    """

    def __init__(self, source: int):
        self.source = int(source)

    def compute(self, ctx: VertexContext, messages: Sequence[int]) -> None:
        vote = False
        dist = ctx.value
        for m in messages:                        # lines 2-5
            if dist is None or m + 1 < dist:
                dist = m + 1
                vote = True
        if ctx.superstep == 0:                    # lines 6-10
            if dist == 0 and ctx.vertex_id == self.source:
                ctx.send_to_neighbors(dist)
        else:                                     # lines 11-14
            if vote:
                ctx.value = dist
                ctx.send_to_neighbors(dist)
        ctx.vote_to_halt()

    def initial_value(self, vertex: int, graph) -> int | None:
        return 0 if vertex == self.source else None


class DenseBreadthFirstSearch(DenseVertexProgram):
    """Algorithm 2 as whole-superstep array kernels, direction-optimized.

    At superstep ``s`` every delivered message equals ``s`` (each sender
    holds distance ``s - 1``), so the improved set is exactly
    ``receivers ∩ {dist == ∞}`` and the program never needs to read the
    materialized inbox.  That identity unlocks the two Beamer/Buluç-
    Madduri execution directions:

    * **top-down** — filter the engine's receiver set for unvisited
      vertices.  Performs no per-arc work at all; the per-edge flood
      remains *modeled* (it is the BSP message count the paper's Fig. 2
      charges) but is never executed.
    * **bottom-up** — each unvisited vertex scans its in-neighbors for a
      parent on the previous level.  Performed work is proportional to
      the *unvisited* arcs, the paper's GraphCT-style "touch each
      undiscovered vertex" cost.

    ``direction="auto"`` switches per superstep with Beamer's heuristic
    (bottom-up once ``frontier_arcs * alpha > unvisited_arcs``; only on
    undirected graphs, where out-neighbors are in-neighbors).  Both
    directions discover the identical frontier in the identical order,
    so distances, message counts, and work traces are bit-identical to
    the reference engine regardless of the switch schedule — the
    decision and the performed per-direction arc scans surface only as
    the ``direction`` / ``edges_scanned`` telemetry counters and the
    :attr:`direction_history` record.

    Besides the engine-owned distances it records ``frontier_sizes`` —
    the newly discovered vertices per level, Fig. 2's comparison series
    against the message counts.
    """

    combine = np.minimum
    combine_identity = UNREACHED
    message_dtype = np.int64

    def __init__(
        self,
        source: int,
        *,
        direction: str = "auto",
        alpha: float = 14.0,
    ):
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.source = int(source)
        self.direction = direction
        self.alpha = float(alpha)
        #: Newly discovered vertices per level (rebuilt each run).
        self.frontier_sizes: list[int] = []
        #: Direction executed per superstep >= 1 (rebuilt each run).
        self.direction_history: list[str] = []
        #: Arcs actually examined by the compute kernel, per direction.
        #: Top-down scans none (the flood is modeled, not performed).
        self.edges_scanned: dict[str, int] = {"top-down": 0, "bottom-up": 0}
        # Beamer-heuristic state: arcs incident on the current frontier
        # and on the still-unvisited set.  None until initial_values (or
        # recovered from the distance array after a checkpoint resume).
        self._frontier_arcs: int | None = None
        self._unvisited_arcs: int | None = None
        self._reverse: CSRGraph | None = None

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        """Distance 0 at the source, infinity elsewhere."""
        self.frontier_sizes = [1]
        self.direction_history = []
        self.edges_scanned = {"top-down": 0, "bottom-up": 0}
        source_deg = int(graph.degrees()[self.source])
        self._frontier_arcs = source_deg
        self._unvisited_arcs = graph.num_arcs - source_deg
        dist = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
        dist[self.source] = 0
        return dist

    def arc_payload(
        self, graph: CSRGraph, values: np.ndarray, selection: np.ndarray
    ) -> np.ndarray:
        """A sender floods its distance; +1 charged at the receiving arc
        (same value as sending ``dist + 1``)."""
        return values[graph.arc_sources()[selection]] + 1

    def _in_neighbor_graph(self, graph: CSRGraph) -> CSRGraph:
        """CSR whose adjacency lists are in-neighbors (cached transpose)."""
        if not graph.directed:
            return graph
        if self._reverse is None:
            self._reverse = graph.reverse()
        return self._reverse

    def _use_bottom_up(self, ctx: DenseSuperstepContext) -> bool:
        if self.direction != "auto":
            return self.direction == "bottom-up"
        if ctx.graph.directed:
            # Auto never transposes a directed graph behind the caller's
            # back; ask for direction="bottom-up" explicitly to pay it.
            return False
        if self._frontier_arcs is None:  # resumed run: program state was
            # not checkpointed — recover it from the distances (senders
            # at superstep s are exactly the vertices at distance s - 1).
            deg = ctx.graph.degrees()
            dist = ctx.values
            self._frontier_arcs = int(deg[dist == ctx.superstep - 1].sum())
            self._unvisited_arcs = int(deg[dist == UNREACHED].sum())
        return self._frontier_arcs * self.alpha > self._unvisited_arcs

    def _bottom_up_step(
        self, ctx: DenseSuperstepContext
    ) -> tuple[np.ndarray, int]:
        """Unvisited vertices scan in-neighbors for a previous-level parent."""
        rev = self._in_neighbor_graph(ctx.graph)
        dist = ctx.values
        cand = np.flatnonzero(dist == UNREACHED)
        idx = arc_indices(cand, rev.row_ptr)
        hit = dist[rev.col_idx[idx]] == ctx.superstep - 1
        counts = rev.row_ptr[cand + 1] - rev.row_ptr[cand]
        owner = np.repeat(np.arange(cand.size), counts)
        found = np.bincount(
            owner[hit], minlength=cand.size
        ).astype(bool, copy=False)
        return cand[found], int(idx.size)

    def compute(self, ctx: DenseSuperstepContext) -> np.ndarray | None:
        ctx.vote_to_halt()
        if ctx.superstep == 0:                    # lines 6-10
            return np.asarray([self.source], dtype=np.int64)
        dist = ctx.values                         # lines 11-14
        bottom_up = self._use_bottom_up(ctx)
        if bottom_up:
            improved, scanned = self._bottom_up_step(ctx)
        else:
            # Every message this superstep equals ctx.superstep, so the
            # adoption test "message < dist" is "dist == UNREACHED" and
            # the inbox never needs materializing.
            receivers = ctx.receivers
            improved = receivers[dist[receivers] == UNREACHED]
            scanned = 0
        dist[improved] = ctx.superstep
        label = "bottom-up" if bottom_up else "top-down"
        self.direction_history.append(label)
        self.edges_scanned[label] += scanned
        ctx.counter("direction", 1 if bottom_up else 0)
        ctx.counter("edges_scanned", scanned)
        if self._frontier_arcs is not None:
            improved_arcs = int(ctx.graph.degrees()[improved].sum())
            self._frontier_arcs = improved_arcs
            self._unvisited_arcs -= improved_arcs
        if improved.size:
            # A level is only a level if it discovered something: the
            # final superstep (all deliveries land on visited vertices)
            # must not append a spurious trailing zero.
            self.frontier_sizes.append(int(improved.size))
        return improved


@dataclass
class BSPBFSResult:
    """Outcome of the dense-engine BSP breadth-first search."""

    source: int
    #: Hop distance; -1 for unreachable vertices.
    distances: np.ndarray
    num_supersteps: int
    #: Vertices computing in each superstep (message receivers).
    active_per_superstep: list[int] = field(default_factory=list)
    #: Messages sent in each superstep — Fig. 2's green series.
    messages_per_superstep: list[int] = field(default_factory=list)
    #: True frontier per level (newly discovered vertices) for comparison
    #: against the messages series.
    frontier_sizes: list[int] = field(default_factory=list)
    #: Execution direction per superstep >= 1 ("top-down"/"bottom-up").
    #: Performance bookkeeping only — results are direction-independent.
    directions: list[str] = field(default_factory=list)
    #: Arcs the compute kernel actually examined, per direction (the
    #: performed-work counterpart of the modeled message counts).
    edges_scanned: dict[str, int] = field(default_factory=dict)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)

    @property
    def vertices_reached(self) -> int:
        return int(np.count_nonzero(self.distances >= 0))


def bsp_breadth_first_search(
    graph: CSRGraph,
    source: int,
    *,
    direction: str = "auto",
    alpha: float = 14.0,
    costs: KernelCosts = DEFAULT_COSTS,
    max_supersteps: int = 10_000,
    num_workers: int | None = None,
    partition: str = "hash",
    telemetry=None,
    engine=None,
) -> BSPBFSResult:
    """Dense-engine execution of Algorithm 2, direction-optimized.

    ``direction`` selects the per-superstep execution strategy
    (``"auto"``/``"top-down"``/``"bottom-up"``; see
    :class:`DenseBreadthFirstSearch` — distances and message counts are
    identical under every choice), with ``alpha`` the Beamer switch
    threshold for ``"auto"``.  ``num_workers`` > 1 shards the
    scatter/gather over that many worker processes under the given
    ``partition`` placement.  ``telemetry`` (a
    :class:`~repro.telemetry.core.Telemetry`) records wall-clock spans
    without affecting results.  ``engine`` reuses a warm caller-owned
    engine built on this graph (left open afterwards; the
    engine-construction kwargs are then ignored).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    program = DenseBreadthFirstSearch(
        source, direction=direction, alpha=alpha
    )
    with engine_for(
        graph,
        engine,
        num_workers=num_workers,
        partition=partition,
        costs=costs,
        telemetry=telemetry,
    ) as eng:
        result = eng.run(
            program, max_supersteps=max_supersteps, trace_label="bsp/bfs"
        )
    dist = result.values
    return BSPBFSResult(
        source=source,
        distances=np.where(dist == UNREACHED, -1, dist),
        num_supersteps=result.num_supersteps,
        active_per_superstep=result.active_per_superstep,
        messages_per_superstep=result.messages_per_superstep,
        frontier_sizes=program.frontier_sizes,
        directions=program.direction_history,
        edges_scanned=program.edges_scanned,
        trace=result.trace,
    )
