"""Distributed-cluster BSP cost model.

The paper contrasts its shared-memory BSP results with three published
distributed BSP systems (§III–§IV): Apache Giraph computing connected
components on a Wikipedia-derived graph in ~4 s on 6 nodes, Giraph SSSP
on a Twitter graph in ~30 s on 60 machines (flat from 30 to 85), and
Microsoft's Trinity running BFS on an RMAT graph with 512M vertices /
6.6B edges in ~400 s on 14 machines.  This subpackage provides the
coarse per-machine compute + network cost model the anecdote bench uses
to show the reproduction lands in the same orders of magnitude.
"""

from repro.cluster.partition import (
    PartitionStats,
    balanced_edge_partition,
    hash_partition,
    partition_stats,
)
from repro.cluster.model import (
    ClusterMachine,
    ClusterSimulation,
    flat_scaling_range,
    simulate_cluster_bsp,
)

__all__ = [
    "ClusterMachine",
    "PartitionStats",
    "balanced_edge_partition",
    "hash_partition",
    "partition_stats",
    "ClusterSimulation",
    "flat_scaling_range",
    "simulate_cluster_bsp",
]
