"""A coarse BSP cluster cost model.

Per superstep, a cluster of M commodity machines pays:

* **compute** — instructions spread over ``M x cores`` scalar cores, with
  a load-imbalance factor: random hash partitioning of a scale-free
  graph leaves "one or several machines acquiring high-degree vertices,
  and therefore a disproportionate share of the messaging activity"
  (paper §II);
* **network** — every message crosses the network (vertices are hashed
  across machines, so a 1/M fraction staying local is ignored at these
  scales), bounded by per-machine bandwidth;
* **barrier** — a fixed synchronization cost per superstep (coordination
  through e.g. ZooKeeper in Giraph's case; tens of milliseconds).

The model intentionally has an order-of-magnitude accuracy target: the
paper's cluster numbers are quoted as "approximately 4 seconds" /
"approximately 30 seconds" / "approximately 400 seconds".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmt.trace import WorkTrace

__all__ = ["ClusterMachine", "ClusterSimulation", "simulate_cluster_bsp"]


@dataclass(frozen=True)
class ClusterMachine:
    """A commodity cluster configuration.

    Defaults approximate the 2012-era test systems the paper cites (e.g.
    Schelter's 6-node cluster of two-core Opterons with 32 GiB each).
    """

    num_machines: int = 6
    cores_per_machine: int = 4
    #: Scalar instructions retired per core per second.
    core_ips: float = 1.5e9
    #: Messages a machine can process per second — in-memory BSP engines
    #: (Giraph with bulk serialization, Trinity) sustain a few million
    #: small messages per second per machine end to end.
    messages_per_second_per_machine: float = 5e6
    #: Per-superstep global synchronization cost.
    barrier_seconds: float = 0.05
    #: Load imbalance multiplier for hash-partitioned scale-free graphs:
    #: the busiest machine carries ~imbalance x the mean load.
    imbalance: float = 2.0

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        if self.cores_per_machine < 1:
            raise ValueError("cores_per_machine must be >= 1")
        if self.core_ips <= 0:
            raise ValueError("core_ips must be positive")
        if self.messages_per_second_per_machine <= 0:
            raise ValueError("message rate must be positive")
        if self.barrier_seconds < 0:
            raise ValueError("barrier_seconds must be non-negative")
        if self.imbalance < 1.0:
            raise ValueError("imbalance must be >= 1")

    def with_machines(self, num_machines: int) -> "ClusterMachine":
        from dataclasses import replace

        return replace(self, num_machines=num_machines)


@dataclass
class ClusterSimulation:
    """Priced cluster execution of a BSP trace."""

    machine: ClusterMachine
    per_superstep_seconds: list[float]

    @property
    def total_seconds(self) -> float:
        return sum(self.per_superstep_seconds)


def simulate_cluster_bsp(
    trace: WorkTrace,
    cluster: ClusterMachine,
    *,
    messages_per_superstep: list[int] | None = None,
) -> ClusterSimulation:
    """Price a BSP work trace on a distributed cluster.

    ``trace`` must contain the BSP supersteps (``kind == "superstep"``).
    ``messages_per_superstep`` overrides the message counts when the
    caller has exact numbers; otherwise enqueue writes are used as a
    proxy (writes per message is a known constant of the tracer).
    """
    supersteps = [r for r in trace if r.kind == "superstep"]
    if not supersteps:
        raise ValueError("trace contains no supersteps")

    times: list[float] = []
    m = cluster.num_machines
    for i, region in enumerate(supersteps):
        if messages_per_superstep is not None and i < len(
            messages_per_superstep
        ):
            messages = float(messages_per_superstep[i])
        else:
            messages = region.writes  # upper-bound proxy
        compute = (
            region.total_instructions
            * cluster.imbalance
            / (m * cluster.cores_per_machine * cluster.core_ips)
        )
        network = (
            messages
            * cluster.imbalance
            / (m * cluster.messages_per_second_per_machine)
        )
        times.append(compute + network + cluster.barrier_seconds)
    return ClusterSimulation(machine=cluster, per_superstep_seconds=times)


def flat_scaling_range(
    trace: WorkTrace,
    cluster: ClusterMachine,
    machine_counts: list[int],
    *,
    tolerance: float = 0.25,
) -> list[int]:
    """Machine counts at which adding machines no longer helps.

    Kajdanowicz et al. observe flat Giraph SSSP scaling from 30 to 85
    machines; a count M is "flat" when the simulated time at M is within
    ``tolerance`` of the time at the previous count.
    """
    flat: list[int] = []
    prev_time: float | None = None
    for m in sorted(machine_counts):
        t = simulate_cluster_bsp(trace, cluster.with_machines(m)).total_seconds
        if prev_time is not None and t > prev_time * (1.0 - tolerance):
            flat.append(m)
        prev_time = t
    return flat
