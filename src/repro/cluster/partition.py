"""Vertex partitioning across cluster machines.

Paper §II: "the assignment of vertex to machine is based on a random
hash function yielding a uniform distribution of the vertices.
Real-world graphs, however, have the scale-free property.  In this case,
the distribution of edges will be uneven with one or several machines
acquiring high-degree vertices, and therefore a disproportionate share
of the messaging activity."

This module makes that claim measurable: :func:`hash_partition` is
Pregel/Giraph's default placement, :func:`balanced_edge_partition` is
the degree-aware greedy alternative, and :class:`PartitionStats`
quantifies the per-machine vertex/edge/message load and its imbalance.
The partition ablation bench feeds the measured imbalance back into the
cluster cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.xmt.memory import HashedMemory

__all__ = [
    "PartitionStats",
    "balanced_edge_partition",
    "hash_partition",
    "partition_stats",
    "shard_indices",
]


@dataclass(frozen=True)
class PartitionStats:
    """Per-machine load of a vertex partition."""

    num_machines: int
    vertices_per_machine: np.ndarray
    #: Arcs whose *destination* lives on the machine — the share of
    #: incoming messages under flooding algorithms.
    arcs_per_machine: np.ndarray
    #: Arcs crossing machine boundaries (network messages).
    cut_arcs: int
    total_arcs: int

    @property
    def vertex_imbalance(self) -> float:
        """max/mean vertices per machine (1.0 = perfect)."""
        mean = self.vertices_per_machine.mean()
        return float(self.vertices_per_machine.max() / mean) if mean else 1.0

    @property
    def edge_imbalance(self) -> float:
        """max/mean incoming arcs per machine — the paper's
        "disproportionate share of the messaging activity"."""
        mean = self.arcs_per_machine.mean()
        return float(self.arcs_per_machine.max() / mean) if mean else 1.0

    @property
    def cut_fraction(self) -> float:
        """Fraction of arcs that cross machines (network traffic)."""
        return self.cut_arcs / self.total_arcs if self.total_arcs else 0.0


def hash_partition(
    graph: CSRGraph, num_machines: int, *, seed: int = 0
) -> np.ndarray:
    """Pregel's default placement: a uniform hash of the vertex id."""
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    hasher = HashedMemory(num_machines, seed=seed)
    return np.atleast_1d(
        hasher.module_of(np.arange(graph.num_vertices))
    ).astype(np.int64)


def balanced_edge_partition(
    graph: CSRGraph, num_machines: int
) -> np.ndarray:
    """Greedy degree-aware placement: heaviest vertices first, each to
    the currently lightest machine (longest-processing-time rule)."""
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    degrees = graph.degrees()
    order = np.argsort(degrees, kind="stable")[::-1]
    assignment = np.zeros(graph.num_vertices, dtype=np.int64)
    loads = np.zeros(num_machines, dtype=np.int64)
    for v in order.tolist():
        machine = int(np.argmin(loads))
        assignment[v] = machine
        loads[machine] += degrees[v]
    return assignment


def shard_indices(
    assignment: np.ndarray, num_shards: int | None = None
) -> list[np.ndarray]:
    """Per-shard sorted vertex-id arrays for a machine assignment.

    The inverse view of an assignment vector: ``shard_indices(a, k)[m]``
    holds the vertices placed on machine ``m``, ascending.  This is the
    index form the sharded BSP engine consumes — each worker's slice of
    a superstep's sender set is ``senders ∩ shard_indices(...)[m]``.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.ndim != 1:
        raise ValueError("assignment must be one-dimensional")
    if assignment.size and assignment.min() < 0:
        raise ValueError("machine ids must be non-negative")
    observed = int(assignment.max()) + 1 if assignment.size else 0
    if num_shards is None:
        num_shards = max(observed, 1)
    elif num_shards < observed:
        raise ValueError(
            f"assignment references machine {observed - 1} but only "
            f"{num_shards} shard(s) were requested"
        )
    # Stable argsort groups ids by shard while keeping them ascending
    # within each group.
    order = np.argsort(assignment, kind="stable").astype(np.int64)
    counts = np.bincount(assignment, minlength=num_shards)
    return [
        np.ascontiguousarray(part)
        for part in np.split(order, np.cumsum(counts)[:-1])
    ]


def partition_stats(graph: CSRGraph, assignment: np.ndarray) -> PartitionStats:
    """Measure a partition's per-machine load."""
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.num_vertices,):
        raise ValueError("assignment must have one entry per vertex")
    if assignment.size and assignment.min() < 0:
        raise ValueError("machine ids must be non-negative")
    num_machines = int(assignment.max()) + 1 if assignment.size else 1

    vertices = np.bincount(assignment, minlength=num_machines)
    src = graph.arc_sources()
    dst = graph.col_idx
    arcs = np.bincount(
        assignment[dst], minlength=num_machines
    ) if dst.size else np.zeros(num_machines, dtype=np.int64)
    cut = int(np.count_nonzero(assignment[src] != assignment[dst]))
    return PartitionStats(
        num_machines=num_machines,
        vertices_per_machine=vertices,
        arcs_per_machine=arcs,
        cut_arcs=cut,
        total_arcs=graph.num_arcs,
    )
