"""Telemetry export: Chrome trace events and a structured JSON report.

Two machine-readable renditions of one :class:`~repro.telemetry.core.Telemetry`:

* :func:`chrome_trace` — the Chrome trace-event format (the ``traceEvents``
  JSON array), loadable in `Perfetto <https://ui.perfetto.dev>`_ or
  ``chrome://tracing``.  Spans become complete (``"ph": "X"``) events;
  each telemetry track renders as its own named row (``tid`` 0 is the
  engine's main loop, higher tids are shard workers), and counter samples
  become ``"ph": "C"`` counter tracks.
* :func:`telemetry_report` — a schema-versioned dictionary with the raw
  spans, counters, and per-name summary statistics, for programmatic
  consumption (the ``repro profile`` report embeds it).

Timestamps are exported in microseconds relative to the telemetry
object's construction, so traces start near zero regardless of the
host's clock origin.
"""

from __future__ import annotations

import json

from repro.telemetry.core import MAIN_TRACK, Telemetry

__all__ = [
    "CHROME_TRACE_PID",
    "REPORT_FORMAT_VERSION",
    "chrome_trace",
    "memory_summary",
    "save_chrome_trace",
    "save_report",
    "telemetry_report",
]

#: Single synthetic process id used for all exported events.
CHROME_TRACE_PID = 1

#: Schema version of :func:`telemetry_report` output.
REPORT_FORMAT_VERSION = 1


def _track_name(track: int) -> str:
    return "engine" if track == MAIN_TRACK else f"worker {track - 1}"


def chrome_trace(telemetry: Telemetry) -> dict:
    """Render ``telemetry`` as a Chrome trace-event JSON object.

    Returns a dictionary with the standard ``traceEvents`` list plus
    ``displayTimeUnit`` and an ``otherData`` block carrying the label.
    Write it with :func:`save_chrome_trace` and open the file directly
    in Perfetto.
    """
    origin = telemetry.origin_ns
    stamps = [s.start_ns for s in telemetry.spans] + [
        c.t_ns for c in telemetry.counters
    ]
    if stamps:
        origin = min(origin, *stamps)

    def us(t_ns: int) -> float:
        return (t_ns - origin) / 1e3

    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": CHROME_TRACE_PID,
            "tid": MAIN_TRACK,
            "args": {"name": f"repro {telemetry.label}".strip()},
        }
    ]
    tracks = set(telemetry.tracks()) | {MAIN_TRACK}
    for track in sorted(tracks):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": CHROME_TRACE_PID,
                "tid": track,
                "args": {"name": _track_name(track)},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": CHROME_TRACE_PID,
                "tid": track,
                "args": {"sort_index": track},
            }
        )
    for span in telemetry.spans:
        args = {k: v for k, v in span.args.items()}
        if span.superstep >= 0:
            args.setdefault("superstep", span.superstep)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": CHROME_TRACE_PID,
                "tid": span.track,
                "ts": us(span.start_ns),
                "dur": span.duration_ns / 1e3,
                "args": args,
            }
        )
    for sample in telemetry.counters:
        name = (
            sample.name
            if sample.track == MAIN_TRACK
            else f"{sample.name}[w{sample.track - 1}]"
        )
        events.append(
            {
                "ph": "C",
                "name": name,
                "pid": CHROME_TRACE_PID,
                "tid": MAIN_TRACK,
                "ts": us(sample.t_ns),
                "args": {"value": sample.value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"label": telemetry.label, "format": "chrome-trace"},
    }


def memory_summary(telemetry: Telemetry) -> dict:
    """Peak memory footprint derived from the memory counter samples.

    Returns ``peak_rss_bytes`` / ``tracemalloc_peak_bytes`` maxima over
    the main track (``tracemalloc_peak_bytes`` samples are per-interval
    peaks, so the overall peak is their maximum) and a
    ``worker_peak_rss_bytes`` map for shard workers.  Empty dict when no
    memory samples were recorded (telemetry off, or an engine predating
    the memory hooks).
    """
    out: dict = {}
    workers: dict[str, int] = {}
    for c in telemetry.counters:
        if c.name in ("peak_rss_bytes", "tracemalloc_peak_bytes"):
            if c.track == MAIN_TRACK:
                out[c.name] = max(out.get(c.name, 0), int(c.value))
        elif c.name == "worker_peak_rss_bytes":
            key = str(c.track - 1)
            workers[key] = max(workers.get(key, 0), int(c.value))
    if workers:
        out["worker_peak_rss_bytes"] = workers
    return out


def telemetry_report(telemetry: Telemetry) -> dict:
    """Schema-versioned structured dump of spans, counters, and summary."""
    return {
        "format_version": REPORT_FORMAT_VERSION,
        "label": telemetry.label,
        "spans": [
            {
                "name": s.name,
                "category": s.category,
                "track": s.track,
                "superstep": s.superstep,
                "start_ns": s.start_ns - telemetry.origin_ns,
                "duration_ns": s.duration_ns,
                "args": dict(s.args),
            }
            for s in telemetry.spans
        ],
        "counters": [
            {
                "name": c.name,
                "value": c.value,
                "track": c.track,
                "superstep": c.superstep,
                "t_ns": c.t_ns - telemetry.origin_ns,
            }
            for c in telemetry.counters
        ],
        "span_summary": telemetry.span_summary(),
        "memory": memory_summary(telemetry),
    }


def save_chrome_trace(telemetry: Telemetry, path) -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(path, "w", encoding="ascii") as fh:
        json.dump(chrome_trace(telemetry), fh, indent=1)


def save_report(telemetry: Telemetry, path) -> None:
    """Write :func:`telemetry_report` output as JSON to ``path``."""
    with open(path, "w", encoding="ascii") as fh:
        json.dump(telemetry_report(telemetry), fh, indent=1)
