"""Runtime telemetry: measured wall-clock observability for the engines.

The rest of the library models what a Cray XMT *would* do; this package
measures what the host actually *did*.  A :class:`Telemetry` object
threads through the BSP engines (reference, dense, sharded) and the
GraphCT workflow, recording wall-clock spans (superstep, scatter,
gather, combine, barrier, kernel) and counter samples (active vertices,
messages, bytes moved, per-worker busy/wait), and exports them as a
Chrome trace (Perfetto-loadable) or a structured JSON report.
:mod:`~repro.telemetry.compare` joins the measured spans with the
modeled :class:`~repro.xmt.trace.WorkTrace` regions by superstep index,
so measured-vs-modeled ratios are first-class.

Engines default to :data:`NULL_TELEMETRY`, the no-op twin — the
disabled path records nothing, reads no clock, and leaves results and
modeled traces bit-identical.

The ``repro profile`` CLI subcommand (:mod:`repro.telemetry.profile`)
runs any algorithm on any engine with telemetry on and writes the trace
plus a measured-vs-modeled summary; see ``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.compare import (
    SpanCorrelation,
    correlate,
    format_measured_vs_modeled,
    measured_vs_modeled,
)
from repro.telemetry.core import (
    MAIN_TRACK,
    NULL_TELEMETRY,
    CounterSample,
    NullTelemetry,
    Span,
    Telemetry,
    peak_rss_bytes,
    tracemalloc_peak_bytes,
    worker_track,
)
from repro.telemetry.export import (
    CHROME_TRACE_PID,
    REPORT_FORMAT_VERSION,
    chrome_trace,
    memory_summary,
    save_chrome_trace,
    save_report,
    telemetry_report,
)
from repro.telemetry.flightrec import (
    POSTMORTEM_FORMAT_VERSION,
    FlightRecord,
    FlightRecorder,
    RingWriter,
    StallWatchdog,
    decode_ring,
    list_postmortems,
    load_postmortem,
    read_beacons,
)
from repro.telemetry.logs import NULL_LOGGER, NullLogger, StructuredLogger
from repro.telemetry.metrics import (
    METRICS_FORMAT_VERSION,
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    metrics_snapshot,
    render_prometheus,
)

__all__ = [
    "CHROME_TRACE_PID",
    "MAIN_TRACK",
    "METRICS_FORMAT_VERSION",
    "NULL_LOGGER",
    "NULL_METRICS",
    "NULL_TELEMETRY",
    "POSTMORTEM_FORMAT_VERSION",
    "REPORT_FORMAT_VERSION",
    "CounterSample",
    "FlightRecord",
    "FlightRecorder",
    "MetricsRegistry",
    "NullLogger",
    "NullMetricsRegistry",
    "NullTelemetry",
    "RingWriter",
    "Span",
    "SpanCorrelation",
    "StallWatchdog",
    "StructuredLogger",
    "Telemetry",
    "chrome_trace",
    "correlate",
    "decode_ring",
    "format_measured_vs_modeled",
    "list_postmortems",
    "load_postmortem",
    "measured_vs_modeled",
    "memory_summary",
    "metrics_snapshot",
    "peak_rss_bytes",
    "read_beacons",
    "render_prometheus",
    "save_chrome_trace",
    "save_report",
    "telemetry_report",
    "tracemalloc_peak_bytes",
    "worker_track",
]
