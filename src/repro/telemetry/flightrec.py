"""Worker flight recorder: shared-memory event rings + stall watchdog.

The sharded engine's workers are black boxes between barriers: the
parent learns one ``busy_ns`` per worker per superstep, *after* the
barrier — a crashed or wedged shard leaves no evidence behind.  This
module is the in-flight instrument: every worker continuously appends
fixed-size binary event records (phase enter/exit, arc-range progress
ticks, message counts, RSS samples) into a per-worker ring buffer that
lives in :mod:`multiprocessing.shared_memory`, struct-packed like the
pipe frames in :mod:`repro.bsp._wire`.  The parent — or any other
process on the host (``repro top``) — samples the rings without ever
talking to the workers.

Design constraints, in order:

* **Lock-free, single-writer** — each worker owns exactly one ring.
  The writer fills a slot, then publishes the new sequence number in
  the ring header; readers validate every decoded record against an
  embedded CRC32 and its expected sequence number, so a read that races
  the writer (torn slot, header lag) yields *fewer* records, never a
  corrupt one.
* **Bounded** — a ring holds :attr:`FlightRecorder.capacity` records
  and overwrites the oldest; recording can never grow memory or block.
* **Cheap enough to be default-on** — one record is two ``struct.pack``
  calls and a CRC over 44 bytes (~1-2 µs); a superstep writes a handful
  of records per worker, so the measured overhead on
  ``bench_parallel_scaling`` stays under the 2 % budget.

On top of the rings sit:

* :class:`StallWatchdog` — a parent-side daemon thread that samples the
  rings between barriers and flags workers whose open phase has seen no
  event (no progress tick) within ``stall_timeout`` seconds.  The
  engine's pipe-receive loop consults the same predicate, so a wedged
  worker turns into a :class:`~repro.bsp.parallel.WorkerStallError`
  instead of an eternal blocking ``recv``.
* **Postmortem bundles** — :meth:`FlightRecorder.dump_postmortem`
  freezes the full ring contents, per-worker status, the last barrier
  state, and the partition map into one JSON bundle under
  ``results/postmortem/`` whenever a run dies (crash, stall, worker
  error), served back by ``GET /debug/postmortem/<id>``.
* **Beacons** — a tiny JSON file per live recorder under
  ``results/flightrec/`` naming the shared-memory block, so ``repro
  top`` can attach to a running engine from another process.

Timestamps are :func:`time.monotonic_ns` — CLOCK_MONOTONIC on POSIX,
comparable across processes on the same host, which is exactly the
cross-process comparison the watchdog makes.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "EV_ENTER",
    "EV_EXIT",
    "EV_PROGRESS",
    "EV_RSS",
    "EVENT_NAMES",
    "PH_GATHER",
    "PH_IDLE",
    "PH_RUN",
    "PH_SCATTER",
    "PHASE_NAMES",
    "POSTMORTEM_FORMAT_VERSION",
    "FlightRecord",
    "FlightRecorder",
    "RingWriter",
    "StallWatchdog",
    "decode_ring",
    "list_postmortems",
    "load_postmortem",
    "read_beacons",
]

# -- record schema ----------------------------------------------------------
#
# One record is 48 little-endian bytes:
#
#   offset  0  uint64  seq        monotonically increasing per worker
#   offset  8  int64   t_ns       time.monotonic_ns at the writer
#   offset 16  int64   step       superstep / generation tag (-1 = n/a)
#   offset 24  int64   a          payload (progress done, rss bytes, ...)
#   offset 32  int64   b          payload (progress total, busy ns, ...)
#   offset 40  uint8   kind       event kind (EV_*)
#   offset 41  uint8   phase      phase code (PH_*)
#   offset 42  uint16  reserved   0
#   offset 44  uint32  crc        CRC32 of bytes [0, 44)
#
# The CRC makes every record self-validating: a reader that catches the
# writer mid-slot (or decodes a slot the writer lapped) sees a checksum
# mismatch and drops the record instead of returning torn data.

_RECORD = struct.Struct("<QqqqqBBH")
_CRC = struct.Struct("<I")
RECORD_SIZE = _RECORD.size + _CRC.size  # 48
assert RECORD_SIZE == 48

# Ring header: write_seq (published *after* the slot is filled), then
# capacity and record size so readers need no side channel.  Padded to
# 64 bytes so headers of adjacent rings never share a cache line.
_HEADER = struct.Struct("<QQQ")
HEADER_SIZE = 64

#: Event kinds.
EV_ENTER = 1  #: worker picked up a task (phase begins)
EV_EXIT = 2  #: worker replied (phase ends); a=messages, b=busy_ns
EV_PROGRESS = 3  #: arc-range progress tick; a=arcs done, b=arcs total
EV_RSS = 4  #: memory sample; a=peak RSS bytes

EVENT_NAMES = {
    EV_ENTER: "enter",
    EV_EXIT: "exit",
    EV_PROGRESS: "progress",
    EV_RSS: "rss",
}

#: Phase codes (what the worker is doing between barriers).
PH_IDLE = 0
PH_RUN = 1
PH_SCATTER = 2
PH_GATHER = 3

PHASE_NAMES = {
    PH_IDLE: "idle",
    PH_RUN: "run",
    PH_SCATTER: "scatter",
    PH_GATHER: "gather",
}

#: Schema version stamped into every postmortem bundle.
POSTMORTEM_FORMAT_VERSION = 1

#: Default ring capacity, in records, per worker (48 B each -> 12 KiB).
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class FlightRecord:
    """One decoded flight-recorder event."""

    seq: int
    t_ns: int
    step: int
    a: int
    b: int
    kind: int
    phase: int

    @property
    def kind_name(self) -> str:
        return EVENT_NAMES.get(self.kind, f"kind-{self.kind}")

    @property
    def phase_name(self) -> str:
        return PHASE_NAMES.get(self.phase, f"phase-{self.phase}")

    def to_dict(self) -> dict:
        """JSON-safe rendering (postmortem bundles, debug endpoints)."""
        return {
            "seq": int(self.seq),
            "t_ns": int(self.t_ns),
            "step": int(self.step),
            "a": int(self.a),
            "b": int(self.b),
            "kind": self.kind_name,
            "phase": self.phase_name,
        }


def _pack_record(
    seq: int, t_ns: int, step: int, a: int, b: int, kind: int, phase: int
) -> bytes:
    body = _RECORD.pack(seq, t_ns, step, a, b, kind, phase, 0)
    return body + _CRC.pack(zlib.crc32(body))


def _unpack_record(buf: bytes) -> FlightRecord | None:
    """Decode one 48-byte slot; None when torn/unwritten/invalid."""
    body = buf[: _RECORD.size]
    (crc,) = _CRC.unpack_from(buf, _RECORD.size)
    if zlib.crc32(body) != crc:
        return None
    seq, t_ns, step, a, b, kind, phase, reserved = _RECORD.unpack(body)
    if reserved != 0 or kind not in EVENT_NAMES or phase not in PHASE_NAMES:
        return None
    return FlightRecord(
        seq=seq, t_ns=t_ns, step=step, a=a, b=b, kind=kind, phase=phase
    )


def decode_ring(region: bytes, *, capacity: int) -> list[FlightRecord]:
    """Decode one worker's ring region (header + slots) into records.

    Returns the surviving records in sequence order.  Records whose CRC
    fails (the writer was mid-slot, or lapped the slot after the header
    was sampled) or whose sequence number does not match the slot they
    occupy are silently dropped — a concurrent read can under-report,
    never corrupt.
    """
    write_seq, cap, rec_size = _HEADER.unpack_from(region, 0)
    if cap != capacity or rec_size != RECORD_SIZE:
        return []
    lo = max(0, write_seq - capacity)
    out = []
    for seq in range(lo, write_seq):
        off = HEADER_SIZE + (seq % capacity) * RECORD_SIZE
        rec = _unpack_record(region[off : off + RECORD_SIZE])
        if rec is not None and rec.seq == seq:
            out.append(rec)
    return out


def _ring_bytes(capacity: int) -> int:
    return HEADER_SIZE + capacity * RECORD_SIZE


class RingWriter:
    """Worker-side, lock-free single-writer handle on one ring.

    Created inside the worker process from the spec dict the parent
    ships in the ``run`` command; never shared between processes or
    threads.  :meth:`record` is the only hot call: two struct packs,
    one CRC, one header publish.
    """

    def __init__(
        self, shm_name: str, capacity: int, worker_index: int
    ) -> None:
        self._shm = shared_memory.SharedMemory(name=shm_name)
        self._buf = self._shm.buf
        self._capacity = int(capacity)
        self._base = int(worker_index) * _ring_bytes(self._capacity)
        # Resume from the published sequence so a second "run" command
        # (warm engine reuse) keeps appending instead of rewinding.
        (self._seq, _, _) = _HEADER.unpack_from(self._buf, self._base)

    def record(
        self,
        kind: int,
        phase: int = PH_IDLE,
        step: int = -1,
        a: int = 0,
        b: int = 0,
    ) -> None:
        """Append one event; overwrites the oldest once the ring is full.

        Hot path: packs straight into the shared buffer (no per-record
        allocation) — two ``pack_into`` calls and one CRC over 44 bytes.
        """
        seq = self._seq
        off = self._base + HEADER_SIZE + (seq % self._capacity) * RECORD_SIZE
        buf = self._buf
        _RECORD.pack_into(
            buf, off,
            seq, time.monotonic_ns(), int(step), int(a), int(b),
            kind, phase, 0,
        )
        _CRC.pack_into(
            buf, off + _RECORD.size,
            zlib.crc32(buf[off : off + _RECORD.size]),
        )
        self._seq = seq + 1
        # Publish *after* the slot is complete: readers only trust slots
        # below write_seq, and the CRC guards the lapped-slot race.
        _HEADER.pack_into(buf, self._base, self._seq, self._capacity,
                          RECORD_SIZE)

    def close(self) -> None:
        self._buf = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except Exception:
            pass


@dataclass(frozen=True)
class WorkerFlightStatus:
    """Point-in-time view of one worker derived from its ring."""

    worker: int
    phase: str
    step: int
    progress_arcs: int
    progress_total: int
    rss_bytes: int
    last_event_ns: int | None
    events_recorded: int

    @property
    def progress_ratio(self) -> float:
        if self.progress_total <= 0:
            return 1.0 if self.phase == "idle" else 0.0
        return min(1.0, self.progress_arcs / self.progress_total)

    def to_dict(self, *, now_ns: int | None = None) -> dict:
        out = {
            "worker": self.worker,
            "phase": self.phase,
            "step": int(self.step),
            "progress_arcs": int(self.progress_arcs),
            "progress_total": int(self.progress_total),
            "progress_ratio": round(self.progress_ratio, 6),
            "rss_bytes": int(self.rss_bytes),
            "events_recorded": int(self.events_recorded),
        }
        if now_ns is not None and self.last_event_ns is not None:
            out["last_event_age_seconds"] = round(
                max(0, now_ns - self.last_event_ns) / 1e9, 6
            )
        return out


def _status_from_events(
    worker: int, events: list[FlightRecord], events_recorded: int
) -> WorkerFlightStatus:
    phase = PH_IDLE
    step = -1
    enter_seq = -1
    progress = (0, 0)
    rss = 0
    last_ns = None
    for rec in events:
        last_ns = rec.t_ns if last_ns is None else max(last_ns, rec.t_ns)
        if rec.kind == EV_ENTER:
            phase, step, enter_seq = rec.phase, rec.step, rec.seq
            progress = (0, 0)
        elif rec.kind == EV_EXIT:
            if rec.seq > enter_seq:
                phase = PH_IDLE
        elif rec.kind == EV_PROGRESS and rec.seq > enter_seq:
            progress = (rec.a, rec.b)
        elif rec.kind == EV_RSS:
            rss = max(rss, rec.a)
    return WorkerFlightStatus(
        worker=worker,
        phase=PHASE_NAMES.get(phase, "idle"),
        step=step,
        progress_arcs=progress[0],
        progress_total=progress[1],
        rss_bytes=rss,
        last_event_ns=last_ns,
        events_recorded=events_recorded,
    )


class FlightRecorder:
    """Parent-side owner of the per-worker event rings.

    Construct unbound (pure configuration), then :meth:`open` with the
    worker count allocates the shared block, and :meth:`close` releases
    it.  The :class:`~repro.bsp.parallel.ShardedBSPEngine` drives both
    ends of that lifecycle; ``repro top`` attaches to somebody else's
    block via the beacon file instead.

    Parameters
    ----------
    capacity:
        Ring slots per worker (each slot is 48 bytes).
    postmortem_dir:
        Where :meth:`dump_postmortem` writes bundles.
    beacon_dir:
        Where the live-attach beacon is written (None disables).
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        postmortem_dir: str | os.PathLike = "results/postmortem",
        beacon_dir: str | os.PathLike | None = "results/flightrec",
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.capacity = int(capacity)
        self.postmortem_dir = Path(postmortem_dir)
        self.beacon_dir = Path(beacon_dir) if beacon_dir is not None else None
        self.num_workers = 0
        self._shm: shared_memory.SharedMemory | None = None
        self._beacon_path: Path | None = None
        self._pm_counter = 0

    # -- lifecycle -----------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._shm is not None

    def open(self, num_workers: int) -> None:
        """Allocate rings for ``num_workers`` workers and drop a beacon."""
        if self._shm is not None:
            raise RuntimeError("flight recorder is already open")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        nbytes = self.num_workers * _ring_bytes(self.capacity)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        for w in range(self.num_workers):
            base = w * _ring_bytes(self.capacity)
            _HEADER.pack_into(
                self._shm.buf, base, 0, self.capacity, RECORD_SIZE
            )
        self._write_beacon()

    def close(self) -> None:
        """Remove the beacon and release/unlink the shared block."""
        if self._beacon_path is not None:
            try:
                self._beacon_path.unlink()
            except OSError:
                pass
            self._beacon_path = None
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - exported views alive
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass

    def worker_spec(self) -> dict:
        """The picklable dict a worker needs to build its :class:`RingWriter`."""
        if self._shm is None:
            raise RuntimeError("flight recorder is not open")
        return {"shm": self._shm.name, "capacity": self.capacity}

    # -- sampling ------------------------------------------------------
    def _region(self, worker: int) -> bytes:
        assert self._shm is not None
        size = _ring_bytes(self.capacity)
        base = worker * size
        # One copy out of shared memory, then decode from the snapshot:
        # the CRC path never reads a byte the writer is still touching.
        return bytes(self._shm.buf[base : base + size])

    def events(self, worker: int) -> list[FlightRecord]:
        """Decoded ring contents of one worker, oldest first."""
        if self._shm is None or not 0 <= worker < self.num_workers:
            return []
        return decode_ring(self._region(worker), capacity=self.capacity)

    def write_seq(self, worker: int) -> int:
        """Total events ever recorded by ``worker`` (ring may hold fewer)."""
        if self._shm is None:
            return 0
        base = worker * _ring_bytes(self.capacity)
        (seq,) = struct.unpack_from("<Q", self._shm.buf, base)
        return int(seq)

    def status(self, worker: int) -> WorkerFlightStatus:
        """Current phase/progress/rss view of one worker."""
        return _status_from_events(
            worker, self.events(worker), self.write_seq(worker)
        )

    def statuses(self) -> list[WorkerFlightStatus]:
        """One :class:`WorkerFlightStatus` per worker."""
        return [self.status(w) for w in range(self.num_workers)]

    def seconds_since_last_event(
        self, worker: int, *, now_ns: int | None = None
    ) -> float | None:
        """Age of the worker's newest event (None: nothing recorded yet)."""
        status = self.status(worker)
        if status.last_event_ns is None:
            return None
        now = time.monotonic_ns() if now_ns is None else now_ns
        return max(0, now - status.last_event_ns) / 1e9

    def stalled_workers(
        self, stall_timeout: float, *, now_ns: int | None = None
    ) -> list[int]:
        """Workers with an *open* phase and no event within the deadline.

        A worker parked between tasks (phase ``idle``) is never stalled
        no matter how old its last event is — idleness is the healthy
        steady state of a warm pool.
        """
        now = time.monotonic_ns() if now_ns is None else now_ns
        limit_ns = int(stall_timeout * 1e9)
        out = []
        for status in self.statuses():
            if status.phase == "idle" or status.last_event_ns is None:
                continue
            if now - status.last_event_ns > limit_ns:
                out.append(status.worker)
        return out

    # -- beacons -------------------------------------------------------
    def _write_beacon(self) -> None:
        if self.beacon_dir is None or self._shm is None:
            return
        try:
            self.beacon_dir.mkdir(parents=True, exist_ok=True)
            path = self.beacon_dir / f"{self._shm.name.lstrip('/')}.json"
            payload = {
                "pid": os.getpid(),
                "shm": self._shm.name,
                "num_workers": self.num_workers,
                "capacity": self.capacity,
                "record_size": RECORD_SIZE,
                "created_at": time.time(),
            }
            path.write_text(json.dumps(payload), encoding="ascii")
            self._beacon_path = path
        except OSError:  # pragma: no cover - read-only cwd etc.
            self._beacon_path = None

    # -- postmortem ----------------------------------------------------
    def new_postmortem_id(self) -> str:
        self._pm_counter += 1
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        return f"pm-{stamp}-{os.getpid()}-{self._pm_counter:03d}"

    def dump_postmortem(
        self,
        *,
        reason: str,
        error: str | None = None,
        engine: dict | None = None,
        last_barrier: dict | None = None,
        partition: dict | None = None,
        workers: list[dict] | None = None,
    ) -> Path:
        """Write one self-contained JSON bundle; returns its path.

        The bundle carries everything a postmortem needs with the
        process gone: the decoded ring of every worker, its derived
        status, worker liveness/exit codes (as supplied by the engine),
        the last barrier the parent initiated, and the partition map.
        """
        pm_id = self.new_postmortem_id()
        now_ns = time.monotonic_ns()
        worker_rows = []
        extra = {row.get("worker"): row for row in (workers or [])}
        for w in range(self.num_workers):
            status = self.status(w)
            row = {
                "worker": w,
                "status": status.to_dict(now_ns=now_ns),
                "events": [rec.to_dict() for rec in self.events(w)],
            }
            row.update(
                {k: v for k, v in extra.get(w, {}).items() if k != "worker"}
            )
            worker_rows.append(row)
        bundle = {
            "format_version": POSTMORTEM_FORMAT_VERSION,
            "postmortem_id": pm_id,
            "created_at": time.time(),
            "reason": reason,
            "error": error,
            "engine": engine or {},
            "last_barrier": last_barrier or {},
            "partition": partition or {},
            "workers": worker_rows,
        }
        self.postmortem_dir.mkdir(parents=True, exist_ok=True)
        path = self.postmortem_dir / f"{pm_id}.json"
        path.write_text(
            json.dumps(bundle, indent=2, default=_json_default),
            encoding="utf-8",
        )
        return path


def _json_default(value: Any) -> Any:
    """Coerce NumPy scalars/arrays hiding in engine state to JSON."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return str(value)


# -- postmortem retrieval (service endpoints, repro top) --------------------

_PM_ID_OK = "abcdefghijklmnopqrstuvwxyz0123456789-_"


def _safe_postmortem_id(pm_id: str) -> bool:
    return bool(pm_id) and all(c in _PM_ID_OK for c in pm_id.lower())


def list_postmortems(directory: str | os.PathLike) -> list[str]:
    """Bundle ids under ``directory``, newest last (lexicographic)."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(p.stem for p in root.glob("pm-*.json"))


def load_postmortem(
    directory: str | os.PathLike, pm_id: str
) -> dict | None:
    """Load one bundle by id; None when missing or the id is malformed."""
    if not _safe_postmortem_id(pm_id):
        return None
    path = Path(directory) / f"{pm_id}.json"
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


# -- live attach (repro top) ------------------------------------------------


def read_beacons(directory: str | os.PathLike) -> list[dict]:
    """Parse every beacon under ``directory``, skipping stale/garbled ones.

    A beacon is stale when its recording process is gone; stale files
    are removed best-effort so the directory self-cleans after crashes
    that skipped :meth:`FlightRecorder.close`.
    """
    root = Path(directory)
    if not root.is_dir():
        return []
    out = []
    for path in sorted(root.glob("*.json")):
        try:
            beacon = json.loads(path.read_text(encoding="ascii"))
            pid = int(beacon["pid"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            try:
                path.unlink()
            except OSError:
                pass
            continue
        except PermissionError:  # pragma: no cover - other-user process
            pass
        out.append(beacon)
    return out


def attach_status(beacon: dict) -> list[dict]:
    """Sample a live recorder named by ``beacon`` from another process.

    Attaches to the shared block read-only, decodes every worker's
    ring, and returns status dicts; an empty list when the block has
    already vanished.
    """
    try:
        shm = shared_memory.SharedMemory(name=beacon["shm"])
    except (FileNotFoundError, OSError):
        return []
    try:
        capacity = int(beacon["capacity"])
        num_workers = int(beacon["num_workers"])
        size = _ring_bytes(capacity)
        now_ns = time.monotonic_ns()
        rows = []
        for w in range(num_workers):
            region = bytes(shm.buf[w * size : (w + 1) * size])
            events = decode_ring(region, capacity=capacity)
            (seq, _, _) = _HEADER.unpack_from(region, 0)
            status = _status_from_events(w, events, seq)
            row = status.to_dict(now_ns=now_ns)
            row["pid"] = beacon.get("pid")
            rows.append(row)
        return rows
    finally:
        shm.close()


# -- watchdog ---------------------------------------------------------------


class StallWatchdog:
    """Daemon thread sampling the rings between barriers.

    Keeps a fresh per-worker snapshot for live introspection
    (``/debug/workers`` and ``repro top`` read it without touching the
    rings under load) and flags stalls: a worker whose current phase is
    open but whose ring has gone silent for ``stall_timeout`` seconds.
    Detection is *edge-triggered* — ``on_stall`` fires once per worker
    per stall episode; the engine's receive loop independently enforces
    the same predicate so raising never depends on thread scheduling.
    """

    def __init__(
        self,
        recorder: FlightRecorder,
        *,
        stall_timeout: float | None,
        poll_interval: float | None = None,
        on_stall: Callable[[int, float], None] | None = None,
    ) -> None:
        self.recorder = recorder
        self.stall_timeout = stall_timeout
        if poll_interval is None:
            poll_interval = (
                min(max(stall_timeout / 4.0, 0.02), 1.0)
                if stall_timeout
                else 1.0
            )
        self.poll_interval = poll_interval
        self._on_stall = on_stall
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._snapshot: list[dict] = []
        self._stalled: set[int] = set()
        self.stall_events = 0
        self._thread = threading.Thread(
            target=self._run, name="bsp-flightrec-watchdog", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5)

    # -- views ---------------------------------------------------------
    @property
    def stalled(self) -> set[int]:
        with self._lock:
            return set(self._stalled)

    def snapshot(self) -> list[dict]:
        """Latest per-worker status rows (empty before the first sample)."""
        with self._lock:
            return [dict(row) for row in self._snapshot]

    # -- loop ----------------------------------------------------------
    def _sample(self) -> None:
        now_ns = time.monotonic_ns()
        rows = [
            status.to_dict(now_ns=now_ns)
            for status in self.recorder.statuses()
        ]
        newly: list[tuple[int, float]] = []
        stalled: set[int] = set()
        if self.stall_timeout:
            stalled = set(
                self.recorder.stalled_workers(
                    self.stall_timeout, now_ns=now_ns
                )
            )
        with self._lock:
            self._snapshot = rows
            for w in stalled - self._stalled:
                self.stall_events += 1
                age = next(
                    (
                        row.get("last_event_age_seconds", 0.0)
                        for row in rows
                        if row["worker"] == w
                    ),
                    0.0,
                )
                newly.append((w, age))
            self._stalled = stalled
        if self._on_stall is not None:
            for w, age in newly:
                try:
                    self._on_stall(w, age)
                except Exception:  # pragma: no cover - callback safety
                    pass

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            if not self.recorder.is_open:
                return
            try:
                self._sample()
            except Exception:  # pragma: no cover - shm vanished mid-read
                return


def straggler_skew_ns(busy_ns: Iterable[int]) -> tuple[int, int]:
    """Classify one barrier's per-worker busy times.

    Returns ``(skew_ns, straggler_count)`` where ``skew_ns`` is the gap
    between the slowest worker and the *median* worker — the quantity
    the BSP cost model assumes is zero (a superstep is priced by its
    slowest worker, so skew is pure loss) — and ``straggler_count`` is
    how many workers ran more than twice the median (and at least 1 ms
    over it, so sub-millisecond barriers never classify).
    """
    values = sorted(int(v) for v in busy_ns)
    if len(values) < 2:
        return 0, 0
    median = values[len(values) // 2]
    skew = max(0, values[-1] - median)
    stragglers = sum(
        1 for v in values if v > 2 * median and v - median > 1_000_000
    )
    return skew, stragglers
