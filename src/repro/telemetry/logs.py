"""Structured logging for the service tier.

``repro serve`` used to narrate itself with bare ``print()`` calls —
fine for a terminal, useless for a log pipeline.  This module replaces
them with a :class:`StructuredLogger` that emits one record per event in
either of two renderings:

* ``json`` — one JSON object per line (``ts``, ``level``, ``event``,
  plus whatever fields the call site attached: ``trace_id``, ``route``,
  ``job_id``, ``latency_ms``, ...), the machine-parseable form a log
  shipper ingests;
* ``text`` — ``<ts> <LEVEL> <event> key=value ...``, the same record
  human-readable.

Both renderings carry identical fields, so tests assert on the JSON
form and operators read the text form of the *same* events.  Writes are
line-atomic (one ``write`` call under a lock, then flush), so records
from concurrent handler threads never interleave mid-line.

The cost contract matches the rest of the telemetry package: everything
holds a logger unconditionally, and the default is the shared
:data:`NULL_LOGGER` twin whose methods are empty — library code and
in-process tests pay one no-op call, produce no output.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from datetime import datetime, timezone
from typing import Any, IO

__all__ = [
    "LOG_LEVELS",
    "NULL_LOGGER",
    "NullLogger",
    "StructuredLogger",
]

#: Known levels, in increasing severity; the logger drops records below
#: its threshold.
LOG_LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LOG_LEVELS)}


def _utc_iso(now: float) -> str:
    """``now`` (unix seconds) as ISO-8601 UTC with millisecond precision."""
    return (
        datetime.fromtimestamp(now, tz=timezone.utc)
        .isoformat(timespec="milliseconds")
        .replace("+00:00", "Z")
    )


class StructuredLogger:
    """Leveled event logger with JSON-lines and text renderings.

    Parameters
    ----------
    stream:
        Output file object; defaults to ``sys.stdout`` (the serve
        CLI's convention — one process, one log stream).
    fmt:
        ``"json"`` or ``"text"``.
    level:
        Minimum severity emitted (one of :data:`LOG_LEVELS`).
    clock:
        Unix-seconds clock, overridable for deterministic tests.
    """

    enabled = True

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        fmt: str = "text",
        level: str = "info",
        clock: Any = time.time,
    ) -> None:
        if fmt not in ("json", "text"):
            raise ValueError(f"unknown log format {fmt!r}")
        if level not in _LEVEL_RANK:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
            )
        self.stream = stream if stream is not None else sys.stdout
        self.fmt = fmt
        self.level = level
        self._threshold = _LEVEL_RANK[level]
        self._clock = clock
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------
    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one record (dropped when below the level threshold).

        ``fields`` with value ``None`` are omitted — call sites can pass
        optional context (``job_id=maybe_none``) without littering the
        output with nulls.
        """
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(f"unknown log level {level!r}")
        if rank < self._threshold:
            return
        now = self._clock()
        kept = {k: v for k, v in fields.items() if v is not None}
        if self.fmt == "json":
            record: dict[str, Any] = {
                "ts": _utc_iso(now), "level": level, "event": event,
            }
            record.update(kept)
            line = json.dumps(record, default=str, separators=(", ", ": "))
        else:
            parts = [_utc_iso(now), level.upper(), event]
            parts.extend(f"{k}={v}" for k, v in kept.items())
            line = " ".join(parts)
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()

    def debug(self, event: str, **fields: Any) -> None:
        """Emit at ``debug``."""
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        """Emit at ``info``."""
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        """Emit at ``warning``."""
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        """Emit at ``error``."""
        self.log("error", event, **fields)


class NullLogger:
    """Disabled twin of :class:`StructuredLogger`: drops everything.

    The default logger of the service objects, so in-process embedding
    (tests, notebooks) stays silent without any ``if logger:`` branches.
    """

    enabled = False
    fmt = "null"
    level = "error"

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Drop the record."""

    def debug(self, event: str, **fields: Any) -> None:
        """Drop the record."""

    def info(self, event: str, **fields: Any) -> None:
        """Drop the record."""

    def warning(self, event: str, **fields: Any) -> None:
        """Drop the record."""

    def error(self, event: str, **fields: Any) -> None:
        """Drop the record."""


#: Shared disabled instance — the default ``logger`` of the service tier.
NULL_LOGGER = NullLogger()
