"""Measured-vs-modeled correlation: spans against work-trace regions.

The paper's argument is an accounting argument — the modeled
:class:`~repro.xmt.trace.WorkTrace` attributes the BSP gap to message
traffic and hotspot depth.  Telemetry adds the measured side: each
``"superstep"`` span carries the superstep index, and every region of
the modeled trace carries the same index, so the two series join
exactly.  :func:`correlate` produces one :class:`SpanCorrelation` per
measured superstep span — the span, the modeled regions it corresponds
to, and the modeled seconds those regions cost on a chosen
:class:`~repro.xmt.machine.XMTMachine` — making measured/modeled ratios
first-class instead of a benchmark afterthought.

The caveat (spelled out in ``docs/OBSERVABILITY.md``): measured seconds
are host-Python wall time, modeled seconds are simulated Cray XMT time.
The *ratio series shape* across supersteps is comparable; the absolute
ratio is a property of the host, not of the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.core import MAIN_TRACK, Span, Telemetry
from repro.xmt.cost_model import simulate
from repro.xmt.machine import XMTMachine
from repro.xmt.trace import RegionTrace, WorkTrace

__all__ = [
    "SpanCorrelation",
    "correlate",
    "format_measured_vs_modeled",
    "measured_vs_modeled",
]


@dataclass(frozen=True)
class SpanCorrelation:
    """One measured span joined with its modeled regions."""

    span: Span
    #: Modeled regions with the span's iteration/superstep index.
    regions: tuple[RegionTrace, ...]
    #: Wall-clock seconds the span measured.
    measured_seconds: float
    #: Simulated seconds of the matching regions on the chosen machine.
    modeled_seconds: float

    @property
    def superstep(self) -> int:
        """Superstep index shared by the span and its regions."""
        return self.span.superstep

    @property
    def ratio(self) -> float | None:
        """measured / modeled, or ``None`` when the model priced zero."""
        if self.modeled_seconds <= 0.0:
            return None
        return self.measured_seconds / self.modeled_seconds


def correlate(
    telemetry: Telemetry,
    trace: WorkTrace,
    machine: XMTMachine,
    *,
    span_name: str = "superstep",
) -> list[SpanCorrelation]:
    """Join measured spans with modeled regions by superstep index.

    Takes the main-track spans named ``span_name`` (the engines emit one
    per superstep), groups the trace's regions by their ``iteration``
    field, prices each group on ``machine``, and returns the joined rows
    in superstep order.  Spans without matching regions (or vice versa)
    still appear, with the missing side empty/zero — a visible seam
    beats a silent drop.
    """
    sim = simulate(trace, machine)
    modeled_seconds: dict[int, float] = sim.seconds_by_iteration()
    regions_by_iter: dict[int, list[RegionTrace]] = {}
    for region in trace:
        if region.iteration >= 0:
            regions_by_iter.setdefault(region.iteration, []).append(region)

    spans = {
        s.superstep: s
        for s in telemetry.spans_named(span_name, track=MAIN_TRACK)
        if s.superstep >= 0
    }
    rows = []
    for superstep in sorted(set(spans) | set(regions_by_iter)):
        span = spans.get(superstep)
        if span is None:
            span = Span(
                span_name, 0, 0, category="missing", superstep=superstep
            )
        rows.append(
            SpanCorrelation(
                span=span,
                regions=tuple(regions_by_iter.get(superstep, ())),
                measured_seconds=span.duration_seconds,
                modeled_seconds=modeled_seconds.get(superstep, 0.0),
            )
        )
    return rows


def measured_vs_modeled(
    telemetry: Telemetry,
    trace: WorkTrace,
    machine: XMTMachine,
    *,
    span_name: str = "superstep",
) -> list[dict]:
    """JSON-friendly measured-vs-modeled rows, one per superstep.

    Each row carries the superstep index, the measured wall seconds, the
    modeled seconds at ``machine.num_processors``, their ratio, and the
    span's annotations (active vertices, messages) when present.
    """
    rows = []
    for corr in correlate(telemetry, trace, machine, span_name=span_name):
        row = {
            "superstep": corr.superstep,
            "measured_seconds": corr.measured_seconds,
            "modeled_seconds": corr.modeled_seconds,
            "ratio": corr.ratio,
            "modeled_regions": len(corr.regions),
        }
        for key in ("active", "sent", "received"):
            if key in corr.span.args:
                row[key] = corr.span.args[key]
        rows.append(row)
    return rows


def format_measured_vs_modeled(
    rows: list[dict], *, processors: int, title: str = ""
) -> str:
    """ASCII table of :func:`measured_vs_modeled` rows plus totals."""
    header = (
        f"{'step':>4} {'active':>9} {'sent':>11} "
        f"{'measured':>11} {'modeled@' + str(processors) + 'P':>12} "
        f"{'meas/model':>10}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    total_measured = 0.0
    total_modeled = 0.0
    for row in rows:
        total_measured += row["measured_seconds"]
        total_modeled += row["modeled_seconds"]
        ratio = row["ratio"]
        lines.append(
            f"{row['superstep']:>4} "
            f"{row.get('active', '-'):>9} "
            f"{row.get('sent', '-'):>11} "
            f"{row['measured_seconds'] * 1e3:>9.3f}ms "
            f"{row['modeled_seconds'] * 1e3:>10.3f}ms "
            f"{('%.2f' % ratio) if ratio is not None else '-':>10}"
        )
    lines.append("-" * len(header))
    overall = (
        f"{total_measured / total_modeled:.2f}" if total_modeled > 0 else "-"
    )
    lines.append(
        f"{'all':>4} {'':>9} {'':>11} "
        f"{total_measured * 1e3:>9.3f}ms {total_modeled * 1e3:>10.3f}ms "
        f"{overall:>10}"
    )
    return "\n".join(lines)
