"""Service metrics: a thread-safe registry with Prometheus exposition.

:mod:`repro.telemetry.core` records *traces* — spans and counter samples
on a timeline, the right shape for profiling one run.  A long-lived
``repro serve`` process needs the other shape of observability:
*aggregates* that a scraper polls — request counts by route and status,
latency histograms, queue depth, cache hit rates.  This module is that
layer: a :class:`MetricsRegistry` holding named metric families
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`), each optionally
split by a fixed tuple of label names, rendered either as Prometheus
text exposition (:func:`render_prometheus`, scrape ``GET /metrics``) or
as a schema-versioned JSON snapshot (:func:`metrics_snapshot`,
``GET /metrics.json``).

The cost contract mirrors :data:`~repro.telemetry.core.NULL_TELEMETRY`:
everything downstream holds a registry unconditionally, and when metrics
are disabled (``repro serve --no-metrics``) it is the shared
:data:`NULL_METRICS` twin whose instruments are no-op singletons — no
locks taken, no allocation, no arithmetic.  Library-level code (the
engines, the algorithm wrappers) never sees this module at all; metrics
exist only in the service tier.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator, Mapping, Sequence, Union

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "METRICS_FORMAT_VERSION",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "metrics_snapshot",
    "render_prometheus",
]

#: Schema version of :func:`metrics_snapshot` output.
METRICS_FORMAT_VERSION = 1

#: Default histogram buckets for request/job latencies, in seconds.
#: Spans 1 ms .. 60 s — a scale-10 BFS lands mid-range, a cache hit in
#: the first bucket, a scale-14 pagerank near the top.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelValues = tuple[str, ...]


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects.

    Integral values print without an exponent or trailing ``.0`` so
    counters read naturally; non-finite floats use the exposition
    spellings ``+Inf`` / ``-Inf`` / ``NaN``.
    """
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_pairs(names: Sequence[str], values: LabelValues) -> str:
    return ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )


class Counter:
    """One monotonically non-decreasing series (one label combination)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    def set_total(self, total: float) -> None:
        """Raise the counter to ``total`` if that is higher.

        The bridge for tallies maintained elsewhere (e.g.
        :class:`~repro.service.cache.ResultCache` keeps its own
        hit/miss/eviction counts): at collection time the owner mirrors
        the authoritative total here.  Never lowers the value, so the
        exposed series stays monotone even if two collection paths race.
        """
        with self._lock:
            if total > self._value:
                self._value = total

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """One point-in-time value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution (one label combination).

    Buckets are cumulative upper bounds, Prometheus-style: an
    observation lands in every bucket whose bound is >= the value, plus
    the implicit ``+Inf`` bucket; ``sum`` and ``count`` ride along.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_inf", "_sum", "_count")

    def __init__(
        self, lock: threading.Lock, buckets: Sequence[float]
    ) -> None:
        self._lock = lock
        self.buckets: tuple[float, ...] = tuple(buckets)
        self._counts = [0] * len(self.buckets)
        self._inf = 0
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
            self._inf += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        """Cumulative bucket counts plus sum/count, under the lock."""
        with self._lock:
            return {
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(self.buckets, self._counts)
                ],
                "inf_count": self._inf,
                "sum": self._sum,
                "count": self._count,
            }


Instrument = Union[Counter, Gauge, Histogram]


class _Family:
    """One named metric and its per-label-combination children."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets",
                 "_children", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None,
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._children: dict[LabelValues, Instrument] = {}
        self._lock = lock

    def child(self, values: LabelValues) -> Instrument:
        if len(values) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels "
                f"{list(self.label_names)}, got {len(values)} value(s)"
            )
        values = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                if self.kind == "counter":
                    child = Counter(self._lock)
                elif self.kind == "gauge":
                    child = Gauge(self._lock)
                else:
                    assert self.buckets is not None
                    child = Histogram(self._lock, self.buckets)
                self._children[values] = child
            return child

    def children(self) -> list[tuple[LabelValues, Instrument]]:
        """Label-sorted (values, instrument) pairs, snapshotted."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Thread-safe collection of named metric families.

    ``counter`` / ``gauge`` / ``histogram`` register a family on first
    call and return the instrument for one label combination; repeat
    calls with the same name are cheap lookups, so instrumentation sites
    can call straight into the registry without caching handles (though
    hot paths may).  Re-registering a name with a different kind,
    label set, or bucket layout raises — one name, one meaning.

    A single lock per registry guards both the family table and every
    instrument.  Serving-tier events are orders of magnitude rarer than
    engine operations (requests, not edges), so contention is not a
    concern and the simple locking is easy to audit.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- registration ----------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Sequence[str],
        buckets: Sequence[float] | None,
    ) -> _Family:
        label_names = tuple(label_names)
        bucket_tuple = None
        if buckets is not None:
            bucket_tuple = tuple(float(b) for b in buckets)
            if list(bucket_tuple) != sorted(set(bucket_tuple)):
                raise ValueError(
                    f"histogram {name!r} buckets must be strictly increasing"
                )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    name, kind, help_text, label_names, bucket_tuple,
                    self._lock,
                )
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} is labelled {list(family.label_names)}, "
                f"not {list(label_names)}"
            )
        if kind == "histogram" and family.buckets != bucket_tuple:
            raise ValueError(f"metric {name!r} bucket layout differs")
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        """The counter for ``name`` at the given label values."""
        label_map = dict(labels or {})
        family = self._family(
            name, "counter", help_text, tuple(label_map), None
        )
        child = family.child(tuple(label_map[k] for k in family.label_names)
                             if labels else ())
        assert isinstance(child, Counter)
        return child

    def gauge(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        """The gauge for ``name`` at the given label values."""
        label_map = dict(labels or {})
        family = self._family(name, "gauge", help_text, tuple(label_map), None)
        child = family.child(tuple(label_map[k] for k in family.label_names)
                             if labels else ())
        assert isinstance(child, Gauge)
        return child

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The histogram for ``name`` at the given label values."""
        label_map = dict(labels or {})
        family = self._family(
            name, "histogram", help_text, tuple(label_map), buckets
        )
        child = family.child(tuple(label_map[k] for k in family.label_names)
                             if labels else ())
        assert isinstance(child, Histogram)
        return child

    # -- iteration -------------------------------------------------------
    def families(self) -> Iterator[_Family]:
        """Registered families in registration order (snapshotted)."""
        with self._lock:
            families = list(self._families.values())
        return iter(families)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Drop the increment."""

    def dec(self, amount: float = 1.0) -> None:
        """Drop the decrement."""

    def set(self, value: float) -> None:
        """Drop the value."""

    def set_total(self, total: float) -> None:
        """Drop the total."""

    def observe(self, value: float) -> None:
        """Drop the observation."""

    def snapshot(self) -> dict:
        """Always empty."""
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled twin of :class:`MetricsRegistry`: records nothing.

    Every method returns the shared no-op instrument — no lock, no
    allocation — so instrumentation sites stay branch-free and
    ``repro serve --no-metrics`` pays one attribute lookup per event.
    """

    enabled = False

    def counter(self, name: str, help_text: str = "",
                labels: Mapping[str, str] | None = None) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help_text: str = "",
              labels: Mapping[str, str] | None = None) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help_text: str = "",
                  labels: Mapping[str, str] | None = None,
                  *, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def families(self) -> Iterator[_Family]:
        """Always empty."""
        return iter(())


#: Shared disabled instance — the default registry everywhere.
NULL_METRICS = NullMetricsRegistry()


def render_prometheus(
    registry: MetricsRegistry | NullMetricsRegistry,
) -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    One ``# HELP`` / ``# TYPE`` header per family, then one sample line
    per label combination (histograms expand to cumulative ``_bucket``
    series plus ``_sum`` and ``_count``).  The output ends with a
    newline, as the format requires; a registry with no families
    renders as the empty string.
    """
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, instrument in family.children():
            base_labels = _label_pairs(family.label_names, values)
            if isinstance(instrument, Histogram):
                snap = instrument.snapshot()
                for bucket in snap["buckets"]:
                    le = _format_value(bucket["le"])
                    pairs = (
                        f'{base_labels},le="{le}"'
                        if base_labels
                        else f'le="{le}"'
                    )
                    lines.append(
                        f"{family.name}_bucket{{{pairs}}} "
                        f"{_format_value(bucket['count'])}"
                    )
                pairs = (
                    f'{base_labels},le="+Inf"' if base_labels else 'le="+Inf"'
                )
                lines.append(
                    f"{family.name}_bucket{{{pairs}}} "
                    f"{_format_value(snap['inf_count'])}"
                )
                suffix = f"{{{base_labels}}}" if base_labels else ""
                lines.append(
                    f"{family.name}_sum{suffix} {_format_value(snap['sum'])}"
                )
                lines.append(
                    f"{family.name}_count{suffix} "
                    f"{_format_value(snap['count'])}"
                )
            else:
                suffix = f"{{{base_labels}}}" if base_labels else ""
                lines.append(
                    f"{family.name}{suffix} {_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def metrics_snapshot(
    registry: MetricsRegistry | NullMetricsRegistry,
) -> dict:
    """Schema-versioned JSON view of every family (``GET /metrics.json``)."""
    families = []
    for family in registry.families():
        rows = []
        for values, instrument in family.children():
            labels = dict(zip(family.label_names, values))
            if isinstance(instrument, Histogram):
                rows.append({"labels": labels, **instrument.snapshot()})
            else:
                rows.append({"labels": labels, "value": instrument.value})
        families.append(
            {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": rows,
            }
        )
    return {"format_version": METRICS_FORMAT_VERSION, "families": families}
