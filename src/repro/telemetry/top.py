"""The ``repro top`` subcommand: live per-worker view of a sharded engine.

Two attachment modes, both read-only and non-intrusive:

* **Beacon mode** (default) — scan a flight-recorder beacon directory
  (``results/flightrec/`` unless ``--beacon-dir`` says otherwise) for
  live recorders, attach to their shared-memory rings directly, and
  decode per-worker status out of the event records.  Works against any
  process on the host that built a
  :class:`~repro.bsp.parallel.ShardedBSPEngine` with the (default-on)
  flight recorder — no cooperation from the engine needed, the rings
  are sampled exactly like the engine's own watchdog samples them.
* **URL mode** (``--url http://host:port``) — poll a ``repro serve``
  instance's ``GET /debug/workers`` endpoint; same rows, but routed
  through the service so it works across hosts.

Renders one table per engine: worker id, pid, liveness, current phase,
superstep, progress through the phase's arc range, peak RSS, and the
age of the newest ring event (the number the stall watchdog compares
against ``stall_timeout``).  ``--once`` prints a single snapshot (the
scriptable form); the default loop redraws every ``--interval`` seconds
until interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

from repro.telemetry.flightrec import attach_status, read_beacons

__all__ = ["format_worker_table", "main", "snapshot"]


def _fmt_bytes(n: int | float | None) -> str:
    if not n:
        return "-"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _fmt_age(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 1:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 120:
        return f"{seconds:.1f}s"
    return f"{seconds / 60:.1f}m"


def format_worker_table(rows: list[dict], *, title: str = "") -> str:
    """Render worker-status rows (engine or service form) as a table."""
    header = (
        f"{'worker':>6}  {'pid':>8}  {'alive':>5}  {'phase':<8}"
        f"{'step':>6}  {'progress':>18}  {'rss':>9}  {'last event':>10}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        done = int(row.get("progress_arcs") or 0)
        total = int(row.get("progress_total") or 0)
        ratio = float(row.get("progress_ratio") or 0.0)
        progress = (
            f"{done:,}/{total:,} ({ratio:4.0%})" if total else "-"
        )
        alive = row.get("alive")
        lines.append(
            f"{row.get('worker', '?'):>6}  "
            f"{row.get('pid') or '-':>8}  "
            f"{('yes' if alive else 'no') if alive is not None else '?':>5}  "
            f"{row.get('phase', '?'):<8}"
            f"{row.get('step', -1):>6}  "
            f"{progress:>18}  "
            f"{_fmt_bytes(row.get('rss_bytes')):>9}  "
            f"{_fmt_age(row.get('last_event_age_seconds')):>10}"
        )
    return "\n".join(lines)


def snapshot(
    *, url: str | None = None, beacon_dir: str = "results/flightrec"
) -> list[tuple[str, list[dict]]]:
    """Collect ``(title, worker-rows)`` per attached engine.

    URL mode returns one entry (the service's engine); beacon mode one
    per live recorder found under ``beacon_dir``.
    """
    if url is not None:
        target = url.rstrip("/") + "/debug/workers"
        with urllib.request.urlopen(target, timeout=5) as resp:
            body = json.loads(resp.read().decode("utf-8"))
        title = (
            f"{url}  flight_recorder="
            f"{'on' if body.get('flight_recorder') else 'off'}  "
            f"stall_timeout={body.get('stall_timeout')}  "
            f"stalled={'YES' if body.get('stall_detected') else 'no'}  "
            f"skew={body.get('superstep_skew_seconds', 0):.6f}s"
        )
        return [(title, body.get("workers", []))]
    out = []
    for beacon in read_beacons(beacon_dir):
        rows = attach_status(beacon)
        if not rows:
            continue
        title = (
            f"engine pid {beacon.get('pid')}  shm {beacon.get('shm')}  "
            f"{beacon.get('num_workers')} worker(s)"
        )
        out.append((title, rows))
    return out


def _render(engines: list[tuple[str, list[dict]]]) -> str:
    if not engines:
        return (
            "no live engines found (no beacons, or recorder disabled); "
            "try --url against a repro serve instance"
        )
    return "\n\n".join(
        format_worker_table(rows, title=title) for title, rows in engines
    )


def main(argv: list[str] | None = None) -> int:
    """Run ``repro top``."""
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live per-worker view of a running sharded BSP engine.",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="poll a repro serve instance's /debug/workers instead of "
             "attaching to local flight-recorder beacons",
    )
    parser.add_argument(
        "--beacon-dir", default="results/flightrec", metavar="DIR",
        help="flight-recorder beacon directory (default %(default)s)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default %(default)s)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (scriptable)",
    )
    args = parser.parse_args(argv)

    while True:
        try:
            engines = snapshot(url=args.url, beacon_dir=args.beacon_dir)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            print(f"repro top: cannot attach: {exc}", file=sys.stderr)
            return 1
        text = _render(engines)
        if args.once:
            print(text)
            return 0
        # Clear-and-home keeps the loop flicker-free on real terminals
        # while degrading to plain appends when piped.
        if sys.stdout.isatty():  # pragma: no cover - interactive only
            print("\x1b[2J\x1b[H", end="")
        print(time.strftime("%H:%M:%S"))
        print(text, flush=True)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
