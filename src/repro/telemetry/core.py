"""Wall-clock spans and counter samples for the runtime.

Everything else in this library accounts *modeled* work — operation
counts priced by the XMT cost model.  This module records what actually
happened on the host: a :class:`Telemetry` object collects wall-clock
:class:`Span` s (superstep, scatter, gather, combine, barrier, kernel)
and :class:`CounterSample` s (active vertices, messages, bytes moved,
per-worker busy/wait), each tagged with the superstep and the *track* it
belongs to (track 0 is the main engine loop; track ``w + 1`` is shard
worker ``w``).

Instrumentation must cost nothing when nobody asked for it: every engine
defaults to the :data:`NULL_TELEMETRY` singleton, whose ``span`` returns
a shared no-op context manager and whose recording methods are empty —
no clock reads, no allocation, no list growth.  Recording never feeds
back into the computation, so results, message histories, and modeled
work traces are bit-identical with telemetry on or off (asserted by the
equivalence guard in ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "MAIN_TRACK",
    "NULL_TELEMETRY",
    "CounterSample",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "peak_rss_bytes",
    "tracemalloc_peak_bytes",
    "worker_track",
]

#: Track id of the main engine loop (shard worker ``w`` is ``w + 1``).
MAIN_TRACK = 0


def worker_track(worker_index: int) -> int:
    """Track id for shard worker ``worker_index``."""
    return int(worker_index) + 1


def peak_rss_bytes() -> int | None:
    """Lifetime peak resident-set size of this process, in bytes.

    Read from ``getrusage`` — one cheap syscall, no allocation.  The
    value is monotone (the OS never lowers the high-water mark), so a
    per-superstep sample series shows *when* the peak was first reached.
    Returns ``None`` on platforms without ``resource`` (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX host
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(rss) * (1 if sys.platform == "darwin" else 1024)


def tracemalloc_peak_bytes(*, reset: bool = False) -> int | None:
    """Peak Python-heap allocation since tracing (or the last reset).

    Returns ``None`` unless :mod:`tracemalloc` is tracing — callers opt
    into the tracing overhead explicitly (``repro profile`` does).
    With ``reset``, the peak accumulator restarts so the next reading
    covers only the interval since this one (per-superstep peaks).
    """
    if not tracemalloc.is_tracing():
        return None
    _, peak = tracemalloc.get_traced_memory()
    if reset:
        tracemalloc.reset_peak()
    return int(peak)


@dataclass(frozen=True)
class Span:
    """One timed interval: a phase of the runtime, on one track.

    Timestamps come from the telemetry clock
    (:func:`time.perf_counter_ns` by default) and are only meaningful
    relative to other spans of the same :class:`Telemetry` object.
    """

    name: str
    start_ns: int
    end_ns: int
    #: Grouping label for export ("superstep", "phase", "worker", ...).
    category: str = "engine"
    #: 0 = main engine loop, ``w + 1`` = shard worker ``w``.
    track: int = MAIN_TRACK
    #: Superstep / iteration the span belongs to, -1 when not applicable.
    superstep: int = -1
    #: Free-form annotations (active counts, message counts, ...).
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError("span must end at or after its start")

    @property
    def duration_ns(self) -> int:
        """Span length in nanoseconds."""
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> float:
        """Span length in seconds."""
        return self.duration_ns / 1e9

    def contains(self, other: "Span") -> bool:
        """True when ``other`` lies entirely within this span."""
        return self.start_ns <= other.start_ns and other.end_ns <= self.end_ns


@dataclass(frozen=True)
class CounterSample:
    """One observation of a named metric at a point in time."""

    name: str
    value: float
    t_ns: int
    track: int = MAIN_TRACK
    superstep: int = -1


class Telemetry:
    """Collects spans and counters for one (or more) runs.

    Parameters
    ----------
    label:
        Free-form name carried into exports.
    clock:
        Nanosecond clock; override with a fake for deterministic tests.
    """

    #: Discriminator the engines branch on; the no-op twin sets False.
    enabled = True

    def __init__(
        self,
        label: str = "telemetry",
        *,
        clock: Callable[[], int] = time.perf_counter_ns,
    ) -> None:
        self.label = label
        self._clock = clock
        #: Completed spans in completion order.
        self.spans: list[Span] = []
        #: Counter samples in recording order.
        self.counters: list[CounterSample] = []
        #: Clock reading at construction — the export time origin.
        self.origin_ns: int = clock()

    # -- recording -----------------------------------------------------
    def now(self) -> int:
        """Current clock reading (nanoseconds)."""
        return self._clock()

    @contextmanager
    def span(
        self,
        name: str,
        *,
        category: str = "engine",
        track: int = MAIN_TRACK,
        superstep: int = -1,
        **args: Any,
    ) -> Iterator[None]:
        """Time a block; the span joins :attr:`spans` on exit."""
        start = self._clock()
        try:
            yield
        finally:
            self.spans.append(
                Span(
                    name,
                    start,
                    self._clock(),
                    category=category,
                    track=track,
                    superstep=superstep,
                    args=args,
                )
            )

    def add_span(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        category: str = "engine",
        track: int = MAIN_TRACK,
        superstep: int = -1,
        **args: Any,
    ) -> None:
        """Record a span from explicit timestamps.

        Used where the interval is not a ``with`` block: superstep spans
        whose start predates the decision to record them, and worker
        busy intervals reported over the pipe as durations.
        """
        self.spans.append(
            Span(
                name,
                int(start_ns),
                int(end_ns),
                category=category,
                track=track,
                superstep=superstep,
                args=args,
            )
        )

    def counter(
        self,
        name: str,
        value: float,
        *,
        track: int = MAIN_TRACK,
        superstep: int = -1,
        t_ns: int | None = None,
    ) -> None:
        """Record one sample of a named metric (timestamped now)."""
        self.counters.append(
            CounterSample(
                name,
                value,
                self._clock() if t_ns is None else int(t_ns),
                track=track,
                superstep=superstep,
            )
        )

    def sample_memory(
        self, *, track: int = MAIN_TRACK, superstep: int = -1
    ) -> None:
        """Record the process memory footprint as counter samples.

        Emits ``peak_rss_bytes`` (always, one syscall) and
        ``tracemalloc_peak_bytes`` (only while :mod:`tracemalloc` is
        tracing — the tracemalloc peak accumulator is reset so each
        sample covers the interval since the previous one).  Engines
        call this once per superstep / kernel inside their
        ``telemetry.enabled`` branch, so the disabled path never pays
        for it.
        """
        rss = peak_rss_bytes()
        if rss is not None:
            self.counter(
                "peak_rss_bytes", rss, track=track, superstep=superstep
            )
        heap = tracemalloc_peak_bytes(reset=True)
        if heap is not None:
            self.counter(
                "tracemalloc_peak_bytes",
                heap,
                track=track,
                superstep=superstep,
            )

    # -- queries -------------------------------------------------------
    def spans_named(self, name: str, *, track: int | None = None) -> list[Span]:
        """Spans with a given name (optionally restricted to one track)."""
        return [
            s
            for s in self.spans
            if s.name == name and (track is None or s.track == track)
        ]

    def tracks(self) -> list[int]:
        """Sorted distinct track ids with at least one span or counter."""
        return sorted(
            {s.track for s in self.spans} | {c.track for c in self.counters}
        )

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span with ``name``."""
        return sum(s.duration_seconds for s in self.spans_named(name))

    def span_summary(self) -> dict[str, dict[str, float]]:
        """Per-name span statistics: count, total/mean/max seconds."""
        out: dict[str, dict[str, float]] = {}
        for s in self.spans:
            row = out.setdefault(
                s.name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            row["count"] += 1
            row["total_seconds"] += s.duration_seconds
            row["max_seconds"] = max(row["max_seconds"], s.duration_seconds)
        for row in out.values():
            row["mean_seconds"] = row["total_seconds"] / row["count"]
        return out

    # -- export (implemented in repro.telemetry.export) ----------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event representation (see :mod:`.export`)."""
        from repro.telemetry.export import chrome_trace

        return chrome_trace(self)

    def to_report(self) -> dict:
        """Structured JSON report (see :mod:`.export`)."""
        from repro.telemetry.export import telemetry_report

        return telemetry_report(self)

    def save_chrome_trace(self, path) -> None:
        """Write the Chrome trace JSON (open in Perfetto / chrome://tracing)."""
        from repro.telemetry.export import save_chrome_trace

        save_chrome_trace(self, path)

    def save_report(self, path) -> None:
        """Write the structured JSON report."""
        from repro.telemetry.export import save_report

        save_report(self, path)


class _NullSpan:
    """Reusable no-op context manager returned by the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled twin of :class:`Telemetry`: records nothing.

    Every engine holds one of these by default, so instrumentation sites
    cost a method call returning a shared singleton — no clock read, no
    allocation.  All query methods return empty results.
    """

    enabled = False
    label = ""
    #: Immutable empties so accidental reads behave like an empty Telemetry.
    spans: tuple = ()
    counters: tuple = ()
    origin_ns = 0

    def now(self) -> int:
        """Constant 0 — the disabled path never reads the clock."""
        return 0

    def span(self, name: str, **kwargs: Any) -> _NullSpan:
        """Return the shared no-op context manager."""
        return _NULL_SPAN

    def add_span(self, *args: Any, **kwargs: Any) -> None:
        """Drop the span."""

    def counter(self, *args: Any, **kwargs: Any) -> None:
        """Drop the sample."""

    def sample_memory(self, *args: Any, **kwargs: Any) -> None:
        """No memory reads on the disabled path."""

    def spans_named(self, name: str, **kwargs: Any) -> list:
        """Always empty."""
        return []

    def tracks(self) -> list:
        """Always empty."""
        return []

    def total_seconds(self, name: str) -> float:
        """Always 0."""
        return 0.0

    def span_summary(self) -> dict:
        """Always empty."""
        return {}


#: Shared disabled instance — the default ``telemetry`` of every engine.
NULL_TELEMETRY = NullTelemetry()
