"""The ``repro profile`` subcommand: measured wall-clock vs the model.

Runs one BSP algorithm on a synthetic RMAT graph with telemetry
enabled, then writes three artifacts:

* a Chrome trace-event file (``--trace``) loadable in Perfetto or
  ``chrome://tracing``, with one row per worker for the sharded engine;
* a schema-versioned JSON report (``--json``) embedding every span,
  counter sample, the measured-vs-modeled correlation rows, and the
  peak memory footprint (RSS plus per-superstep ``tracemalloc`` peaks —
  tracing is on by default here; disable with ``--no-tracemalloc`` to
  measure wall time without the tracing overhead);
* an ASCII measured-vs-modeled table per superstep on stdout.

Example::

    python -m repro.cli profile --algorithm cc --engine sharded \
        --workers 2 --scale 12
"""

from __future__ import annotations

import argparse
import json
import os
import tracemalloc

from repro.graph.generators import rmat
from repro.graph.properties import giant_component_vertex
from repro.telemetry.compare import (
    format_measured_vs_modeled,
    measured_vs_modeled,
)
from repro.telemetry.core import Telemetry
from repro.telemetry.export import (
    chrome_trace,
    memory_summary,
    telemetry_report,
)
from repro.xmt.machine import XMTMachine

__all__ = ["main", "run_profile"]

ALGORITHMS = ("cc", "bfs", "sssp", "pagerank", "kcore", "triangles")
ENGINES = ("reference", "dense", "sharded")

#: Report layout version; bump on breaking changes to the JSON payload.
PROFILE_SCHEMA_VERSION = 1


def _reference_run(algorithm: str, graph, source: int, telemetry: Telemetry):
    """Run the per-vertex program under the reference engine."""
    from repro.bsp.engine import BSPEngine
    from repro.bsp_algorithms.bfs import BSPBreadthFirstSearch
    from repro.bsp_algorithms.connected_components import (
        BSPConnectedComponents,
    )
    from repro.bsp_algorithms.sssp import BSPShortestPaths

    programs = {
        "cc": (BSPConnectedComponents, None),
        "bfs": (BSPBreadthFirstSearch, [source]),
        "sssp": (BSPShortestPaths, [source]),
    }
    if algorithm not in programs:
        raise SystemExit(
            f"--engine reference supports {sorted(programs)}; "
            f"use dense or sharded for {algorithm!r}"
        )
    cls, initial_active = programs[algorithm]
    program = cls(source) if algorithm in ("bfs", "sssp") else cls()
    engine = BSPEngine(graph, telemetry=telemetry)
    result = engine.run(
        program,
        initial_active=initial_active,
        trace_label=f"bsp/{algorithm}",
    )
    return result.trace, {"num_supersteps": result.num_supersteps}


def run_profile(
    algorithm: str,
    engine: str,
    *,
    scale: int = 12,
    edge_factor: int = 16,
    seed: int = 1,
    workers: int = 2,
    partition: str = "hash",
    source: int | None = None,
    k: int = 2,
    telemetry: Telemetry,
):
    """Run ``algorithm`` under ``engine`` with ``telemetry`` attached.

    Returns ``(trace, meta)``: the modeled :class:`WorkTrace` and a
    small dict of run facts for the report.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"algorithm must be one of {ALGORITHMS}")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}")
    graph = rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    if source is None and algorithm in ("bfs", "sssp"):
        source = giant_component_vertex(graph)
    src = 0 if source is None else int(source)

    if engine == "reference":
        return _reference_run(algorithm, graph, src, telemetry)

    num_workers = workers if engine == "sharded" else None
    if algorithm == "triangles":
        from repro.bsp_algorithms.triangles import bsp_count_triangles

        res = bsp_count_triangles(
            graph, num_workers=num_workers, telemetry=telemetry
        )
        return res.trace, {
            "num_supersteps": res.num_supersteps,
            "total_triangles": res.total_triangles,
            "possible_triangles": res.possible_triangles,
        }

    common = dict(
        num_workers=num_workers, partition=partition, telemetry=telemetry
    )
    if algorithm == "cc":
        from repro.bsp_algorithms.connected_components import (
            bsp_connected_components,
        )

        res = bsp_connected_components(graph, **common)
        meta = {"num_components": res.num_components}
    elif algorithm == "bfs":
        from repro.bsp_algorithms.bfs import bsp_breadth_first_search

        res = bsp_breadth_first_search(graph, src, **common)
        meta = {"source": src, "vertices_reached": res.vertices_reached}
    elif algorithm == "sssp":
        from repro.bsp_algorithms.sssp import bsp_sssp

        res = bsp_sssp(graph, src, **common)
        meta = {"source": src}
    elif algorithm == "pagerank":
        from repro.bsp_algorithms.pagerank import bsp_pagerank

        res = bsp_pagerank(graph, **common)
        meta = {}
    else:  # kcore
        from repro.bsp_algorithms.kcore import bsp_k_core

        res = bsp_k_core(graph, k, **common)
        meta = {"k": k}
    meta["num_supersteps"] = res.num_supersteps
    return res.trace, meta


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli profile``."""
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description=(
            "Profile one BSP algorithm: wall-clock spans, per-worker "
            "metrics, Chrome trace, and measured-vs-modeled table."
        ),
    )
    parser.add_argument("--algorithm", choices=ALGORITHMS, default="cc")
    parser.add_argument("--engine", choices=ENGINES, default="dense")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scale", type=int, default=12)
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--partition", default="hash")
    parser.add_argument("--source", type=int, default=None)
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument(
        "--processors", type=int, default=128,
        help="modeled XMT processor count for the comparison column",
    )
    parser.add_argument(
        "--out-dir", default="results/profile",
        help="directory for default artifact paths",
    )
    parser.add_argument(
        "--trace", default=None,
        help="Chrome trace path (default <out-dir>/trace_<run>.json)",
    )
    parser.add_argument(
        "--json", default=None,
        help="report path (default <out-dir>/profile_<run>.json)",
    )
    parser.add_argument(
        "--no-tracemalloc", dest="tracemalloc", action="store_false",
        help=(
            "skip Python-heap peak tracking (tracemalloc slows the run; "
            "disable it when wall-clock numbers matter more than "
            "allocation peaks)"
        ),
    )
    args = parser.parse_args(argv)

    label = f"{args.algorithm}-{args.engine}"
    if args.engine == "sharded":
        label += f"-w{args.workers}"
    tel = Telemetry(label=label)
    started_tracing = False
    if args.tracemalloc and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    try:
        trace, meta = run_profile(
            args.algorithm,
            args.engine,
            scale=args.scale,
            edge_factor=args.edge_factor,
            seed=args.seed,
            workers=args.workers,
            partition=args.partition,
            source=args.source,
            k=args.k,
            telemetry=tel,
        )
    finally:
        if started_tracing:
            tracemalloc.stop()

    machine = XMTMachine(num_processors=args.processors)
    rows = measured_vs_modeled(tel, trace, machine)

    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = args.trace or os.path.join(
        args.out_dir, f"trace_{label}.json"
    )
    json_path = args.json or os.path.join(
        args.out_dir, f"profile_{label}.json"
    )
    with open(trace_path, "w", encoding="ascii") as fh:
        json.dump(chrome_trace(tel), fh, indent=1)
        fh.write("\n")
    payload = {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "config": {
            "algorithm": args.algorithm,
            "engine": args.engine,
            "workers": args.workers if args.engine == "sharded" else 1,
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "seed": args.seed,
            "partition": args.partition,
            "processors": args.processors,
        },
        "run": meta,
        "measured_vs_modeled": rows,
        "memory": memory_summary(tel),
        "telemetry": telemetry_report(tel),
    }
    with open(json_path, "w", encoding="ascii") as fh:
        json.dump(payload, fh, indent=1, default=float)
        fh.write("\n")

    print(
        format_measured_vs_modeled(
            rows,
            processors=args.processors,
            title=(
                f"{args.algorithm} on {args.engine} engine "
                f"(RMAT scale {args.scale})"
            ),
        )
    )
    mem = payload["memory"]
    if mem:
        parts = [
            f"{name}: {mem[name] / 2**20:.1f} MiB"
            for name in ("peak_rss_bytes", "tracemalloc_peak_bytes")
            if name in mem
        ]
        if "worker_peak_rss_bytes" in mem:
            worst = max(mem["worker_peak_rss_bytes"].values())
            parts.append(f"worker peak RSS: {worst / 2**20:.1f} MiB")
        print("\nmemory  " + " | ".join(parts))
    print(f"\nChrome trace: {trace_path}  (open in Perfetto)")
    print(f"JSON report:  {json_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
