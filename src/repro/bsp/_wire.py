"""Wire codecs for the sharded engine's worker pipes.

Every parent↔worker message crosses an OS pipe.  The engine historically
let :class:`multiprocessing.connection.Connection` pickle whole command
tuples — convenient, but each per-superstep frame then carries pickle's
object framing (class markers, dtype descriptors, shape tuples) around
what is really one int64 vector.  The ``packed`` codec replaces that
with fixed binary frames: a one-byte command code, a little-endian
struct header, and the sender ids as raw ``tobytes`` payload — decoded
with ``np.frombuffer`` on the other side.  Sender sets are always
transmitted as sparse vertex ids (never per-vertex masks), so frame size
tracks the frontier, not the graph.

The ``pickle`` codec preserves the legacy encoding, but routed through
``send_bytes`` so both codecs count exact bytes-on-pipe.  Engine-level
``pipe_bytes`` totals and the per-superstep ``pipe_bytes`` /
``pipe_bytes_legacy`` telemetry counters are built on these counts; the
two codecs are interchangeable per engine (``wire=`` parameter /
``REPRO_SHARDED_WIRE``) and produce bit-identical results — asserted by
the packing smoke in ``tests/test_frontier.py``.

Command tuples carried (shapes shared by both codecs):

* ``("run", program, values_name, dtype_str, gathered_name)`` — once per
  run; the program object has no fixed layout, so even the packed codec
  pickles this frame's body.
* ``("scatter", generation, senders, mode)`` /
  ``("gather", generation, senders, mode)`` — per superstep; ``senders``
  is an int64 id array, ``mode`` a :mod:`repro.bsp.frontier` name.
* ``("close",)``
* ``("ok", *ints)`` — worker replies; every element is int-coercible.
* ``("error", text)`` — worker traceback.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from repro.bsp.frontier import DENSE, SPARSE

__all__ = [
    "WIRE_FORMATS",
    "PackedWire",
    "PickleWire",
    "legacy_frame_size",
    "make_wire",
]

#: Wire formats understood by the sharded engine.
WIRE_FORMATS = ("packed", "pickle")

_CMD_RUN = 0x01
_CMD_SCATTER = 0x02
_CMD_GATHER = 0x03
_CMD_CLOSE = 0x04
_REPLY_OK = 0x00
_REPLY_ERR = 0x7F

_MODE_CODE = {SPARSE: 0, DENSE: 1}
_MODE_NAME = {0: SPARSE, 1: DENSE}

# Header of a scatter/gather frame after the command byte:
# generation (int64), frontier-mode code (uint8), sender count (int64).
_ARRAY_HEADER = struct.Struct("<qBq")
_OK_HEADER = struct.Struct("<B")


class PackedWire:
    """Fixed binary frames; sender ids travel as raw int64 bytes."""

    name = "packed"

    def send(self, conn, msg: tuple) -> int:
        """Encode ``msg``, write it with ``send_bytes``, return frame size."""
        frame = self._encode(msg)
        conn.send_bytes(frame)
        return len(frame)

    def recv(self, conn) -> tuple[tuple, int]:
        """Read one frame; return ``(message, frame_size)``."""
        buf = conn.recv_bytes()
        return self._decode(buf), len(buf)

    @staticmethod
    def _encode(msg: tuple) -> bytes:
        cmd = msg[0]
        if cmd == "scatter" or cmd == "gather":
            _, gen, senders, mode = msg
            senders = np.ascontiguousarray(senders, dtype=np.int64)
            code = _CMD_SCATTER if cmd == "scatter" else _CMD_GATHER
            return (
                bytes([code])
                + _ARRAY_HEADER.pack(int(gen), _MODE_CODE[mode], senders.size)
                + senders.tobytes()
            )
        if cmd == "ok":
            ints = [int(v) for v in msg[1:]]
            return (
                bytes([_REPLY_OK])
                + _OK_HEADER.pack(len(ints))
                + struct.pack(f"<{len(ints)}q", *ints)
            )
        if cmd == "error":
            return bytes([_REPLY_ERR]) + msg[1].encode("utf-8", "replace")
        if cmd == "run":
            return bytes([_CMD_RUN]) + pickle.dumps(
                msg[1:], protocol=pickle.HIGHEST_PROTOCOL
            )
        if cmd == "close":
            return bytes([_CMD_CLOSE])
        raise ValueError(f"unknown wire command {cmd!r}")

    @staticmethod
    def _decode(buf: bytes) -> tuple:
        code = buf[0]
        if code == _CMD_SCATTER or code == _CMD_GATHER:
            gen, mode_code, count = _ARRAY_HEADER.unpack_from(buf, 1)
            senders = np.frombuffer(
                buf, dtype=np.int64, count=count, offset=1 + _ARRAY_HEADER.size
            )
            cmd = "scatter" if code == _CMD_SCATTER else "gather"
            return (cmd, gen, senders, _MODE_NAME[mode_code])
        if code == _REPLY_OK:
            (count,) = _OK_HEADER.unpack_from(buf, 1)
            ints = struct.unpack_from(f"<{count}q", buf, 1 + _OK_HEADER.size)
            return ("ok", *ints)
        if code == _REPLY_ERR:
            return ("error", buf[1:].decode("utf-8", "replace"))
        if code == _CMD_RUN:
            return ("run", *pickle.loads(buf[1:]))
        if code == _CMD_CLOSE:
            return ("close",)
        raise ValueError(f"unknown wire code {code:#x}")


class PickleWire:
    """Legacy whole-tuple pickling, made byte-countable via send_bytes."""

    name = "pickle"

    def send(self, conn, msg: tuple) -> int:
        frame = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        conn.send_bytes(frame)
        return len(frame)

    def recv(self, conn) -> tuple[tuple, int]:
        buf = conn.recv_bytes()
        return pickle.loads(buf), len(buf)


def make_wire(name: str):
    """Instantiate a wire codec by format name."""
    if name == "packed":
        return PackedWire()
    if name == "pickle":
        return PickleWire()
    raise ValueError(f"wire must be one of {WIRE_FORMATS}, got {name!r}")


def legacy_frame_size(msg: tuple) -> int:
    """Bytes the legacy pickle codec would put on the pipe for ``msg``.

    Used to report the ``pipe_bytes_legacy`` counterfactual next to the
    packed codec's actual ``pipe_bytes`` (telemetry-only; never on the
    hot path when telemetry is disabled).
    """
    return len(pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL))
