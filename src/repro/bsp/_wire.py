"""Wire codecs for the sharded engine's worker pipes.

Every parent↔worker message crosses an OS pipe.  The engine historically
let :class:`multiprocessing.connection.Connection` pickle whole command
tuples — convenient, but each per-superstep frame then carries pickle's
object framing (class markers, dtype descriptors, shape tuples) around
what is really one int64 vector.  The ``packed`` codec replaces that
with fixed binary frames: a one-byte command code, a little-endian
struct header, and the sender ids as raw ``tobytes`` payload — decoded
with ``np.frombuffer`` on the other side.  Sender sets are always
transmitted as sparse vertex ids (never per-vertex masks), so frame size
tracks the frontier, not the graph.

The ``pickle`` codec preserves the legacy encoding, but routed through
``send_bytes`` so both codecs count exact bytes-on-pipe.  Engine-level
``pipe_bytes`` totals and the per-superstep ``pipe_bytes`` /
``pipe_bytes_legacy`` telemetry counters are built on these counts; the
two codecs are interchangeable per engine (``wire=`` parameter /
``REPRO_SHARDED_WIRE``) and produce bit-identical results — asserted by
the packing smoke in ``tests/test_frontier.py``.

Command tuples carried (shapes shared by both codecs):

* ``("run", program, values_name, dtype_str, gathered_name)`` — once per
  run; the program object has no fixed layout, so even the packed codec
  pickles this frame's body.
* ``("scatter", generation, senders, mode)`` /
  ``("gather", generation, senders, mode)`` — per superstep; ``senders``
  is an int64 id array, ``mode`` a :mod:`repro.bsp.frontier` name.
* ``("close",)``
* ``("ok", *ints)`` — worker replies; every element is int-coercible.
* ``("error", text)`` — worker traceback.
"""

from __future__ import annotations

import pickle
import struct
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.bsp.frontier import DENSE, SPARSE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

__all__ = [
    "WIRE_FORMATS",
    "PackedWire",
    "PickleWire",
    "WireFormatError",
    "legacy_frame_size",
    "make_wire",
]


class WireFormatError(ValueError):
    """A pipe frame failed structural validation while decoding.

    Raised by :meth:`PackedWire.recv` when a frame is truncated, carries
    an unknown command/mode code, or declares a payload length that does
    not match the bytes actually received — i.e. the two pipe ends
    disagree about the protocol (version skew, corrupted frame, or a
    stray writer on the descriptor).  Distinct from a worker-side
    ``("error", ...)`` reply, which is a well-formed frame reporting an
    application failure.
    """

#: Wire formats understood by the sharded engine.
WIRE_FORMATS = ("packed", "pickle")

_CMD_RUN = 0x01
_CMD_SCATTER = 0x02
_CMD_GATHER = 0x03
_CMD_CLOSE = 0x04
_REPLY_OK = 0x00
_REPLY_ERR = 0x7F

_MODE_CODE = {SPARSE: 0, DENSE: 1}
_MODE_NAME = {0: SPARSE, 1: DENSE}

# Header of a scatter/gather frame after the command byte:
# generation (int64), frontier-mode code (uint8), sender count (int64).
_ARRAY_HEADER = struct.Struct("<qBq")
_OK_HEADER = struct.Struct("<B")


class PackedWire:
    """Fixed binary frames; sender ids travel as raw int64 bytes."""

    name = "packed"

    def send(self, conn: "Connection", msg: tuple) -> int:
        """Encode ``msg``, write it with ``send_bytes``, return frame size."""
        frame = self._encode(msg)
        conn.send_bytes(frame)
        return len(frame)

    def recv(self, conn: "Connection") -> tuple[tuple, int]:
        """Read one frame; return ``(message, frame_size)``.

        Raises :class:`WireFormatError` if the frame fails validation.
        """
        buf = conn.recv_bytes()
        return self._decode(buf), len(buf)

    @staticmethod
    def _encode(msg: tuple) -> bytes:
        cmd = msg[0]
        if cmd == "scatter" or cmd == "gather":
            _, gen, senders, mode = msg
            senders = np.ascontiguousarray(senders, dtype=np.int64)
            code = _CMD_SCATTER if cmd == "scatter" else _CMD_GATHER
            return (
                bytes([code])
                + _ARRAY_HEADER.pack(int(gen), _MODE_CODE[mode], senders.size)
                + senders.tobytes()
            )
        if cmd == "ok":
            ints = [int(v) for v in msg[1:]]
            return (
                bytes([_REPLY_OK])
                + _OK_HEADER.pack(len(ints))
                + struct.pack(f"<{len(ints)}q", *ints)
            )
        if cmd == "error":
            return bytes([_REPLY_ERR]) + msg[1].encode("utf-8", "replace")
        if cmd == "run":
            return bytes([_CMD_RUN]) + pickle.dumps(
                msg[1:], protocol=pickle.HIGHEST_PROTOCOL
            )
        if cmd == "close":
            return bytes([_CMD_CLOSE])
        raise ValueError(f"unknown wire command {cmd!r}")

    @staticmethod
    def _decode(buf: bytes) -> tuple:
        if not buf:
            raise WireFormatError("empty wire frame")
        code = buf[0]
        if code == _CMD_SCATTER or code == _CMD_GATHER:
            cmd = "scatter" if code == _CMD_SCATTER else "gather"
            if len(buf) < 1 + _ARRAY_HEADER.size:
                raise WireFormatError(
                    f"truncated {cmd} frame: {len(buf)} byte(s), header "
                    f"needs {1 + _ARRAY_HEADER.size}"
                )
            gen, mode_code, count = _ARRAY_HEADER.unpack_from(buf, 1)
            if mode_code not in _MODE_NAME:
                raise WireFormatError(
                    f"{cmd} frame carries unknown frontier-mode code "
                    f"{mode_code:#x}"
                )
            if count < 0:
                raise WireFormatError(
                    f"{cmd} frame declares negative sender count {count}"
                )
            expected = 1 + _ARRAY_HEADER.size + count * 8
            if len(buf) != expected:
                raise WireFormatError(
                    f"{cmd} frame declares {count} sender id(s) "
                    f"({expected} bytes) but carries {len(buf)} bytes"
                )
            senders = np.frombuffer(
                buf, dtype=np.int64, count=count, offset=1 + _ARRAY_HEADER.size
            )
            return (cmd, gen, senders, _MODE_NAME[mode_code])
        if code == _REPLY_OK:
            if len(buf) < 1 + _OK_HEADER.size:
                raise WireFormatError("truncated ok frame: missing count")
            (count,) = _OK_HEADER.unpack_from(buf, 1)
            expected = 1 + _OK_HEADER.size + count * 8
            if len(buf) != expected:
                raise WireFormatError(
                    f"ok frame declares {count} int(s) ({expected} bytes) "
                    f"but carries {len(buf)} bytes"
                )
            ints = struct.unpack_from(f"<{count}q", buf, 1 + _OK_HEADER.size)
            return ("ok", *ints)
        if code == _REPLY_ERR:
            return ("error", buf[1:].decode("utf-8", "replace"))
        if code == _CMD_RUN:
            try:
                body = pickle.loads(buf[1:])
            except Exception as exc:
                raise WireFormatError(
                    f"run frame body failed to unpickle: {exc!r}"
                ) from exc
            if not isinstance(body, tuple):
                raise WireFormatError(
                    "run frame body is not a tuple: "
                    f"{type(body).__name__}"
                )
            return ("run", *body)
        if code == _CMD_CLOSE:
            if len(buf) != 1:
                raise WireFormatError(
                    f"close frame carries {len(buf) - 1} trailing byte(s)"
                )
            return ("close",)
        raise WireFormatError(f"unknown wire code {code:#x}")


class PickleWire:
    """Legacy whole-tuple pickling, made byte-countable via send_bytes."""

    name = "pickle"

    def send(self, conn: "Connection", msg: tuple) -> int:
        frame = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        conn.send_bytes(frame)
        return len(frame)

    def recv(self, conn: "Connection") -> tuple[tuple, int]:
        buf = conn.recv_bytes()
        msg = pickle.loads(buf)
        if not isinstance(msg, tuple) or not msg:
            raise WireFormatError(
                "pickle frame did not decode to a non-empty tuple"
            )
        return msg, len(buf)


Wire = Union[PackedWire, PickleWire]


def make_wire(name: str) -> Wire:
    """Instantiate a wire codec by format name."""
    if name == "packed":
        return PackedWire()
    if name == "pickle":
        return PickleWire()
    raise ValueError(f"wire must be one of {WIRE_FORMATS}, got {name!r}")


def legacy_frame_size(msg: tuple) -> int:
    """Bytes the legacy pickle codec would put on the pipe for ``msg``.

    Used to report the ``pipe_bytes_legacy`` counterfactual next to the
    packed codec's actual ``pipe_bytes`` (telemetry-only; never on the
    hot path when telemetry is disabled).
    """
    return len(pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL))
