"""The vertex-program API (Pregel's user surface).

"Each vertex becomes a first-class citizen and an independent actor"
(paper §II).  A :class:`VertexProgram` implements one method,
:meth:`~VertexProgram.compute`, called once per superstep for every active
vertex with the messages delivered to it.  The :class:`VertexContext`
passed in exposes everything the model permits: the vertex's own state,
its neighbour list ("the vertex implicitly knows its neighbors"), message
sending to neighbours or to any vertex it has learned about, aggregator
access, and the vote to halt.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

__all__ = ["VertexContext", "VertexProgram"]


class VertexContext:
    """Per-vertex view of the current superstep, handed to ``compute``.

    Instances are reused across vertices within a superstep (the engine
    rebinds them) — do not store a context beyond the ``compute`` call.
    """

    __slots__ = ("_engine", "_vertex", "_superstep")

    def __init__(self, engine, vertex: int = -1, superstep: int = 0):
        self._engine = engine
        self._vertex = vertex
        self._superstep = superstep

    # -- identity ------------------------------------------------------
    @property
    def vertex_id(self) -> int:
        """The vertex this compute call is executing for."""
        return self._vertex

    @property
    def superstep(self) -> int:
        """Current superstep number (0-based)."""
        return self._superstep

    @property
    def num_vertices(self) -> int:
        return self._engine.graph.num_vertices

    # -- state ---------------------------------------------------------
    @property
    def value(self) -> Any:
        """This vertex's persistent state (kept between supersteps)."""
        return self._engine.values[self._vertex]

    @value.setter
    def value(self, new: Any) -> None:
        self._engine.values[self._vertex] = new

    # -- topology ------------------------------------------------------
    def neighbors(self) -> np.ndarray:
        """Out-neighbours of this vertex (read-only view)."""
        return self._engine.graph.neighbors(self._vertex)

    def degree(self) -> int:
        return self._engine.graph.degree(self._vertex)

    def edge_weights(self) -> np.ndarray:
        return self._engine.graph.edge_weights(self._vertex)

    # -- messaging -----------------------------------------------------
    def send(self, target: int, message: Any) -> None:
        """Send ``message`` to ``target``, delivered next superstep.

        ``target`` may be any vertex the program knows — a neighbour or an
        id learned from a received message (Pregel's "any vertex that it
        can identify").
        """
        self._engine.outbox.send(self._vertex, int(target), message)

    def send_to_neighbors(self, message: Any) -> None:
        """Send ``message`` to every out-neighbour."""
        outbox = self._engine.outbox
        me = self._vertex
        for n in self._engine.graph.neighbors(me).tolist():
            outbox.send(me, n, message)

    # -- control -------------------------------------------------------
    def vote_to_halt(self) -> None:
        """Deactivate after this superstep until a message arrives."""
        self._engine.halted[self._vertex] = True

    # -- aggregators ---------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a named aggregator (visible next superstep)."""
        self._engine.aggregate(name, value)

    def aggregated(self, name: str) -> Any:
        """Read the aggregator value from the *previous* superstep."""
        return self._engine.aggregated(name)


class VertexProgram(ABC):
    """Base class for vertex-centric algorithms."""

    @abstractmethod
    def compute(self, ctx: VertexContext, messages: Sequence[Any]) -> None:
        """Process one superstep for one vertex.

        ``messages`` holds everything sent to this vertex in the previous
        superstep (possibly reduced by a combiner).  Implementations
        should call :meth:`VertexContext.vote_to_halt` when idle.
        """

    def initial_value(self, vertex: int, graph) -> Any:
        """State assigned to ``vertex`` before superstep 0 (default None)."""
        return None
