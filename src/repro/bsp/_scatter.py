"""Shared vectorized message-scatter primitives.

The dense BSP engine and the remaining hand-vectorized kernels all
express "every sender floods a value along all its arcs" — these helpers
select those arcs and build the per-destination enqueue histograms the
instrumentation needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["arcs_from", "enqueue_histogram"]


def arcs_from(senders: np.ndarray, row_ptr: np.ndarray) -> np.ndarray:
    """Boolean mask over the arc array selecting arcs out of ``senders``."""
    n = row_ptr.size - 1
    vertex_mask = np.zeros(n, dtype=bool)
    vertex_mask[senders] = True
    return np.repeat(vertex_mask, np.diff(row_ptr))


def enqueue_histogram(
    destinations: np.ndarray, num_vertices: int
) -> np.ndarray:
    """Messages enqueued per destination vertex.

    ``np.bincount`` rather than ``np.add.at``: the unbuffered ufunc
    scatter is several times slower for plain int64 counting.
    """
    if not destinations.size:
        return np.zeros(num_vertices, dtype=np.int64)
    return np.bincount(destinations, minlength=num_vertices).astype(
        np.int64, copy=False
    )
