"""Global aggregators (Pregel §3.3 semantics).

Vertices contribute values during superstep *s*; the reduced result is
visible to every vertex during superstep *s + 1*.  Aggregators provide the
only global communication channel in the model — used for convergence
tests, global statistics, and coordination.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = [
    "Aggregator",
    "SumAggregator",
    "MinAggregator",
    "MaxAggregator",
    "LogicalAndAggregator",
    "LogicalOrAggregator",
]


class Aggregator(ABC):
    """A commutative, associative global reduction with an identity."""

    @abstractmethod
    def identity(self) -> Any:
        """Value of an aggregation nobody contributed to."""

    @abstractmethod
    def reduce(self, acc: Any, value: Any) -> Any:
        """Fold one contribution into the accumulator."""


class SumAggregator(Aggregator):
    """Sum of all contributions (counters, totals)."""

    def identity(self):
        return 0

    def reduce(self, acc, value):
        return acc + value


class MinAggregator(Aggregator):
    """Smallest contribution (None when nobody contributed)."""

    def identity(self):
        return None

    def reduce(self, acc, value):
        return value if acc is None or value < acc else acc


class MaxAggregator(Aggregator):
    """Largest contribution (None when nobody contributed)."""

    def identity(self):
        return None

    def reduce(self, acc, value):
        return value if acc is None or value > acc else acc


class LogicalAndAggregator(Aggregator):
    """True iff every contribution was truthy (convergence votes)."""

    def identity(self):
        return True

    def reduce(self, acc, value):
        return bool(acc) and bool(value)


class LogicalOrAggregator(Aggregator):
    """True iff any contribution was truthy (activity detection)."""

    def identity(self):
        return False

    def reduce(self, acc, value):
        return bool(acc) or bool(value)
