"""Bulk synchronous parallel (Pregel-style) vertex-centric framework.

The programming model the paper investigates (§II): a computation is a
sequence of **supersteps**; in each superstep an active vertex

1. receives the messages sent to it in the previous superstep,
2. performs local computation and may update its state,
3. sends messages that will be delivered in the *next* superstep,

and may **vote to halt** — it then stays inactive until a message
re-activates it.  Messages crossing superstep boundaries make the model
deadlock-free by construction, at the price of computing on stale data
(the effect behind the paper's connected-components iteration blow-up).

Three engines share these semantics:

* :class:`~repro.bsp.engine.BSPEngine` — the reference engine: runs any
  user :class:`~repro.bsp.vertex.VertexProgram` one vertex at a time in
  pure Python.  The readable rendition of the paper's pseudocode.
* :class:`~repro.bsp.dense.DenseBSPEngine` — the array-mode fast path:
  runs a :class:`~repro.bsp.dense.DenseVertexProgram` (whole-superstep
  NumPy kernels) with a combiner-fused scatter/gather.  The benchmark
  path behind :mod:`repro.bsp_algorithms`.
* :class:`~repro.bsp.parallel.ShardedBSPEngine` — the multi-worker
  path: the same dense programs with scatter/gather fanned out over a
  pool of OS processes sharing the CSR through
  :mod:`multiprocessing.shared_memory`.  The measured counterpart of
  the paper's 1–128 processor strong-scaling study.

All engines record the same instrumentation (messages per superstep,
active vertices, per-destination queue pressure) into an XMT work trace
and produce identical :class:`~repro.bsp.engine.BSPResult` s for
equivalent programs — asserted by the equivalence suite.
"""

from repro.bsp.aggregators import (
    Aggregator,
    LogicalAndAggregator,
    LogicalOrAggregator,
    MaxAggregator,
    MinAggregator,
    SumAggregator,
)
from repro.bsp.checkpoint import (
    Checkpoint,
    CheckpointStore,
    load_checkpoint,
    save_checkpoint,
)
from repro.bsp.combiners import (
    Combiner,
    MaxCombiner,
    MinCombiner,
    SumCombiner,
)
from repro.bsp.dense import (
    DenseBSPEngine,
    DenseSuperstepContext,
    DenseVertexProgram,
)
from repro.bsp.engine import BSPEngine, BSPResult
from repro.bsp.frontier import (
    DEFAULT_FRONTIER_POLICY,
    FrontierPolicy,
)
from repro.bsp.messages import MessageBuffer
from repro.bsp.parallel import (
    PARTITION_POLICIES,
    ShardedBSPEngine,
    ShardedWorkerError,
    ShardedWriteRaceError,
)
from repro.bsp.vertex import VertexContext, VertexProgram

from contextlib import contextmanager

#: Engine selection modes accepted by :func:`make_engine`.
ENGINE_MODES = ("dense", "sharded")


@contextmanager
def engine_for(graph, engine=None, **kwargs):
    """Yield a run-ready engine for ``graph``.

    With ``engine`` given (a warm, caller-owned engine — e.g. the
    service layer's persistent :class:`ShardedBSPEngine`), it is yielded
    as-is and **not** closed afterwards; the remaining keyword arguments
    are ignored because the engine's construction already fixed them.
    The engine must have been built on the *same* graph object — running
    a program against a different graph's shared-memory CSR would
    silently compute on the wrong topology.

    Without ``engine``, a fresh one is built via :func:`make_engine` and
    closed when the block exits (the one-shot library-call path).
    """
    if engine is not None:
        if engine.graph is not graph:
            raise ValueError(
                "engine was built on a different graph object; warm "
                "engines are bound to the CSR they froze at construction"
            )
        yield engine
        return
    owned = make_engine(graph, **kwargs)
    try:
        yield owned
    finally:
        owned.close()


def make_engine(graph, mode="dense", *, num_workers=None, **kwargs):
    """Build a dense-program BSP engine by name.

    ``mode="dense"`` gives the single-process
    :class:`~repro.bsp.dense.DenseBSPEngine`; ``mode="sharded"`` the
    multi-process :class:`~repro.bsp.parallel.ShardedBSPEngine`.  As a
    convenience, ``mode="dense"`` with ``num_workers`` > 1 upgrades to
    the sharded engine, so callers can thread one worker-count knob
    through.  Extra keyword arguments pass to the engine constructor.
    """
    if mode not in ENGINE_MODES:
        raise ValueError(f"mode must be one of {ENGINE_MODES}")
    if mode == "sharded" or (num_workers is not None and num_workers > 1):
        return ShardedBSPEngine(graph, num_workers=num_workers, **kwargs)
    kwargs.pop("partition", None)
    return DenseBSPEngine(graph, **kwargs)


__all__ = [
    "DEFAULT_FRONTIER_POLICY",
    "ENGINE_MODES",
    "FrontierPolicy",
    "PARTITION_POLICIES",
    "ShardedBSPEngine",
    "ShardedWorkerError",
    "ShardedWriteRaceError",
    "engine_for",
    "make_engine",
    "Aggregator",
    "BSPEngine",
    "BSPResult",
    "Checkpoint",
    "CheckpointStore",
    "Combiner",
    "DenseBSPEngine",
    "DenseSuperstepContext",
    "DenseVertexProgram",
    "load_checkpoint",
    "save_checkpoint",
    "LogicalAndAggregator",
    "LogicalOrAggregator",
    "MaxAggregator",
    "MaxCombiner",
    "MessageBuffer",
    "MinAggregator",
    "MinCombiner",
    "SumAggregator",
    "SumCombiner",
    "VertexContext",
    "VertexProgram",
]
