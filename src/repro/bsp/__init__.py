"""Bulk synchronous parallel (Pregel-style) vertex-centric framework.

The programming model the paper investigates (§II): a computation is a
sequence of **supersteps**; in each superstep an active vertex

1. receives the messages sent to it in the previous superstep,
2. performs local computation and may update its state,
3. sends messages that will be delivered in the *next* superstep,

and may **vote to halt** — it then stays inactive until a message
re-activates it.  Messages crossing superstep boundaries make the model
deadlock-free by construction, at the price of computing on stale data
(the effect behind the paper's connected-components iteration blow-up).

Two engines share these semantics:

* :class:`~repro.bsp.engine.BSPEngine` — the reference engine: runs any
  user :class:`~repro.bsp.vertex.VertexProgram` one vertex at a time in
  pure Python.  The readable rendition of the paper's pseudocode.
* :class:`~repro.bsp.dense.DenseBSPEngine` — the array-mode fast path:
  runs a :class:`~repro.bsp.dense.DenseVertexProgram` (whole-superstep
  NumPy kernels) with a combiner-fused scatter/gather.  The benchmark
  path behind :mod:`repro.bsp_algorithms`.

Both engines record the same instrumentation (messages per superstep,
active vertices, per-destination queue pressure) into an XMT work trace
and produce identical :class:`~repro.bsp.engine.BSPResult` s for
equivalent programs — asserted by the equivalence suite.
"""

from repro.bsp.aggregators import (
    Aggregator,
    LogicalAndAggregator,
    LogicalOrAggregator,
    MaxAggregator,
    MinAggregator,
    SumAggregator,
)
from repro.bsp.checkpoint import (
    Checkpoint,
    CheckpointStore,
    load_checkpoint,
    save_checkpoint,
)
from repro.bsp.combiners import (
    Combiner,
    MaxCombiner,
    MinCombiner,
    SumCombiner,
)
from repro.bsp.dense import (
    DenseBSPEngine,
    DenseSuperstepContext,
    DenseVertexProgram,
)
from repro.bsp.engine import BSPEngine, BSPResult
from repro.bsp.messages import MessageBuffer
from repro.bsp.vertex import VertexContext, VertexProgram

__all__ = [
    "Aggregator",
    "BSPEngine",
    "BSPResult",
    "Checkpoint",
    "CheckpointStore",
    "Combiner",
    "DenseBSPEngine",
    "DenseSuperstepContext",
    "DenseVertexProgram",
    "load_checkpoint",
    "save_checkpoint",
    "LogicalAndAggregator",
    "LogicalOrAggregator",
    "MaxAggregator",
    "MaxCombiner",
    "MessageBuffer",
    "MinAggregator",
    "MinCombiner",
    "SumAggregator",
    "SumCombiner",
    "VertexContext",
    "VertexProgram",
]
