"""Message combiners.

Pregel lets the runtime fold messages aimed at the same vertex into one
when the program only consumes a reduction of them (min label, summed
rank...).  The paper's runtime does *not* combine — every message is
materialized, which is precisely where the BSP write blow-up comes from —
so combiners are off by default here; the combiner ablation bench
(`bench_ablation_combiner`) measures what the paper's numbers would look
like with them on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = ["Combiner", "MinCombiner", "MaxCombiner", "SumCombiner"]


class Combiner(ABC):
    """Associative, commutative fold over messages to one vertex."""

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Fold two messages into one."""


class MinCombiner(Combiner):
    """Keep only the smallest message (connected components, BFS, SSSP)."""

    def combine(self, a: Any, b: Any) -> Any:
        return a if a <= b else b


class MaxCombiner(Combiner):
    """Keep only the largest message."""

    def combine(self, a: Any, b: Any) -> Any:
        return a if a >= b else b


class SumCombiner(Combiner):
    """Sum messages (PageRank contributions)."""

    def combine(self, a: Any, b: Any) -> Any:
        return a + b
