"""Sharded multi-process execution of dense BSP programs.

The paper's central experiment is strong scaling from 1 to 128 XMT
processors, but :class:`~repro.bsp.dense.DenseBSPEngine` executes every
superstep on one core.  This module adds the multi-worker path: a
:class:`ShardedBSPEngine` that runs the *same*
:class:`~repro.bsp.dense.DenseVertexProgram` s with the edge-proportional
scatter/gather work fanned out over a pool of OS processes —
the standard partitioned-frontier + merged-exchange route from one core
to many (Buluç & Madduri's distributed BFS; Pregel's worker model).

Design:

* **Zero-copy graph sharing** — the frozen CSR arrays (``row_ptr``,
  ``col_idx``, ``weights``, plus the cached per-arc source vector) are
  placed in :mod:`multiprocessing.shared_memory` once at pool start;
  every worker maps them read-only.  The per-vertex ``values`` array
  lives in a shared block too, so the parent's ``compute`` updates are
  visible to workers without any per-superstep copy.
* **Vertex partitioning** — vertices are assigned to workers with the
  cluster placement policies (:func:`~repro.cluster.partition.hash_partition`
  or :func:`~repro.cluster.partition.balanced_edge_partition`); a
  superstep's sender set is split along that assignment and each worker
  floods only its shard's out-arcs, using the frontier-adaptive arc
  selection (:mod:`repro.bsp.frontier`) the parent chose for the
  superstep.
* **Combiner merge at the barrier** — each worker folds its shard's
  messages into a private per-destination array; the parent merges the
  per-worker arrays with the program's combiner (``np.minimum`` /
  ``np.add``), which is exactly the fold the dense engine computes in
  one pass.  Enqueue histograms merge by summation, so the superstep
  accounting fed to :func:`~repro.bsp.instrumentation.record_superstep`
  is *identical* to the dense engine's at any worker count — results,
  message histories and work traces stay equivalent (bit-identical for
  every exact fold; PageRank's float summation order may differ in the
  last ulp across shard boundaries, same as dense-vs-reference).
  Delivery is lazy (see :meth:`DenseBSPEngine._gather`): the gather
  exchange and combine only run if the program reads ``ctx.messages``,
  so message-free supersteps cost one pipe round-trip, not two.
* **Byte-packed pipes** — per-superstep commands cross the worker pipes
  as fixed binary frames (:mod:`repro.bsp._wire`): raw int64 sender ids
  behind a struct header instead of pickled tuples.  Bytes-on-pipe are
  accounted in :attr:`ShardedBSPEngine.pipe_bytes` and, with telemetry,
  the per-superstep ``pipe_bytes`` / ``pipe_bytes_legacy`` counters.
  ``wire="pickle"`` keeps the legacy encoding (bit-identical results).
* **Persistent pool with warm shard handles** — workers live for the
  engine's lifetime and cache their shard's arc selection between the
  scatter-accounting call and the delivery at the next superstep's
  barrier, so each superstep costs at most two small pipe round-trips,
  not a pool spawn.

The engine subclasses :class:`DenseBSPEngine` and overrides only the
scatter/gather hooks; the run loop — active-set selection, vote-to-halt,
termination, aggregators, checkpoint/resume (checkpoints interchange
freely with the dense engine) — is inherited verbatim.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
import warnings
from collections import deque
from multiprocessing import get_all_start_methods, get_context, shared_memory
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bsp._wire import WIRE_FORMATS, legacy_frame_size, make_wire
from repro.bsp.dense import DenseBSPEngine, DenseVertexProgram
from repro.bsp.frontier import FrontierPolicy, select_arcs
from repro.cluster.partition import (
    balanced_edge_partition,
    hash_partition,
    shard_indices,
)
from repro.graph.csr import CSRGraph
from repro.telemetry.core import Telemetry, peak_rss_bytes, worker_track
from repro.telemetry.flightrec import (
    EV_ENTER,
    EV_EXIT,
    EV_PROGRESS,
    EV_RSS,
    PH_GATHER,
    PH_IDLE,
    PH_RUN,
    PH_SCATTER,
    FlightRecorder,
    RingWriter,
    StallWatchdog,
    straggler_skew_ns,
)
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts

__all__ = [
    "PARTITION_POLICIES",
    "ShardedBSPEngine",
    "ShardedWorkerError",
    "ShardedWriteRaceError",
    "WorkerStallError",
]

#: Placement policies understood by :class:`ShardedBSPEngine`.
PARTITION_POLICIES = ("hash", "balanced-edge")


class ShardedWorkerError(RuntimeError):
    """A shard worker failed while executing its slice of a superstep.

    Attributes
    ----------
    worker_tracebacks:
        ``{worker_index: traceback_text}`` — each failed worker's
        traceback, verbatim as formatted inside the worker process.
    postmortem_path:
        Path of the flight-recorder postmortem bundle dumped for this
        failure, or None when no recorder was attached.
    """

    def __init__(
        self,
        message: str,
        *,
        worker_tracebacks: dict[int, str] | None = None,
        postmortem_path: Path | None = None,
    ) -> None:
        super().__init__(message)
        self.worker_tracebacks = dict(worker_tracebacks or {})
        self.postmortem_path = postmortem_path

    @property
    def postmortem_id(self) -> str | None:
        """Bundle id usable with ``GET /debug/postmortem/<id>``."""
        if self.postmortem_path is None:
            return None
        return Path(self.postmortem_path).stem


class WorkerStallError(ShardedWorkerError):
    """A shard worker went silent past the engine's ``stall_timeout``.

    Raised from the parent's pipe-receive loop when a worker it is
    waiting on has recorded no flight-recorder event (no phase change,
    no progress tick) within ``stall_timeout`` seconds — the sharded
    signature of a wedged or livelocked shard.  ``worker`` names the
    stalled shard; the base-class ``postmortem_path`` points at the
    bundle dumped before raising.
    """

    def __init__(
        self,
        message: str,
        *,
        worker: int | None = None,
        postmortem_path: Path | None = None,
    ) -> None:
        super().__init__(message, postmortem_path=postmortem_path)
        self.worker = worker


class ShardedWriteRaceError(RuntimeError):
    """Two shard workers wrote conflicting values to shared state.

    Raised at the gather barrier by the write-race detector
    (``ShardedBSPEngine(check=True)`` / ``REPRO_SHARDED_CHECK=1``) when
    per-worker write-sets over the shared ``values`` array overlap with
    differing values — the outcome of the corresponding unchecked run
    would depend on worker scheduling.

    Attributes
    ----------
    superstep:
        Superstep index at whose barrier the conflict was detected.
    conflicts:
        ``[(vertex, {worker: value}), ...]`` for each conflicting
        vertex (capped; see the message for the total).
    """

    def __init__(
        self,
        message: str,
        *,
        superstep: int,
        conflicts: list[tuple[int, dict[int, Any]]],
    ) -> None:
        super().__init__(message)
        self.superstep = superstep
        self.conflicts = conflicts


def _check_mode_from_env() -> bool:
    """Resolve the ``REPRO_SHARDED_CHECK`` default for ``check=None``."""
    env = os.environ.get("REPRO_SHARDED_CHECK", "").strip().lower()
    return env not in ("", "0", "false", "no", "off")


def _flight_recorder_from_env() -> bool:
    """Resolve ``REPRO_FLIGHT_RECORDER`` for ``flight_recorder=None``.

    The recorder is **default-on** (its steady cost is a handful of
    48-byte ring writes per worker per superstep); the variable exists
    to switch it off wholesale for overhead A/B runs.
    """
    env = os.environ.get("REPRO_FLIGHT_RECORDER", "").strip().lower()
    return env not in ("0", "false", "no", "off")


# ---------------------------------------------------------------------------
# Shared-memory plumbing
# ---------------------------------------------------------------------------


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block created by the parent engine.

    No resource-tracker gymnastics needed: worker processes (fork *and*
    spawn/forkserver alike) inherit the parent's tracker, whose cache is
    a per-type set — the workers' attach-time registrations deduplicate
    against the parent's create-time one, and the parent's unlink clears
    the single entry.  Unregistering here would instead corrupt that
    shared cache.
    """
    return shared_memory.SharedMemory(name=name)


def _new_block(nbytes: int) -> shared_memory.SharedMemory:
    """Create a block (shared memory rejects zero-byte segments)."""
    return shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))


def _release_block(shm: shared_memory.SharedMemory | None) -> None:
    """Unlink a block, tolerating still-exported NumPy views.

    ``close`` raises :class:`BufferError` while any array over the
    buffer is alive (e.g. a caller kept ``engine.values``); the unlink
    still proceeds — the OS frees the segment when the last mapping
    drops.
    """
    if shm is None:
        return
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - defensive
        pass


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


#: Arc-range chunk per ``combine.at`` call when the flight recorder is
#: attached — a progress tick lands between chunks, so the parent can
#: distinguish "grinding through a huge shard" from "wedged".  Chunks
#: are applied in index order, so the fold's element ordering (and hence
#: bit-exactness vs. the single-call path) is preserved.
_PROGRESS_CHUNK_ARCS = 1 << 18

_PHASE_BY_CMD = {"run": PH_RUN, "scatter": PH_SCATTER, "gather": PH_GATHER}


def _combine_at_chunked(program, gathered_out, dst, payload, ring, step):
    """``combine.at`` in arc-order chunks, ticking progress after each."""
    total = int(dst.size)
    # A scalar / broadcast payload cannot be sliced alongside dst.
    sliceable = payload.ndim == 1 and payload.shape[0] == total
    done = 0
    while done < total:
        end = min(done + _PROGRESS_CHUNK_ARCS, total)
        chunk = payload[done:end] if sliceable else payload
        program.combine.at(gathered_out, dst[done:end], chunk)
        done = end
        ring.record(EV_PROGRESS, PH_GATHER, step, done, total)


def _worker_main(conn, spec: dict) -> None:
    """Shard worker: serve scatter/gather tasks until told to close.

    The worker owns one vertex shard implicitly — the parent only ever
    sends it the senders that live on its shard.  Warm state between
    tasks: the run-scoped program/values/output handles and the cached
    (generation, arc selection, destinations) of the last scatter,
    reused by the gather of the following superstep.  All traffic is
    encoded by the wire codec named in ``spec["wire"]``.

    When the parent attached a flight recorder (``spec["flightrec"]``),
    every task brackets itself with enter/exit events in this worker's
    shared-memory ring, samples RSS before replying, and the gather's
    combine fold ticks progress every :data:`_PROGRESS_CHUNK_ARCS` arcs
    — the breadcrumbs the parent's stall watchdog and ``repro top``
    read without any extra pipe traffic.
    """
    n = spec["num_vertices"]
    m = spec["num_arcs"]
    w = spec["worker_index"]
    wire = make_wire(spec["wire"])
    handles: list[shared_memory.SharedMemory] = []
    ring: RingWriter | None = None
    if spec.get("flightrec") is not None:
        try:
            ring = RingWriter(
                spec["flightrec"]["shm"], spec["flightrec"]["capacity"], w
            )
        except Exception:  # pragma: no cover - recording is best-effort
            ring = None

    def attach_array(name, shape, dtype):
        shm = _attach(name)
        handles.append(shm)
        return np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    row_ptr = attach_array(spec["row_ptr"], (n + 1,), np.int64)
    col_idx = attach_array(spec["col_idx"], (m,), np.int64)
    weights = (
        attach_array(spec["weights"], (m,), np.float64)
        if spec["weights"] is not None
        else None
    )
    arc_sources = attach_array(spec["arc_sources"], (m,), np.int64)
    graph = CSRGraph(
        row_ptr=row_ptr,
        col_idx=col_idx,
        weights=weights,
        directed=spec["directed"],
        sorted_adjacency=spec["sorted_adjacency"],
    )
    # Seed the per-arc source cache from shared memory so workers don't
    # each rebuild (and privately hold) the O(arcs) expansion.
    graph._degree_cache["arc_sources"] = arc_sources
    hist_shm = _attach(spec["hist"])
    handles.append(hist_shm)
    hist_out = np.ndarray(
        (n,), dtype=np.int64, buffer=hist_shm.buf, offset=w * n * 8
    )

    program: DenseVertexProgram | None = None
    values: np.ndarray | None = None
    gathered_out: np.ndarray | None = None
    shadow_out: np.ndarray | None = None
    run_shms: list[shared_memory.SharedMemory] = []
    sel = dst = None
    generation = -1

    def refresh_scatter(gen, senders, mode):
        nonlocal sel, dst, generation
        sel = select_arcs(senders, row_ptr, mode)
        dst = col_idx[sel]
        hist_out[:] = np.bincount(dst, minlength=n)
        generation = gen

    try:
        while True:
            msg, _ = wire.recv(conn)
            cmd = msg[0]
            if cmd == "close":
                return
            # Busy time (recv-to-reply) and the worker's peak RSS ride
            # as the last two elements of every "ok" reply, so the
            # parent's telemetry can draw per-worker rows, barrier-wait
            # skew, and per-worker memory without a second round trip.
            # The nanosecond read and the getrusage call together cost
            # ~1us per task — negligible against any superstep's work.
            t_busy = time.perf_counter_ns()
            phase = _PHASE_BY_CMD.get(cmd, PH_IDLE)
            step = int(msg[1]) if cmd in ("scatter", "gather") else -1
            if ring is not None:
                ring.record(EV_ENTER, phase, step)
            try:
                if cmd == "run":
                    (_, program, values_name, values_dtype, gathered_name,
                     *rest) = msg
                    shadow_name = rest[0] if rest else None
                    for shm in run_shms:
                        shm.close()
                    vshm = _attach(values_name)
                    gshm = _attach(gathered_name)
                    run_shms = [vshm, gshm]
                    vdtype = np.dtype(values_dtype)
                    values = np.ndarray(
                        (n,), dtype=vdtype, buffer=vshm.buf
                    )
                    mdtype = np.dtype(program.message_dtype)
                    gathered_out = np.ndarray(
                        (n,),
                        dtype=mdtype,
                        buffer=gshm.buf,
                        offset=w * n * mdtype.itemsize,
                    )
                    if shadow_name is not None:
                        sshm = _attach(shadow_name)
                        run_shms.append(sshm)
                        shadow_out = np.ndarray(
                            (n,),
                            dtype=vdtype,
                            buffer=sshm.buf,
                            offset=w * n * vdtype.itemsize,
                        )
                    else:
                        shadow_out = None
                    sel = dst = None
                    generation = -1
                    busy = time.perf_counter_ns() - t_busy
                    rss = peak_rss_bytes() or 0
                    if ring is not None:
                        ring.record(EV_RSS, phase, step, rss)
                        ring.record(EV_EXIT, phase, step, 0, busy)
                    wire.send(conn, ("ok", busy, rss))
                elif cmd == "scatter":
                    _, gen, senders, mode = msg
                    refresh_scatter(gen, senders, mode)
                    busy = time.perf_counter_ns() - t_busy
                    rss = peak_rss_bytes() or 0
                    if ring is not None:
                        ring.record(EV_RSS, phase, step, rss)
                        ring.record(EV_EXIT, phase, step, int(dst.size), busy)
                    wire.send(conn, ("ok", int(dst.size), busy, rss))
                elif cmd == "gather":
                    _, gen, senders, mode = msg
                    hist_fresh = gen != generation
                    if hist_fresh:  # stale cache: no prior scatter call
                        refresh_scatter(gen, senders, mode)
                    if ring is not None:
                        # Announce the arc total up front: the watchdog
                        # can tell a slow payload hook from a dead one.
                        ring.record(
                            EV_PROGRESS, phase, step, 0, int(dst.size)
                        )
                    if shadow_out is not None:
                        # Check mode: run the payload hook on a private
                        # copy of the shared state and publish the
                        # post-call copy to this worker's shadow slice.
                        # Any write the hook performs is attributed to
                        # exactly this worker, never lands in the shared
                        # array, and is diffed by the parent at the
                        # barrier.
                        work_values = values.copy()
                        payload = np.asarray(
                            program.arc_payload(graph, work_values, sel)
                        )
                        shadow_out[:] = work_values
                    else:
                        payload = np.asarray(
                            program.arc_payload(graph, values, sel)
                        )
                    gathered_out[:] = program.combine_identity
                    if dst.size:
                        if ring is not None:
                            _combine_at_chunked(
                                program, gathered_out, dst, payload,
                                ring, step,
                            )
                        else:
                            program.combine.at(gathered_out, dst, payload)
                    busy = time.perf_counter_ns() - t_busy
                    rss = peak_rss_bytes() or 0
                    if ring is not None:
                        ring.record(EV_RSS, phase, step, rss)
                        ring.record(EV_EXIT, phase, step, int(dst.size), busy)
                    wire.send(
                        conn,
                        ("ok", int(dst.size), int(hist_fresh), busy, rss),
                    )
                else:
                    if ring is not None:
                        ring.record(EV_EXIT, phase, step, -1, 0)
                    wire.send(conn, ("error", f"unknown command {cmd!r}"))
            except Exception:
                # Close the phase even on failure so the recorder never
                # shows an eternally-open phase for a worker that in
                # fact replied with an error.
                if ring is not None:
                    ring.record(
                        EV_EXIT, phase, step, -1,
                        time.perf_counter_ns() - t_busy,
                    )
                wire.send(conn, ("error", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        if ring is not None:
            ring.close()
        for shm in run_shms + handles:
            try:
                shm.close()
            except Exception:
                pass


# ---------------------------------------------------------------------------
# Parent-side engine
# ---------------------------------------------------------------------------


class ShardedBSPEngine(DenseBSPEngine):
    """Multi-process sibling of :class:`DenseBSPEngine`.

    Same constructor contract, same ``run`` signature, same
    :class:`~repro.bsp.engine.BSPResult`, interchangeable checkpoints —
    but each superstep's scatter/gather executes as per-shard dense
    kernels on a persistent worker pool.  Close the engine (or use it as
    a context manager) to release the workers and shared memory.

    Parameters
    ----------
    graph:
        The input graph, frozen into shared memory at construction.
    num_workers:
        Worker process count (default: the host's CPU count).
    partition:
        ``"hash"`` (Pregel's default placement), ``"balanced-edge"``
        (degree-aware greedy placement), or an explicit per-vertex
        machine assignment array with ids in ``[0, num_workers)``.
    start_method:
        Multiprocessing start method; default ``fork`` where available
        (cheapest pool spawn), else ``spawn``.  Override with the
        ``REPRO_SHARDED_START_METHOD`` environment variable.
    wire:
        Pipe encoding for worker traffic: ``"packed"`` (binary frames,
        the default) or ``"pickle"`` (legacy whole-tuple pickling).
        Results are bit-identical either way; only bytes-on-pipe differ.
        Override the default with the ``REPRO_SHARDED_WIRE`` environment
        variable.  Cumulative traffic is exposed as :attr:`pipe_bytes`.
    check:
        Enable the write-race detector (default: the
        ``REPRO_SHARDED_CHECK`` environment variable, off when unset).
        In check mode every worker executes ``arc_payload`` on a private
        copy of the shared ``values`` array and publishes the post-call
        copy to a per-worker shadow block; the parent diffs the shadow
        write-sets against a pre-gather snapshot at each barrier.
        Overlapping writes with differing values raise
        :class:`ShardedWriteRaceError`; any other write by the payload
        hook (which must be read-only) emits a :class:`RuntimeWarning`.
        Well-behaved programs produce bit-identical results with the
        mode on or off, at the cost of one values-array copy per worker
        per delivering superstep.
    flight_recorder:
        Worker flight recorder (shared-memory event rings; see
        :mod:`repro.telemetry.flightrec`).  **Default-on**: ``None``
        resolves via the ``REPRO_FLIGHT_RECORDER`` environment variable
        (on unless explicitly disabled), ``False`` disables, ``True``
        builds a default :class:`~repro.telemetry.flightrec.FlightRecorder`,
        and an unbound instance is adopted (the engine opens and closes
        it).  With a recorder attached, workers bracket every task with
        enter/exit ring events, tick gather progress per arc chunk, and
        sample RSS; the engine computes per-barrier straggler skew
        (``straggler_skew_ns`` / ``straggler_count`` telemetry
        counters), exposes :meth:`worker_status`, and dumps a
        postmortem bundle to the recorder's ``postmortem_dir`` on any
        worker crash, error, or stall.
    stall_timeout:
        Seconds of worker silence the parent tolerates while awaiting a
        barrier reply before declaring the worker stalled and raising
        :class:`WorkerStallError` (None — the default — waits forever,
        the pre-recorder behaviour).  With a recorder attached the
        clock is the worker's *ring* age (progress ticks keep a slow
        but live worker alive past the deadline); without one it is a
        wall deadline per reply.  :meth:`close` reuses the same bound
        when draining worker pipes, so shutdown can never hang on a
        wedged worker.
    combine_messages, frontier_policy, aggregators, costs, telemetry:
        As for :class:`DenseBSPEngine`.  With telemetry enabled the
        engine additionally records per-worker busy spans (one trace
        row per worker), barrier spans around every exchange, per-worker
        busy/wait and shard-size counters, and per-superstep
        ``pipe_bytes`` (plus, under the packed wire, the
        ``pipe_bytes_legacy`` counterfactual).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        num_workers: int | None = None,
        partition: str | np.ndarray = "hash",
        start_method: str | None = None,
        wire: str | None = None,
        check: bool | None = None,
        flight_recorder: "FlightRecorder | bool | None" = None,
        stall_timeout: float | None = None,
        combine_messages: bool = False,
        frontier_policy: FrontierPolicy | None = None,
        aggregators: dict | None = None,
        costs: KernelCosts = DEFAULT_COSTS,
        telemetry: Telemetry | None = None,
    ) -> None:
        super().__init__(
            graph,
            combine_messages=combine_messages,
            frontier_policy=frontier_policy,
            aggregators=aggregators,
            costs=costs,
            telemetry=telemetry,
        )
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        num_workers = int(num_workers)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

        wire = wire or os.environ.get("REPRO_SHARDED_WIRE") or "packed"
        if wire not in WIRE_FORMATS:
            raise ValueError(f"wire must be one of {WIRE_FORMATS}")
        self.wire_format = wire
        self._wire = make_wire(wire)
        #: Write-race detector state (see the ``check`` parameter).
        self.check = _check_mode_from_env() if check is None else bool(check)
        #: Cumulative bytes put on / read from the worker pipes (frame
        #: payloads; excludes the OS pipe framing).  Always maintained,
        #: telemetry or not — the byte-packing tests assert on it.
        self.pipe_bytes = 0

        if stall_timeout is not None:
            stall_timeout = float(stall_timeout)
            if stall_timeout <= 0:
                raise ValueError("stall_timeout must be positive")
        #: Stall deadline in seconds (None: never time a worker out).
        self.stall_timeout = stall_timeout
        if flight_recorder is None:
            flight_recorder = _flight_recorder_from_env()
        if flight_recorder is True:
            recorder: FlightRecorder | None = FlightRecorder()
        elif flight_recorder is False:
            recorder = None
        else:
            recorder = flight_recorder
        #: The attached :class:`~repro.telemetry.flightrec.FlightRecorder`
        #: (None when disabled).  The engine owns its open/close.
        self.flight_recorder = recorder
        #: True once any worker tripped the stall deadline.
        self.stall_detected = False
        #: Count of distinct stall detections (watchdog + recv loop).
        self.stall_events = 0
        #: Last completed barrier's slowest-vs-median worker gap, seconds.
        self.superstep_skew_seconds = 0.0
        # Per-barrier skew samples awaiting the service's histogram
        # bridge (deque: drained thread-safely by drain_skew_samples).
        self._skew_samples: deque[float] = deque(maxlen=4096)
        self._last_barrier: dict[str, Any] = {}
        self._watchdog: StallWatchdog | None = None

        if isinstance(partition, str):
            if partition == "hash":
                assignment = hash_partition(graph, num_workers)
            elif partition == "balanced-edge":
                assignment = balanced_edge_partition(graph, num_workers)
            else:
                raise ValueError(
                    f"partition must be one of {PARTITION_POLICIES} "
                    "or an assignment array"
                )
            self.partition_policy = partition
        else:
            assignment = np.asarray(partition, dtype=np.int64)
            if assignment.shape != (graph.num_vertices,):
                raise ValueError(
                    "assignment must have one entry per vertex"
                )
            if assignment.size and (
                assignment.min() < 0 or assignment.max() >= num_workers
            ):
                raise ValueError(
                    f"machine ids must lie in [0, {num_workers})"
                )
            self.partition_policy = "custom"
        self.assignment = assignment
        self.shards = shard_indices(assignment, num_workers)

        method = (
            start_method
            or os.environ.get("REPRO_SHARDED_START_METHOD")
            or ("fork" if "fork" in get_all_start_methods() else "spawn")
        )
        ctx = get_context(method)

        n = graph.num_vertices
        self._closed = False
        # One runner at a time: the pipe protocol interleaves send/recv
        # pairs per worker, so concurrent run() calls (e.g. service job
        # threads sharing one warm engine) must serialize here.  Close
        # takes the same lock, so a shutdown waits for an in-flight run.
        self._lifecycle_lock = threading.RLock()
        self._static_shms: list[shared_memory.SharedMemory] = []
        self._values_shm: shared_memory.SharedMemory | None = None
        self._gathered_shm: shared_memory.SharedMemory | None = None
        self._shadow_shm: shared_memory.SharedMemory | None = None
        self._gathered: np.ndarray | None = None
        self._shadow: np.ndarray | None = None
        self._hist: np.ndarray | None = None
        self._shard_senders: list[np.ndarray] | None = None
        self._shard_mode: str | None = None
        self._participants: tuple[int, ...] = ()
        self._generation = 0
        self._conns = []
        self._procs = []

        try:
            if recorder is not None:
                recorder.open(num_workers)
            spec = {
                "num_vertices": n,
                "num_arcs": graph.num_arcs,
                "directed": graph.directed,
                "sorted_adjacency": graph.sorted_adjacency,
                "wire": wire,
                "flightrec": (
                    recorder.worker_spec() if recorder is not None else None
                ),
                "row_ptr": self._share(graph.row_ptr),
                "col_idx": self._share(graph.col_idx),
                "weights": (
                    self._share(graph.weights)
                    if graph.weights is not None
                    else None
                ),
                "arc_sources": self._share(graph.arc_sources()),
            }
            hist_shm = _new_block(num_workers * n * 8)
            self._static_shms.append(hist_shm)
            spec["hist"] = hist_shm.name
            self._hist = np.ndarray(
                (num_workers, n), dtype=np.int64, buffer=hist_shm.buf
            )
            for w in range(num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, dict(spec, worker_index=w)),
                    name=f"bsp-shard-{w}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            if recorder is not None:
                self._watchdog = StallWatchdog(
                    recorder,
                    stall_timeout=self.stall_timeout,
                    on_stall=self._on_watchdog_stall,
                )
                self._watchdog.start()
        except Exception:
            self.close()
            raise

    # -- shared-memory helpers ------------------------------------------
    def _share(self, array: np.ndarray) -> str:
        """Copy ``array`` into a new shared block; return its name."""
        shm = _new_block(array.nbytes)
        self._static_shms.append(shm)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return shm.name

    def _release_run_blocks(self) -> None:
        # Drop this engine's views first so close() can release the
        # mapping (external views merely defer the memory reclaim).
        self.values = np.empty(0)
        self._gathered = None
        self._shadow = None
        _release_block(self._values_shm)
        _release_block(self._gathered_shm)
        _release_block(self._shadow_shm)
        self._values_shm = None
        self._gathered_shm = None
        self._shadow_shm = None

    # -- pool plumbing ---------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")

    def _exchange(
        self, tasks: dict[int, tuple], phase: str | None = None
    ) -> dict[int, tuple]:
        """Send one task per worker, collect one reply per worker.

        With telemetry enabled and a ``phase`` name given, the exchange
        is recorded as one ``"barrier"`` span on the main track plus a
        per-worker busy span on each worker's track (anchored to end at
        the parent's receive, with the duration the worker measured),
        and per-worker busy/wait/peak-RSS counters.  Wait time is the
        barrier window minus the worker's busy time — the skew the
        balanced partition policies exist to shrink.  Workers append
        ``(busy_ns, peak_rss_bytes)`` to every "ok" reply.

        Every exchange also totals its frame bytes (both directions)
        into :attr:`pipe_bytes` and, when recorded, the per-superstep
        ``pipe_bytes`` counter; under the packed wire the pickled
        equivalent is sampled as ``pipe_bytes_legacy``.
        """
        tel = self.telemetry
        wire = self._wire
        record = tel.enabled and phase is not None
        count_legacy = record and self.wire_format == "packed"
        nbytes = 0
        legacy_bytes = 0
        # Freeze the barrier's identity before any pipe traffic: this is
        # what a postmortem bundle reports as "where the run died".
        self._last_barrier = {
            "phase": phase or "control",
            "superstep": int(self._tel_superstep),
            "generation": int(self._generation),
            "workers": sorted(tasks),
            "wall_time": time.time(),
        }
        t0 = tel.now()
        for w, payload in tasks.items():
            nbytes += wire.send(self._conns[w], payload)
            if count_legacy:
                legacy_bytes += legacy_frame_size(payload)
        replies: dict[int, tuple] = {}
        errors: list[tuple[int, str]] = []
        for w in tasks:
            try:
                reply, reply_bytes = self._recv_frame(w)
            except (EOFError, OSError):
                errors.append((w, "worker process died"))
                continue
            nbytes += reply_bytes
            if reply[0] == "error":
                errors.append((w, reply[1]))
            else:
                replies[w] = reply
                if count_legacy:
                    legacy_bytes += legacy_frame_size(reply)
                if record:
                    t_recv = tel.now()
                    busy = int(reply[-2])
                    tel.add_span(
                        phase,
                        t_recv - busy,
                        t_recv,
                        category="worker",
                        track=worker_track(w),
                        superstep=self._tel_superstep,
                        worker=w,
                    )
        self.pipe_bytes += nbytes
        if errors:
            detail = "\n".join(
                f"[shard worker {w}] {text}" for w, text in errors
            )
            crashed = any(
                text == "worker process died" for _, text in errors
            )
            path = self._dump_postmortem(
                reason="worker_crash" if crashed else "worker_error",
                error=detail,
            )
            raise ShardedWorkerError(
                f"{len(errors)} shard worker(s) failed:\n{detail}",
                worker_tracebacks=dict(errors),
                postmortem_path=path,
            )
        if phase is not None and len(replies) >= 2:
            # Straggler classification: the BSP model prices a superstep
            # by its slowest worker, so the slowest-vs-median gap is the
            # time the balanced-partition assumption failed to deliver.
            skew_ns, stragglers = straggler_skew_ns(
                int(reply[-2]) for reply in replies.values()
            )
            self.superstep_skew_seconds = skew_ns / 1e9
            self._skew_samples.append(skew_ns / 1e9)
            if record:
                tel.counter(
                    "straggler_skew_ns",
                    skew_ns,
                    superstep=self._tel_superstep,
                )
                if stragglers:
                    tel.counter(
                        "straggler_count",
                        stragglers,
                        superstep=self._tel_superstep,
                    )
        if record:
            t1 = tel.now()
            tel.add_span(
                "barrier",
                t0,
                t1,
                category="phase",
                superstep=self._tel_superstep,
                phase=phase,
                workers=len(tasks),
            )
            tel.counter(
                "pipe_bytes", nbytes, superstep=self._tel_superstep
            )
            if count_legacy:
                tel.counter(
                    "pipe_bytes_legacy",
                    legacy_bytes,
                    superstep=self._tel_superstep,
                )
            for w, reply in replies.items():
                busy = int(reply[-2])
                tel.counter(
                    "worker_busy_ns",
                    busy,
                    track=worker_track(w),
                    superstep=self._tel_superstep,
                )
                tel.counter(
                    "worker_wait_ns",
                    max((t1 - t0) - busy, 0),
                    track=worker_track(w),
                    superstep=self._tel_superstep,
                )
                rss = int(reply[-1])
                if rss:
                    tel.counter(
                        "worker_peak_rss_bytes",
                        rss,
                        track=worker_track(w),
                        superstep=self._tel_superstep,
                    )
        return replies

    def _recv_frame(self, w: int) -> tuple[Any, int]:
        """Receive one frame from worker ``w``, bounded by the stall deadline.

        Without a ``stall_timeout`` this is the plain blocking receive.
        With one, the wait polls: a dead worker raises :class:`EOFError`
        (after draining any reply already in the pipe), and a silent
        worker — no flight-recorder event within the deadline, or past
        the wall deadline when no recorder is attached — raises
        :class:`WorkerStallError` with a postmortem bundle on disk.
        The ring age is the authority when available: a worker grinding
        through a huge shard keeps itself alive with progress ticks,
        while one wedged *anywhere* (even stopped before reading the
        command) goes silent and trips the deadline.
        """
        conn = self._conns[w]
        timeout = self.stall_timeout
        if timeout is None:
            return self._wire.recv(conn)
        recorder = self.flight_recorder
        deadline = time.monotonic() + timeout
        while not conn.poll(0.05):
            if not self._procs[w].is_alive() and not conn.poll(0):
                raise EOFError(f"shard worker {w} exited")
            age = (
                recorder.seconds_since_last_event(w)
                if recorder is not None and recorder.is_open
                else None
            )
            stalled = (
                age > timeout
                if age is not None
                else time.monotonic() > deadline
            )
            if stalled:
                self._raise_stall(w, age if age is not None else timeout)
        return self._wire.recv(conn)

    def _raise_stall(self, w: int, age: float) -> None:
        self.stall_detected = True
        self.stall_events += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "stall_detected",
                1,
                track=worker_track(w),
                superstep=self._tel_superstep,
            )
        message = (
            f"shard worker {w} stalled: no progress for {age:.3f}s "
            f"(stall_timeout={self.stall_timeout}s)"
        )
        path = self._dump_postmortem(reason="stall", error=message)
        raise WorkerStallError(message, worker=w, postmortem_path=path)

    def _on_watchdog_stall(self, w: int, age: float) -> None:
        """Watchdog-thread edge callback: flag without raising.

        The authoritative raise happens in :meth:`_recv_frame` on the
        thread that owns the run; the watchdog only latches the flag so
        health endpoints see the stall even between barriers.
        """
        self.stall_detected = True
        self.stall_events += 1

    def _dump_postmortem(
        self, *, reason: str, error: str | None = None
    ) -> Path | None:
        """Write a postmortem bundle; None when no recorder is attached."""
        recorder = self.flight_recorder
        if recorder is None or not recorder.is_open:
            return None
        try:
            return recorder.dump_postmortem(
                reason=reason,
                error=error,
                engine=self._engine_info(),
                last_barrier=dict(self._last_barrier),
                partition=self._partition_info(),
                workers=[
                    {
                        "worker": w,
                        "pid": proc.pid,
                        "alive": proc.is_alive(),
                        "exitcode": proc.exitcode,
                    }
                    for w, proc in enumerate(self._procs)
                ],
            )
        except OSError:  # pragma: no cover - unwritable results dir
            return None

    def _engine_info(self) -> dict:
        return {
            "pid": os.getpid(),
            "engine": type(self).__name__,
            "num_workers": self.num_workers,
            "wire": self.wire_format,
            "check": self.check,
            "stall_timeout": self.stall_timeout,
            "num_vertices": int(self.graph.num_vertices),
            "num_arcs": int(self.graph.num_arcs),
        }

    def _partition_info(self) -> dict:
        info = {
            "policy": self.partition_policy,
            "num_workers": self.num_workers,
            "shard_sizes": [int(shard.size) for shard in self.shards],
        }
        # The full map is O(vertices); embed it only when small enough
        # to keep bundles readable, the shard sizes always.
        if self.assignment.size <= 4096:
            info["assignment"] = self.assignment.tolist()
        return info

    # -- live introspection ---------------------------------------------
    def worker_status(self) -> list[dict]:
        """Per-worker liveness + flight-recorder status rows.

        One dict per worker with ``pid``/``alive`` from the process
        table and, when the recorder is attached, the decoded ring view
        (phase, superstep, progress ratio, rss, last-event age).  This
        is what ``GET /debug/workers`` and ``repro top`` render.
        """
        recorder = self.flight_recorder
        now_ns = time.monotonic_ns()
        rows = []
        for w in range(self.num_workers):
            if recorder is not None and recorder.is_open:
                row = recorder.status(w).to_dict(now_ns=now_ns)
            else:
                row = {"worker": w}
            proc = self._procs[w] if w < len(self._procs) else None
            row["pid"] = proc.pid if proc is not None else None
            row["alive"] = bool(proc is not None and proc.is_alive())
            rows.append(row)
        return rows

    def drain_skew_samples(self) -> list[float]:
        """Pop and return the per-barrier skew samples (seconds) queued
        since the last drain — the service feeds these to the
        ``repro_superstep_skew_seconds`` histogram on scrape."""
        out: list[float] = []
        while True:
            try:
                out.append(self._skew_samples.popleft())
            except IndexError:
                return out

    def _split(self, vertices: np.ndarray) -> list[np.ndarray]:
        """Partition a sorted vertex set along the machine assignment."""
        owners = self.assignment[vertices]
        return [
            vertices[owners == w] for w in range(self.num_workers)
        ]

    def _merged_hist(self, participants: tuple[int, ...]) -> np.ndarray:
        """Sum the participating workers' per-destination histograms."""
        if not participants:
            return np.zeros(self.graph.num_vertices, dtype=np.int64)
        return self._hist[list(participants)].sum(axis=0)

    def _audit_write_sets(
        self,
        snapshot: np.ndarray,
        participants: tuple[int, ...],
        superstep: int,
    ) -> None:
        """Diff worker shadow copies against the pre-gather snapshot.

        ``arc_payload`` must treat the shared ``values`` array as
        read-only: workers run concurrently over the same block, so any
        write is scheduling-dependent.  Overlapping writes that disagree
        raise :class:`ShardedWriteRaceError`; writes that never collide
        (or collide with equal values) are still a hazard — they only
        stayed benign for this partition — and emit a RuntimeWarning.
        """
        shadow = self._shadow
        assert shadow is not None
        is_float = np.issubdtype(snapshot.dtype, np.floating)
        write_masks: dict[int, np.ndarray] = {}
        for w in participants:
            changed = shadow[w] != snapshot
            if is_float:  # NaN-to-NaN is not a write
                changed &= ~(np.isnan(shadow[w]) & np.isnan(snapshot))
            if changed.any():
                write_masks[w] = changed
        if not write_masks:
            return
        writers = np.zeros(snapshot.shape[0], dtype=np.int64)
        for mask in write_masks.values():
            writers += mask
        conflicts: list[tuple[int, dict[int, Any]]] = []
        for vertex in np.flatnonzero(writers >= 2).tolist():
            values_by_worker = {
                w: shadow[w][vertex].item()
                for w, mask in write_masks.items()
                if mask[vertex]
            }
            distinct = {
                repr(v) for v in values_by_worker.values()
            }
            if len(distinct) > 1:
                conflicts.append((vertex, values_by_worker))
        if conflicts:
            shown = ", ".join(
                f"vertex {vertex}: " + ", ".join(
                    f"worker {w} wrote {value!r}"
                    for w, value in sorted(values_by_worker.items())
                )
                for vertex, values_by_worker in conflicts[:10]
            )
            raise ShardedWriteRaceError(
                f"superstep {superstep}: {len(conflicts)} vertex/vertices "
                "written concurrently with differing values by "
                f"{len(write_masks)} worker(s) [{shown}]",
                superstep=superstep,
                conflicts=conflicts,
            )
        counts = ", ".join(
            f"worker {w}: {int(mask.sum())} vertex/vertices"
            for w, mask in sorted(write_masks.items())
        )
        warnings.warn(
            f"superstep {superstep}: arc_payload wrote to the shared "
            f"values array ({counts}); the hook must be read-only — "
            "these writes happened not to conflict under this "
            "partition, but are scheduling-dependent in unchecked runs",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- engine hooks ----------------------------------------------------
    def _begin_run(
        self, program: DenseVertexProgram, values: np.ndarray
    ) -> None:
        self._check_open()
        n = self.graph.num_vertices
        self._release_run_blocks()
        self._values_shm = _new_block(values.nbytes)
        shared_values = np.ndarray(
            values.shape, dtype=values.dtype, buffer=self._values_shm.buf
        )
        shared_values[...] = values
        # compute() mutates ctx.values in place, so parent-side updates
        # land directly in the block the workers read payloads from.
        self.values = shared_values
        mdtype = np.dtype(program.message_dtype)
        self._gathered_shm = _new_block(self.num_workers * n * mdtype.itemsize)
        self._gathered = np.ndarray(
            (self.num_workers, n), dtype=mdtype, buffer=self._gathered_shm.buf
        )
        shadow_name = None
        if self.check:
            self._shadow_shm = _new_block(
                self.num_workers * n * values.dtype.itemsize
            )
            self._shadow = np.ndarray(
                (self.num_workers, n),
                dtype=values.dtype,
                buffer=self._shadow_shm.buf,
            )
            shadow_name = self._shadow_shm.name
        self._exchange(
            {
                w: (
                    "run",
                    program,
                    self._values_shm.name,
                    values.dtype.str,
                    self._gathered_shm.name,
                    shadow_name,
                )
                for w in range(self.num_workers)
            }
        )

    def _scatter_reset(self) -> None:
        super()._scatter_reset()
        self._shard_senders = None
        self._shard_mode = None
        self._participants = ()

    def _scatter(
        self, program: DenseVertexProgram, new_senders: np.ndarray
    ) -> tuple[int, np.ndarray | None]:
        sent_raw = (
            int(self.graph.degrees()[new_senders].sum())
            if new_senders.size
            else 0
        )
        self._generation += 1
        if not sent_raw:
            self._shard_senders = None
            self._shard_mode = None
            self._participants = ()
            self._pending_raw = 0
            return 0, None
        self._shard_senders = self._split(new_senders)
        self._shard_mode = self._choose_mode(new_senders, sent_raw)
        self._pending_raw = sent_raw
        self._participants = tuple(
            w for w, s in enumerate(self._shard_senders) if s.size
        )
        if self.telemetry.enabled:
            for w, shard in enumerate(self._shard_senders):
                self.telemetry.counter(
                    "shard_senders",
                    int(shard.size),
                    track=worker_track(w),
                    superstep=self._tel_superstep,
                )
        self._exchange(
            {
                w: (
                    "scatter",
                    self._generation,
                    self._shard_senders[w],
                    self._shard_mode,
                )
                for w in self._participants
            },
            phase="scatter",
        )
        return sent_raw, self._merged_hist(self._participants)

    def _gather(
        self,
        program: DenseVertexProgram,
        senders: np.ndarray,
        identity: Any,
    ) -> tuple[Callable[[], np.ndarray], np.ndarray, int]:
        n = self.graph.num_vertices
        mdtype = np.dtype(program.message_dtype)
        if not senders.size:

            def empty_inbox() -> np.ndarray:
                return np.full(n, identity, dtype=mdtype)

            return empty_inbox, np.empty(0, dtype=np.int64), 0

        if self._shard_senders is None:  # resumed run: no prior scatter
            raw = int(self.graph.degrees()[senders].sum())
            self._shard_senders = self._split(senders)
            self._shard_mode = self._choose_mode(senders, raw)
            self._participants = tuple(
                w for w, s in enumerate(self._shard_senders) if s.size
            )
            self._generation += 1
            self._exchange(
                {
                    w: (
                        "scatter",
                        self._generation,
                        self._shard_senders[w],
                        self._shard_mode,
                    )
                    for w in self._participants
                },
                phase="scatter",
            )
            self._pending_raw = raw
            self._pending_hist = self._merged_hist(self._participants)
        if self._pending_hist is None:
            self._pending_hist = self._merged_hist(self._participants)
        raw = self._pending_raw
        receivers = (
            np.flatnonzero(self._pending_hist)
            if raw
            else np.empty(0, dtype=np.int64)
        )
        generation = self._generation
        participants = self._participants
        shard_senders = self._shard_senders
        mode = self._shard_mode
        superstep = self._tel_superstep

        check = self.check

        def inbox() -> np.ndarray:
            snapshot = self.values.copy() if check else None
            replies = self._exchange(
                {
                    w: ("gather", generation, shard_senders[w], mode)
                    for w in participants
                },
                phase="gather",
            )
            if snapshot is not None:
                self._audit_write_sets(snapshot, participants, superstep)
            delivered = sum(int(reply[1]) for reply in replies.values())
            tel = self.telemetry
            gathered = np.full(n, identity, dtype=mdtype)
            # Merge the per-worker partial folds in shard order.  Exact
            # for every idempotent/integer combine; float np.add may
            # differ from the single-pass fold in the last ulp across
            # shard boundaries.
            with tel.span(
                "combine", category="phase", superstep=superstep
            ):
                for w in participants:
                    program.combine(gathered, self._gathered[w], out=gathered)
            if tel.enabled:
                tel.counter(
                    "bytes_delivered",
                    int(delivered) * mdtype.itemsize,
                    superstep=superstep,
                )
            return gathered

        return inbox, receivers, int(raw)

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the worker pool."""
        return self._closed

    @property
    def workers_alive(self) -> int:
        """Shard worker processes currently alive (liveness probe).

        Equals ``num_workers`` on a healthy open engine and 0 after
        :meth:`close`; anything in between means a worker died — the
        service health endpoint surfaces this.
        """
        return sum(1 for proc in self._procs if proc.is_alive())

    def run(self, program: DenseVertexProgram, **kwargs: Any):
        """Execute ``program`` (see :meth:`DenseBSPEngine.run`).

        The engine is reusable: call ``run`` any number of times between
        construction and :meth:`close` — the worker pool and the
        shared-memory CSR stay warm across runs.  Runs are serialized
        with an internal lock so a warm engine can be shared by
        multiple threads.
        """
        with self._lifecycle_lock:
            self._check_open()
            return super().run(program, **kwargs)

    def close(self) -> None:
        """Shut the worker pool down and release all shared memory.

        Idempotent and thread-safe: concurrent calls (and calls racing
        an in-flight :meth:`run`) serialize on the lifecycle lock, and
        every call after the first is a no-op.
        """
        with self._lifecycle_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        # Bounded drain: reuse the watchdog deadline (or a 5s default)
        # per escalation step, so a wedged worker — e.g. one stopped by
        # SIGSTOP, to which SIGTERM is queued but never delivered —
        # cannot hang shutdown.  join → terminate → kill: SIGKILL is the
        # only signal a stopped process cannot ignore.
        drain = self.stall_timeout if self.stall_timeout is not None else 5.0
        for conn in self._conns:
            try:
                self._wire.send(conn, ("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=drain)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=drain)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=drain)
        for conn in self._conns:
            conn.close()
        # Detach the engine's state from shared memory before unlinking
        # so `engine.values` stays readable after close().
        if isinstance(self.values, np.ndarray):
            self.values = self.values.copy()
        self._hist = None
        self._gathered = None
        self._shadow = None
        for shm in (
            self._static_shms
            + [self._values_shm, self._gathered_shm, self._shadow_shm]
        ):
            _release_block(shm)
        self._static_shms = []
        self._values_shm = None
        self._gathered_shm = None
        self._shadow_shm = None
        if self.flight_recorder is not None:
            self.flight_recorder.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ShardedBSPEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
