"""Message buffering between supersteps.

The XMT has "no native support for message features such as enqueueing
and dequeueing" (paper §VII): the runtime builds queues in software, and
every enqueue reserves a slot with an atomic fetch-and-add on the target
queue's tail — the contention source the paper identifies.  The buffer
therefore tracks, besides the messages themselves, the per-destination
enqueue counts that become the cost model's hotspot histogram.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.bsp.combiners import Combiner

__all__ = ["MessageBuffer"]


class MessageBuffer:
    """Accumulates messages sent during a superstep.

    Parameters
    ----------
    num_vertices:
        Id space of valid destinations.
    combiner:
        Optional :class:`~repro.bsp.combiners.Combiner`; when given, each
        destination retains a single folded message.  Note enqueue counts
        still reflect every *sent* message — combining saves memory and
        receive work, not the send-side accounting.
    """

    def __init__(self, num_vertices: int, combiner: Combiner | None = None):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self.combiner = combiner
        self._queues: dict[int, list[Any]] = {}
        self._combined: dict[int, Any] = {}
        self.total_sent = 0
        #: fetch-and-add pressure per destination queue tail
        self.enqueues_per_destination = np.zeros(num_vertices, dtype=np.int64)

    def send(self, sender: int, target: int, message: Any) -> None:
        """Enqueue ``message`` for delivery next superstep."""
        if not 0 <= target < self.num_vertices:
            raise IndexError(
                f"message target {target} out of range [0, {self.num_vertices})"
            )
        self.total_sent += 1
        self.enqueues_per_destination[target] += 1
        if self.combiner is not None:
            if target in self._combined:
                self._combined[target] = self.combiner.combine(
                    self._combined[target], message
                )
            else:
                self._combined[target] = message
        else:
            self._queues.setdefault(target, []).append(message)

    @property
    def is_empty(self) -> bool:
        return self.total_sent == 0

    def destinations(self) -> Iterable[int]:
        """Vertices with at least one waiting message."""
        source = self._combined if self.combiner is not None else self._queues
        return source.keys()

    def messages_for(self, vertex: int) -> list[Any]:
        """Messages waiting for ``vertex`` (empty list when none).

        The returned list is a fresh copy each call: a vertex program may
        mutate its ``messages`` argument (sort, pop, append...) without
        corrupting the underlying queue.
        """
        if self.combiner is not None:
            if vertex in self._combined:
                return [self._combined[vertex]]
            return []
        queue = self._queues.get(vertex)
        return list(queue) if queue else []

    @classmethod
    def restore(
        cls,
        num_vertices: int,
        combiner: Combiner | None,
        pending: Iterable[tuple[int, Any]],
        *,
        total_sent: int | None = None,
        enqueues_per_destination: np.ndarray | None = None,
    ) -> "MessageBuffer":
        """Rebuild a buffer from checkpointed state.

        Replaying ``pending`` through :meth:`send` reconstructs the
        message *contents*, but with a combiner the replay only sees the
        folded messages, so the send-side counters (``total_sent`` and
        the per-destination enqueue histogram) would undercount the raw
        traffic.  When the exact counters were checkpointed they are
        restored on top of the replay — after validation: the histogram
        must have exactly one entry per vertex and the restored
        ``total_sent`` must cover the replayed deliveries, otherwise a
        truncated or corrupt checkpoint would silently misalign the
        hotspot counters against the vertex id space.
        """
        buf = cls(num_vertices, combiner)
        for target, message in pending:
            buf.send(-1, target, message)
        if total_sent is not None:
            total_sent = int(total_sent)
            if total_sent < buf.total_delivered:
                raise ValueError(
                    f"corrupt checkpoint counters: total_sent {total_sent} "
                    f"is less than the {buf.total_delivered} pending "
                    "deliveries it must cover"
                )
            buf.total_sent = total_sent
        if enqueues_per_destination is not None:
            hist = np.asarray(enqueues_per_destination, dtype=np.int64)
            if hist.shape != (num_vertices,):
                raise ValueError(
                    "corrupt checkpoint counters: enqueues_per_destination "
                    f"has shape {hist.shape}, expected ({num_vertices},) — "
                    "one enqueue count per vertex"
                )
            if hist.size and hist.min() < 0:
                raise ValueError(
                    "corrupt checkpoint counters: negative "
                    "enqueues_per_destination entry"
                )
            buf.enqueues_per_destination = hist.copy()
        return buf

    @property
    def total_delivered(self) -> int:
        """Messages that will be handed to ``compute`` calls (combined
        messages count once)."""
        if self.combiner is not None:
            return len(self._combined)
        return self.total_sent

    def all_messages(self) -> list[tuple[int, Any]]:
        """Flatten the buffer into (target, message) pairs.

        Used by checkpointing to capture in-flight messages; replaying
        the pairs through :meth:`send` reconstructs an equivalent buffer
        (combined buffers reconstruct their folded form).
        """
        out: list[tuple[int, Any]] = []
        if self.combiner is not None:
            for target, message in self._combined.items():
                out.append((target, message))
        else:
            for target, queue in self._queues.items():
                out.extend((target, message) for message in queue)
        return out

    def max_queue_pressure(self) -> int:
        """Largest per-destination enqueue count (hotspot depth)."""
        if self.num_vertices == 0:
            return 0
        return int(self.enqueues_per_destination.max(initial=0))
