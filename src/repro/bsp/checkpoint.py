"""Checkpointing and recovery for the BSP engine.

Pregel "solve[s] a graph query in a fault-tolerant manner across
hundreds or thousands of distributed workstations" (paper §II) by
checkpointing vertex state and in-flight messages at superstep
boundaries and replaying from the last checkpoint after a failure.  The
superstep barrier makes this trivially consistent: a checkpoint taken
*between* supersteps captures the complete computation state.

:class:`Checkpoint` is that state; :class:`CheckpointStore` keeps the
most recent checkpoints (in memory or on disk via
:func:`save_checkpoint` / :func:`load_checkpoint`), and
``BSPEngine.run(checkpoint_every=k, checkpoint_store=store)`` snapshots
every ``k`` supersteps.  After a crash, ``run(resume_from=ckpt)``
continues from the snapshot and produces results identical to an
uninterrupted run (asserted by the failure-injection tests).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "save_checkpoint",
    "load_checkpoint",
]

_CHECKPOINT_FORMAT_VERSION = 2

#: Fields added after format version 1; absent on old pickles and filled
#: with ``None`` (their "not recorded" value) at load time.
_V2_FIELDS = ("buffer_total_sent", "buffer_enqueues", "dense_senders")


@dataclass
class Checkpoint:
    """Complete BSP computation state at a superstep boundary.

    ``superstep`` is the next superstep to execute; ``pending`` holds the
    messages sent during superstep ``superstep - 1`` awaiting delivery.
    """

    superstep: int
    values: list[Any]
    halted: np.ndarray
    #: (target, message) pairs awaiting delivery.
    pending: list[tuple[int, Any]]
    #: Aggregator values visible to the next superstep.
    aggregators: dict[str, Any] = field(default_factory=dict)
    #: Result histories accumulated so far.
    active_history: list[int] = field(default_factory=list)
    message_history: list[int] = field(default_factory=list)
    aggregator_history: dict[str, list[Any]] = field(default_factory=dict)
    #: Exact send-side counters of the pending buffer (reference engine).
    #: With a combiner, ``pending`` holds only the *folded* messages, so a
    #: resume that replayed them through ``send`` would undercount
    #: ``total_sent`` / the enqueue histogram; these fields preserve the
    #: raw accounting.  ``None`` when not recorded (legacy checkpoints).
    buffer_total_sent: int | None = None
    buffer_enqueues: np.ndarray | None = None
    #: Dense-engine pending messages: the sender frontier whose out-arcs
    #: carry the in-flight messages (payloads are recomputed from
    #: ``values`` on resume).  ``None`` for reference-engine checkpoints.
    dense_senders: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.superstep < 0:
            raise ValueError("superstep must be non-negative")
        self.halted = np.asarray(self.halted, dtype=bool)
        if self.halted.size != len(self.values):
            raise ValueError("halted mask must parallel values")
        if self.buffer_enqueues is not None:
            self.buffer_enqueues = np.asarray(
                self.buffer_enqueues, dtype=np.int64
            )
        if self.dense_senders is not None:
            self.dense_senders = np.asarray(
                self.dense_senders, dtype=np.int64
            )


class CheckpointStore:
    """Keeps the ``retain`` most recent checkpoints in memory."""

    def __init__(self, retain: int = 2):
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.retain = retain
        self._checkpoints: list[Checkpoint] = []

    def save(self, checkpoint: Checkpoint) -> None:
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self.retain:
            del self._checkpoints[: -self.retain]

    @property
    def latest(self) -> Checkpoint | None:
        return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        return len(self._checkpoints)

    def clear(self) -> None:
        self._checkpoints.clear()


def save_checkpoint(checkpoint: Checkpoint, path: str | os.PathLike) -> None:
    """Persist a checkpoint to disk (pickle with a version header)."""
    payload = {
        "format_version": _CHECKPOINT_FORMAT_VERSION,
        "checkpoint": checkpoint,
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Only load files you trust — this uses pickle.
    """
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    version = payload.get("format_version")
    if version not in (1, _CHECKPOINT_FORMAT_VERSION):
        raise ValueError(f"unsupported checkpoint version {version!r}")
    checkpoint = payload["checkpoint"]
    if version == 1:
        for name in _V2_FIELDS:
            if not hasattr(checkpoint, name):
                setattr(checkpoint, name, None)
    return checkpoint
