"""Dense (array-mode) execution of BSP vertex programs.

The reference :class:`~repro.bsp.engine.BSPEngine` interprets a
:class:`~repro.bsp.vertex.VertexProgram` one vertex at a time in pure
Python — the readable rendition of the paper's pseudocode, but far too
slow for reproduction-scale graphs.  This module adds the fast path: a
:class:`DenseVertexProgram` expresses the *whole superstep* as NumPy
array kernels, and :class:`DenseBSPEngine` executes it with a
combiner-fused scatter/gather:

* **scatter** — the end of a superstep designates a set of *senders*;
  every sender floods one message along each of its out-arcs (the
  flooding idiom all of the paper's algorithms share).  The messages are
  never materialized as Python objects: the arc selection out of the
  sender set *is* the message queue.  The selection itself is
  frontier-adaptive (:mod:`repro.bsp.frontier`): a sparse arc-index
  array while the frontier is small, a boolean mask once the
  frontier-incident arc count crosses the GBBS-style ``m / k``
  threshold, so low-activity supersteps (BFS tails, CC late rounds,
  SSSP settling) stop paying ``O(n + m)`` sweeps.
* **gather** — the per-arc payloads are produced in one vectorized call
  and folded per destination with a NumPy ufunc (``np.minimum.at`` for
  label/distance flooding, ``np.add.at`` for rank/notice accumulation).
  Delivery is *lazy*: the modeled message accounting (sent/received
  counts, receiver set, per-destination enqueue histogram) is always
  computed — it is what the paper's Fig. 2/Fig. 3 reproductions price —
  but the payload gather + combine fold only executes if the program
  actually reads ``ctx.messages``.  Programs that can update state from
  the receiver set alone (direction-optimizing BFS) skip the delivered
  work entirely while their modeled counts stay bit-identical.

The engine mirrors the reference engine's control flow step for step —
active-set selection (receivers ∪ not-halted), vote-to-halt semantics,
termination, checkpoint cadence, aggregator visibility — and charges
identical superstep accounting through the shared
:func:`~repro.bsp.instrumentation.record_superstep`, so a dense program
produces a :class:`~repro.bsp.engine.BSPResult` with bit-identical
values, superstep counts, per-superstep active/message counts, and
work-trace regions to its per-vertex twin (asserted by the equivalence
suite in ``tests/test_dense_engine.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable

import numpy as np

from repro.bsp._scatter import enqueue_histogram
from repro.bsp.aggregators import Aggregator
from repro.bsp.checkpoint import Checkpoint, CheckpointStore
from repro.bsp.engine import BSPResult
from repro.bsp.frontier import (
    DEFAULT_FRONTIER_POLICY,
    DENSE,
    FrontierPolicy,
    select_arcs,
)
from repro.bsp.instrumentation import record_superstep
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts

__all__ = [
    "DenseBSPEngine",
    "DenseSuperstepContext",
    "DenseVertexProgram",
]


class DenseSuperstepContext:
    """Whole-superstep view handed to :meth:`DenseVertexProgram.compute`.

    Where :class:`~repro.bsp.vertex.VertexContext` exposes one vertex,
    this context exposes the entire superstep as arrays: the compute set,
    the receivers, and the combiner-folded incoming messages.  Instances
    are valid only for the duration of the ``compute`` call.
    """

    __slots__ = (
        "_engine",
        "superstep",
        "active",
        "receivers",
        "_inbox",
        "_messages",
    )

    def __init__(
        self,
        engine: "DenseBSPEngine",
        superstep: int,
        active: np.ndarray,
        receivers: np.ndarray,
        inbox: Callable[[], np.ndarray] | None,
    ):
        self._engine = engine
        #: Current superstep number (0-based).
        self.superstep = superstep
        #: Sorted vertex ids computing this superstep (Pregel's active
        #: set: message receivers plus vertices that did not halt).
        self.active = active
        #: Sorted vertex ids with at least one incoming message.
        self.receivers = receivers
        self._inbox = inbox
        self._messages: np.ndarray | None = None

    # -- state ---------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The input graph (read-only CSR)."""
        return self._engine.graph

    @property
    def num_vertices(self) -> int:
        """Vertex count of the input graph."""
        return self._engine.graph.num_vertices

    @property
    def values(self) -> np.ndarray:
        """Per-vertex state array (mutate in place to update state)."""
        return self._engine.values

    @property
    def messages(self) -> np.ndarray | None:
        """Length-``num_vertices`` array of combiner-folded incoming
        messages (``combine_identity`` where nothing arrived); ``None``
        in superstep 0.

        Delivery is lazy: the payload gather + combine fold (and, on the
        sharded engine, the gather pipe exchange) run on first access
        and the result is cached for the rest of the superstep.  A
        program that never reads this property skips the delivered work
        entirely; the modeled message counts are unaffected.  Payloads
        are evaluated from the *current* ``values``, so read
        ``messages`` before mutating ``values``.
        """
        if self._messages is None and self._inbox is not None:
            self._messages = self._inbox()
            self._inbox = None
        return self._messages

    # -- control -------------------------------------------------------
    def vote_to_halt(self, vertices: np.ndarray | None = None) -> None:
        """Deactivate ``vertices`` (default: every computing vertex)
        until a message re-activates them."""
        if vertices is None:
            self._engine.halted[self.active] = True
        else:
            self._engine.halted[np.asarray(vertices, dtype=np.int64)] = True

    # -- telemetry ------------------------------------------------------
    def counter(self, name: str, value: int) -> None:
        """Record a program-side telemetry counter for this superstep.

        No-op when telemetry is disabled; never affects results or the
        modeled work trace.  Used e.g. by direction-optimizing BFS to
        report its ``direction`` and ``edges_scanned`` per superstep.
        """
        tel = self._engine.telemetry
        if tel.enabled:
            tel.counter(name, int(value), superstep=self.superstep)

    # -- aggregators ---------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a named aggregator (visible next superstep).

        Dense programs contribute their already-reduced superstep total
        in one call instead of once per vertex.
        """
        self._engine.aggregate(name, value)

    def aggregated(self, name: str) -> Any:
        """Read the aggregator value from the *previous* superstep."""
        return self._engine.aggregated(name)


class DenseVertexProgram(ABC):
    """A vertex program expressed as whole-superstep array kernels.

    Message model: returning an array of vertex ids from :meth:`compute`
    designates those vertices as *senders* — each floods one message
    along every out-arc, delivered next superstep.  The engine produces
    the per-arc payloads via :meth:`arc_payload` and folds messages
    aimed at the same destination with :attr:`combine`, so a program only
    ever sees the reduction — exactly what a
    :class:`~repro.bsp.combiners.Combiner` would hand its per-vertex
    twin.  Programs whose ``compute`` consumes messages one by one (and
    not through an associative fold) do not fit the dense mode; run them
    on the reference engine.

    ``ctx.messages`` is materialized lazily from the current ``values``
    on first access; a ``compute`` that reads it must do so *before*
    mutating ``ctx.values`` (all in-tree programs read messages first).
    """

    #: Per-destination delivery fold: a NumPy ufunc supporting ``.at``
    #: (``np.minimum`` for label/distance flooding, ``np.add`` for
    #: rank/notice accumulation).
    combine: np.ufunc = np.minimum
    #: Fill value for destinations that received no message (the fold's
    #: identity).  Subclasses must override.
    combine_identity: Any = None
    #: dtype of the gathered message array.
    message_dtype: Any = np.float64

    @abstractmethod
    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        """Per-vertex state array before superstep 0."""

    @abstractmethod
    def arc_payload(
        self, graph: CSRGraph, values: np.ndarray, selection: np.ndarray
    ) -> np.ndarray:
        """Message values carried by the selected arcs.

        ``selection`` picks every out-arc of the previous superstep's
        senders out of the graph's arc array, as either a boolean mask
        or a sorted int64 index array (:mod:`repro.bsp.frontier` decides
        per superstep); both index arc-parallel arrays identically, so
        implementations must treat it as an opaque fancy index.  The
        result must be parallel to ``graph.col_idx[selection]``.
        Payloads are evaluated lazily at delivery time, which is
        equivalent to eager sending because a sender's state cannot
        change between the end of the superstep that sent and the
        delivery barrier.
        """

    @abstractmethod
    def compute(self, ctx: DenseSuperstepContext) -> np.ndarray | None:
        """Execute one whole superstep.

        Update ``ctx.values`` in place for the vertices in ``ctx.active``,
        vote halts via ``ctx.vote_to_halt``, and return the sender set for
        the next superstep (``None`` or an empty array to send nothing).
        The sender set must be sorted ascending and duplicate-free (the
        engine normalizes defensively, at a cost).
        """


class DenseBSPEngine:
    """Runs :class:`DenseVertexProgram` s over one read-only graph.

    Drop-in sibling of :class:`~repro.bsp.engine.BSPEngine`: same
    constructor shape, same ``run`` signature, same
    :class:`~repro.bsp.engine.BSPResult`, same checkpoint/resume
    contract — but executes supersteps as vectorized array kernels, which
    is orders of magnitude faster on reproduction-scale graphs (see
    ``benchmarks/bench_engine_modes.py``).

    Parameters
    ----------
    graph:
        The input graph; vertices are actors, arcs carry messages.
    combine_messages:
        Accounting switch for the combiner ablation: when True, queue
        traffic is charged *post-fold* — one materialized message per
        destination per superstep (a Pregel sender-side combiner) —
        instead of the paper runtime's every-message-materialized
        accounting.  Delivered values are identical either way; only
        ``messages_per_superstep`` / ``received`` and the work trace
        change.  (The reference engine's ``combiner`` folds *after* the
        enqueue accounting, so its counts equal the default mode here.)
    frontier_policy:
        Sparse/dense arc-selection switching rule
        (:class:`~repro.bsp.frontier.FrontierPolicy`; default: the
        GBBS-style ``m / k`` heuristic).  Affects only execution speed —
        results, counts, and traces are representation-independent.
        The per-superstep decision is recorded as the ``frontier_mode``
        telemetry counter (0 sparse, 1 dense).
    aggregators:
        Named global aggregators available to the program.
    costs:
        Kernel accounting constants for the work trace.
    telemetry:
        Optional :class:`~repro.telemetry.core.Telemetry` receiving
        wall-clock spans (superstep/gather/compute/scatter, plus
        ``deliver`` when a program materializes its inbox) and counter
        samples.  Defaults to the no-op
        :data:`~repro.telemetry.core.NULL_TELEMETRY`; recording never
        alters results or the modeled work trace.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        combine_messages: bool = False,
        frontier_policy: FrontierPolicy | None = None,
        aggregators: dict[str, Aggregator] | None = None,
        costs: KernelCosts = DEFAULT_COSTS,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.graph = graph
        self.combine_messages = combine_messages
        self.frontier_policy = (
            DEFAULT_FRONTIER_POLICY if frontier_policy is None else frontier_policy
        )
        self.costs = costs
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        #: Superstep the telemetry hooks attribute phase spans to.
        self._tel_superstep = -1
        self._aggregators = dict(aggregators or {})
        # Mutable run state (rebuilt per run):
        self.values: np.ndarray = np.empty(0)
        self.halted: np.ndarray = np.zeros(0, dtype=bool)
        self._agg_current: dict[str, Any] = {}
        self._agg_visible: dict[str, Any] = {}
        # Pending-scatter state shared with the gather of the next
        # superstep (see _scatter/_gather): the arc selection (mask or
        # index array), the raw flood size, and the enqueue histogram.
        self._pending_sel: np.ndarray | None = None
        self._pending_raw: int = 0
        self._pending_hist: np.ndarray | None = None

    # -- aggregator plumbing (called through DenseSuperstepContext) ----
    def aggregate(self, name: str, value: Any) -> None:
        """Fold one contribution into the named aggregator."""
        if name not in self._aggregators:
            raise KeyError(f"no aggregator named {name!r}")
        agg = self._aggregators[name]
        self._agg_current[name] = agg.reduce(self._agg_current[name], value)

    def aggregated(self, name: str) -> Any:
        """Aggregator value visible this superstep (previous superstep's
        reduction)."""
        if name not in self._aggregators:
            raise KeyError(f"no aggregator named {name!r}")
        return self._agg_visible[name]

    # -- main loop ------------------------------------------------------
    def run(
        self,
        program: DenseVertexProgram,
        *,
        initial_active: Iterable[int] | None = None,
        max_supersteps: int = 10_000,
        trace_label: str = "bsp",
        checkpoint_every: int | None = None,
        checkpoint_store: "CheckpointStore | None" = None,
        resume_from: "Checkpoint | None" = None,
    ) -> BSPResult:
        """Execute ``program`` to termination.

        Semantics are identical to :meth:`BSPEngine.run`; see there for
        the meaning of every parameter.  Checkpoints written by this
        engine store the pending messages densely (the sender frontier)
        and can only be resumed by a ``DenseBSPEngine``; program-local
        state outside the engine-owned ``values`` array (e.g. a
        per-superstep frontier history kept on the program object) is
        *not* checkpointed.
        """
        if max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if checkpoint_store is None:
                raise ValueError(
                    "checkpoint_every requires a checkpoint_store"
                )
        identity = program.combine_identity
        if identity is None:
            raise ValueError(
                "dense program must define combine_identity "
                "(the fill value of the gathered message array)"
            )
        graph = self.graph
        n = graph.num_vertices
        tracer = Tracer(label=trace_label)
        result = BSPResult(values=[], num_supersteps=0)

        if resume_from is not None:
            ck = resume_from
            if len(ck.values) != n:
                raise ValueError(
                    "checkpoint does not match this graph's vertex count"
                )
            if ck.dense_senders is None:
                raise ValueError(
                    "checkpoint was written by the reference BSPEngine; "
                    "resume it there"
                )
            values0 = np.array(ck.values)
            self.halted = np.asarray(ck.halted, dtype=bool).copy()
            senders = np.asarray(ck.dense_senders, dtype=np.int64).copy()
            self._agg_visible = dict(ck.aggregators)
            for name, agg in self._aggregators.items():
                self._agg_visible.setdefault(name, agg.identity())
            result.active_per_superstep = list(ck.active_history)
            result.messages_per_superstep = list(ck.message_history)
            result.aggregator_history = {
                name: list(vals)
                for name, vals in ck.aggregator_history.items()
            }
            for name in self._aggregators:
                result.aggregator_history.setdefault(name, [])
            active0 = np.empty(0, dtype=np.int64)  # unused on resume
            superstep = ck.superstep
        else:
            values0 = np.asarray(program.initial_values(graph))
            self.halted = np.zeros(n, dtype=bool)
            senders = np.empty(0, dtype=np.int64)
            self._agg_visible = {
                name: agg.identity()
                for name, agg in self._aggregators.items()
            }
            if initial_active is None:
                active0 = np.arange(n, dtype=np.int64)
            else:
                active0 = np.unique(
                    np.asarray(list(initial_active), dtype=np.int64)
                )
                if active0.size and (
                    active0[0] < 0 or active0[-1] >= n
                ):
                    raise IndexError("initial vertex out of range")
                self.halted[:] = True
                self.halted[active0] = False
            for name in self._aggregators:
                result.aggregator_history[name] = []
            superstep = 0

        self._begin_run(program, values0)
        # The pending-scatter state (arc selection / enqueue histogram of
        # the current senders) is carried across supersteps so scatter
        # (enqueue accounting) and gather (delivery) share one selection
        # computation and the receiver set falls out of the histogram
        # instead of a sort.  It is empty right after a resume and is
        # recomputed from the senders.
        self._scatter_reset()
        tel = self.telemetry
        while superstep < max_supersteps:
            if (
                checkpoint_every is not None
                and superstep > 0
                and superstep % checkpoint_every == 0
                and (resume_from is None or superstep > resume_from.superstep)
            ):
                checkpoint_store.save(self._snapshot(superstep, senders, result))
            self._tel_superstep = superstep
            step_start = tel.now()
            if superstep == 0:
                compute_set = active0
                receivers = np.empty(0, dtype=np.int64)
                inbox = None
                received = 0
            else:
                with tel.span(
                    "gather", category="phase", superstep=superstep
                ):
                    inbox, receivers, raw_received = self._gather(
                        program, senders, identity
                    )
                if self.halted.all():
                    compute_set = receivers
                else:
                    compute_set = np.union1d(
                        receivers, np.flatnonzero(~self.halted)
                    )
                received = (
                    int(receivers.size)
                    if self.combine_messages
                    else raw_received
                )
            if compute_set.size == 0:
                break

            self._agg_current = {
                name: agg.identity()
                for name, agg in self._aggregators.items()
            }
            self.halted[compute_set] = False  # computing re-activates
            ctx = DenseSuperstepContext(
                self, superstep, compute_set, receivers, inbox
            )
            with tel.span("compute", category="phase", superstep=superstep):
                new_senders = program.compute(ctx)
            if new_senders is None:
                new_senders = np.empty(0, dtype=np.int64)
            else:
                new_senders = np.asarray(new_senders, dtype=np.int64)
                # Sparse and dense arc selections agree only for sorted,
                # duplicate-free sender sets (the program contract);
                # normalize defensively when a program strays.
                if new_senders.size > 1 and bool(
                    np.any(np.diff(new_senders) <= 0)
                ):
                    new_senders = np.unique(new_senders)

            with tel.span("scatter", category="phase", superstep=superstep):
                sent_raw, enq = self._scatter(program, new_senders)
            sent = sent_raw
            if self.combine_messages and sent_raw:
                enq = np.minimum(enq, 1)
                sent = int(enq.sum())
            self._pending_hist = enq
            record_superstep(
                tracer,
                superstep=superstep,
                active=int(compute_set.size),
                received=received,
                sent=sent,
                enqueues_per_destination=enq,
                costs=self.costs,
            )
            result.active_per_superstep.append(int(compute_set.size))
            result.messages_per_superstep.append(sent)
            for name in self._aggregators:
                self._agg_visible[name] = self._agg_current[name]
                result.aggregator_history[name].append(self._agg_visible[name])

            if tel.enabled:
                tel.add_span(
                    "superstep",
                    step_start,
                    tel.now(),
                    category="superstep",
                    superstep=superstep,
                    active=int(compute_set.size),
                    sent=int(sent),
                    received=int(received),
                )
                tel.counter(
                    "active_vertices", int(compute_set.size),
                    superstep=superstep,
                )
                tel.counter("messages_sent", int(sent), superstep=superstep)
                tel.counter(
                    "messages_received", int(received), superstep=superstep
                )
                tel.sample_memory(superstep=superstep)

            senders = new_senders
            superstep += 1
            if sent_raw == 0 and bool(self.halted.all()):
                break

        result.num_supersteps = superstep
        # Snapshot: a stored result must not alias the engine's mutable
        # run state (a later run/resume on this engine would corrupt it).
        result.values = self.values.copy()
        result.trace = tracer.trace
        return result

    # -- execution hooks -------------------------------------------------
    # The run loop above is shared with the sharded multi-process engine
    # (:class:`repro.bsp.parallel.ShardedBSPEngine`), which overrides
    # these four hooks; everything the equivalence contract depends on —
    # active-set selection, halting, termination, accounting, checkpoint
    # cadence — lives in ``run`` and is executed identically by both.

    def _begin_run(self, program: DenseVertexProgram, values: np.ndarray) -> None:
        """Install the initial per-vertex state for a fresh run/resume."""
        self.values = values

    def _scatter_reset(self) -> None:
        """Drop pending-scatter state (start of a run or resume)."""
        self._pending_sel = None
        self._pending_raw = 0
        self._pending_hist = None

    def _choose_mode(self, senders: np.ndarray, frontier_arcs: int) -> str:
        """Frontier representation for one sender set (policy + counter)."""
        mode = self.frontier_policy.choose(
            superstep=self._tel_superstep,
            frontier_size=int(senders.size),
            frontier_arcs=int(frontier_arcs),
            num_vertices=self.graph.num_vertices,
            num_arcs=self.graph.num_arcs,
        )
        if self.telemetry.enabled:
            self.telemetry.counter(
                "frontier_mode",
                1 if mode == DENSE else 0,
                superstep=self._tel_superstep,
            )
        return mode

    def _gather(
        self,
        program: DenseVertexProgram,
        senders: np.ndarray,
        identity: Any,
    ) -> tuple[Callable[[], np.ndarray], np.ndarray, int]:
        """Stats pass for the pending senders' messages.

        Returns ``(inbox, receivers, raw_received)``: a zero-argument
        materializer producing the per-vertex combiner-folded message
        array (invoked lazily on first ``ctx.messages`` access, or not
        at all), the sorted receiver set, and the pre-fold message count
        (one per arc out of a sender).  The modeled accounting —
        receivers and raw count — is computed here unconditionally; only
        the delivered work (payload + fold) is deferred.
        """
        graph = self.graph
        n = graph.num_vertices
        mdtype = program.message_dtype

        if not senders.size:

            def empty_inbox() -> np.ndarray:
                return np.full(n, identity, dtype=mdtype)

            return empty_inbox, np.empty(0, dtype=np.int64), 0

        if self._pending_sel is None:  # resumed run: no prior scatter
            raw = int(graph.degrees()[senders].sum())
            mode = self._choose_mode(senders, raw)
            self._pending_sel = select_arcs(senders, graph.row_ptr, mode)
            self._pending_raw = raw
        if self._pending_hist is None:
            self._pending_hist = enqueue_histogram(
                graph.col_idx[self._pending_sel], n
            )
        sel = self._pending_sel
        raw = self._pending_raw
        receivers = (
            np.flatnonzero(self._pending_hist)
            if raw
            else np.empty(0, dtype=np.int64)
        )
        superstep = self._tel_superstep

        def inbox() -> np.ndarray:
            tel = self.telemetry
            with tel.span("deliver", category="phase", superstep=superstep):
                dst = graph.col_idx[sel]
                payload = np.asarray(
                    program.arc_payload(graph, self.values, sel)
                )
                gathered = np.full(n, identity, dtype=mdtype)
                if dst.size:
                    program.combine.at(gathered, dst, payload)
            if tel.enabled:
                tel.counter(
                    "bytes_delivered",
                    int(payload.nbytes),
                    superstep=superstep,
                )
            return gathered

        return inbox, receivers, raw

    def _scatter(
        self, program: DenseVertexProgram, new_senders: np.ndarray
    ) -> tuple[int, np.ndarray | None]:
        """Account the new senders' outgoing flood.

        Returns ``(sent_raw, enqueues_per_destination)`` and retains the
        arc selection so the next superstep's gather reuses it.
        """
        graph = self.graph
        sent_raw = (
            int(graph.degrees()[new_senders].sum()) if new_senders.size else 0
        )
        if not sent_raw:
            self._pending_sel = None
            self._pending_raw = 0
            return 0, None
        mode = self._choose_mode(new_senders, sent_raw)
        sel = select_arcs(new_senders, graph.row_ptr, mode)
        self._pending_sel = sel
        self._pending_raw = sent_raw
        enq = enqueue_histogram(graph.col_idx[sel], graph.num_vertices)
        return sent_raw, enq

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release engine resources (no-op for the in-process engine)."""

    def __enter__(self) -> "DenseBSPEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- checkpointing ---------------------------------------------------
    def _snapshot(
        self, superstep: int, senders: np.ndarray, result: BSPResult
    ) -> Checkpoint:
        return Checkpoint(
            superstep=superstep,
            values=self.values.copy(),
            halted=self.halted.copy(),
            pending=[],
            aggregators=dict(self._agg_visible),
            active_history=list(result.active_per_superstep),
            message_history=list(result.messages_per_superstep),
            aggregator_history={
                name: list(vals)
                for name, vals in result.aggregator_history.items()
            },
            dense_senders=senders.copy(),
        )
