"""The reference BSP engine.

Executes a :class:`~repro.bsp.vertex.VertexProgram` under exact Pregel
semantics:

* superstep 0 runs ``compute`` on every vertex (or a chosen initial
  active set) with no messages;
* in superstep s+1, ``compute`` runs on every vertex that has incoming
  messages *or* did not vote to halt;
* messages sent in superstep s are visible only in superstep s+1;
* execution terminates when every vertex has halted and no messages are
  in flight (or ``max_supersteps`` is hit).

Each superstep is recorded as one ``kind="superstep"`` region in an XMT
work trace with the paper's cost drivers: active vertices (parallelism),
message send/receive traffic (write blow-up), and per-destination queue
pressure (fetch-and-add hotspot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.bsp.aggregators import Aggregator
from repro.bsp.checkpoint import Checkpoint, CheckpointStore
from repro.bsp.combiners import Combiner
from repro.bsp.instrumentation import record_superstep
from repro.bsp.messages import MessageBuffer
from repro.bsp.vertex import VertexContext, VertexProgram
from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BSPEngine", "BSPResult"]


@dataclass
class BSPResult:
    """Outcome of a BSP computation."""

    #: Final per-vertex state values.
    values: list[Any]
    #: Supersteps executed (compute phases that actually ran).
    num_supersteps: int
    #: Vertices that computed in each superstep.
    active_per_superstep: list[int] = field(default_factory=list)
    #: Messages *sent* during each superstep.
    messages_per_superstep: list[int] = field(default_factory=list)
    #: Aggregator values observed after each superstep, by name.
    aggregator_history: dict[str, list[Any]] = field(default_factory=dict)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_superstep)

    def values_array(self, dtype=np.float64, none_as=np.nan) -> np.ndarray:
        """States as a NumPy array (``None`` mapped to ``none_as``)."""
        return np.asarray(
            [none_as if v is None else v for v in self.values], dtype=dtype
        )


class BSPEngine:
    """Runs vertex programs over one read-only graph.

    Parameters
    ----------
    graph:
        The input graph; vertices are actors, arcs carry messages.
    combiner:
        Optional message combiner (off by default, like the paper's
        runtime — see :mod:`repro.bsp.combiners`).
    aggregators:
        Named global aggregators available to the program.
    costs:
        Kernel accounting constants for the work trace.
    telemetry:
        Optional :class:`~repro.telemetry.core.Telemetry` receiving
        wall-clock superstep/compute spans and counter samples; defaults
        to the no-op :data:`~repro.telemetry.core.NULL_TELEMETRY`.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        combiner: Combiner | None = None,
        aggregators: dict[str, Aggregator] | None = None,
        costs: KernelCosts = DEFAULT_COSTS,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.graph = graph
        self.combiner = combiner
        self.costs = costs
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self._aggregators = dict(aggregators or {})
        # Mutable run state (rebuilt per run):
        self.values: list[Any] = []
        self.halted: np.ndarray = np.zeros(0, dtype=bool)
        self.outbox: MessageBuffer = MessageBuffer(graph.num_vertices)
        self._agg_current: dict[str, Any] = {}
        self._agg_visible: dict[str, Any] = {}

    # -- aggregator plumbing (called through VertexContext) ------------
    def aggregate(self, name: str, value: Any) -> None:
        if name not in self._aggregators:
            raise KeyError(f"no aggregator named {name!r}")
        agg = self._aggregators[name]
        self._agg_current[name] = agg.reduce(self._agg_current[name], value)

    def aggregated(self, name: str) -> Any:
        if name not in self._aggregators:
            raise KeyError(f"no aggregator named {name!r}")
        return self._agg_visible[name]

    # -- main loop ------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        *,
        initial_active: Iterable[int] | None = None,
        max_supersteps: int = 10_000,
        trace_label: str = "bsp",
        checkpoint_every: int | None = None,
        checkpoint_store: "CheckpointStore | None" = None,
        resume_from: "Checkpoint | None" = None,
    ) -> BSPResult:
        """Execute ``program`` to termination.

        ``initial_active`` restricts superstep 0 to the given vertices
        (Pregel activates all; single-source algorithms like BFS activate
        just the source — both appear in the paper's pseudocode via the
        ``s = 0`` branch).

        Fault tolerance (Pregel §4.2 semantics): with
        ``checkpoint_every=k`` a :class:`~repro.bsp.checkpoint.Checkpoint`
        is written to ``checkpoint_store`` before every k-th superstep;
        after a failure, ``run(..., resume_from=store.latest)`` replays
        from the snapshot and produces results identical to an
        uninterrupted run.  The trace of a resumed run covers only the
        replayed supersteps.
        """
        if max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if checkpoint_store is None:
                raise ValueError(
                    "checkpoint_every requires a checkpoint_store"
                )
        graph = self.graph
        n = graph.num_vertices
        tracer = Tracer(label=trace_label)
        result = BSPResult(values=[], num_supersteps=0)

        if resume_from is not None:
            ck = resume_from
            if len(ck.values) != n:
                raise ValueError(
                    "checkpoint does not match this graph's vertex count"
                )
            if ck.dense_senders is not None:
                raise ValueError(
                    "checkpoint was written by DenseBSPEngine; "
                    "resume it with a DenseBSPEngine"
                )
            self.values = list(ck.values)
            self.halted = ck.halted.copy()
            inbox = MessageBuffer.restore(
                n,
                self.combiner,
                ck.pending,
                total_sent=ck.buffer_total_sent,
                enqueues_per_destination=ck.buffer_enqueues,
            )
            self._agg_visible = dict(ck.aggregators)
            for name, agg in self._aggregators.items():
                self._agg_visible.setdefault(name, agg.identity())
            result.active_per_superstep = list(ck.active_history)
            result.messages_per_superstep = list(ck.message_history)
            result.aggregator_history = {
                name: list(vals)
                for name, vals in ck.aggregator_history.items()
            }
            for name in self._aggregators:
                result.aggregator_history.setdefault(name, [])
            active0 = []  # unused on resume (superstep > 0)
            superstep = ck.superstep
        else:
            self.values = [program.initial_value(v, graph) for v in range(n)]
            self.halted = np.zeros(n, dtype=bool)
            inbox = MessageBuffer(n, self.combiner)
            self._agg_visible = {
                name: agg.identity()
                for name, agg in self._aggregators.items()
            }
            if initial_active is None:
                active0 = list(range(n))
            else:
                active0 = sorted({int(v) for v in initial_active})
                for v in active0:
                    if not 0 <= v < n:
                        raise IndexError(f"initial vertex {v} out of range")
                self.halted[:] = True
                self.halted[active0] = False
            for name in self._aggregators:
                result.aggregator_history[name] = []
            superstep = 0

        tel = self.telemetry
        while superstep < max_supersteps:
            if (
                checkpoint_every is not None
                and superstep > 0
                and superstep % checkpoint_every == 0
                and (resume_from is None or superstep > resume_from.superstep)
            ):
                checkpoint_store.save(self._snapshot(superstep, inbox, result))
            step_start = tel.now()
            if superstep == 0:
                compute_set = active0
            else:
                with_messages = set(int(v) for v in inbox.destinations())
                not_halted = set(np.flatnonzero(~self.halted).tolist())
                compute_set = sorted(with_messages | not_halted)
            if not compute_set:
                break

            self.outbox = MessageBuffer(n, self.combiner)
            self._agg_current = {
                name: agg.identity() for name, agg in self._aggregators.items()
            }
            received = 0
            ctx = VertexContext(self)
            with tel.span("compute", category="phase", superstep=superstep):
                for v in compute_set:
                    msgs = inbox.messages_for(v)
                    received += len(msgs)
                    self.halted[v] = False  # computing re-activates
                    ctx._vertex = v
                    ctx._superstep = superstep
                    program.compute(ctx, msgs)

            sent = self.outbox.total_sent
            self._record_superstep(
                tracer, superstep, len(compute_set), received, self.outbox
            )
            result.active_per_superstep.append(len(compute_set))
            result.messages_per_superstep.append(sent)
            for name in self._aggregators:
                self._agg_visible[name] = self._agg_current[name]
                result.aggregator_history[name].append(self._agg_visible[name])

            if tel.enabled:
                tel.add_span(
                    "superstep",
                    step_start,
                    tel.now(),
                    category="superstep",
                    superstep=superstep,
                    active=len(compute_set),
                    sent=int(sent),
                    received=int(received),
                )
                tel.counter(
                    "active_vertices", len(compute_set), superstep=superstep
                )
                tel.counter("messages_sent", int(sent), superstep=superstep)
                tel.counter(
                    "messages_received", int(received), superstep=superstep
                )
                tel.sample_memory(superstep=superstep)

            inbox = self.outbox
            superstep += 1
            if inbox.is_empty and bool(self.halted.all()):
                break

        result.num_supersteps = superstep
        # Snapshot: a stored result must not alias the engine's mutable
        # run state (a later run/resume on this engine would corrupt it).
        result.values = list(self.values)
        result.trace = tracer.trace
        return result

    # -- checkpointing ---------------------------------------------------
    def _snapshot(
        self, superstep: int, inbox: MessageBuffer, result: BSPResult
    ) -> Checkpoint:
        return Checkpoint(
            superstep=superstep,
            values=list(self.values),
            halted=self.halted.copy(),
            pending=inbox.all_messages(),
            aggregators=dict(self._agg_visible),
            active_history=list(result.active_per_superstep),
            message_history=list(result.messages_per_superstep),
            aggregator_history={
                name: list(vals)
                for name, vals in result.aggregator_history.items()
            },
            buffer_total_sent=inbox.total_sent,
            buffer_enqueues=inbox.enqueues_per_destination.copy(),
        )

    # -- instrumentation -------------------------------------------------
    def _record_superstep(
        self,
        tracer: Tracer,
        superstep: int,
        active: int,
        received: int,
        outbox: MessageBuffer,
    ) -> None:
        record_superstep(
            tracer,
            superstep=superstep,
            active=active,
            received=received,
            sent=outbox.total_sent,
            enqueues_per_destination=outbox.enqueues_per_destination,
            costs=self.costs,
        )
