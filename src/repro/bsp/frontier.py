"""Frontier representation and sparse/dense arc selection.

The dense engines express every superstep's message traffic as "select
all out-arcs of the sender set, then operate on them in arc order".  Two
selection representations implement that contract:

* **dense** — a boolean mask over the whole arc array
  (:func:`~repro.bsp._scatter.arcs_from`).  Building and applying it
  costs ``O(n + m)`` no matter how small the frontier is, which is
  exactly why BFS tails, CC late rounds, and SSSP settling supersteps
  used to pay full-graph sweeps.
* **sparse** — an int64 array of the selected arc *indices*, built by
  concatenating each sender's CSR slice (:func:`arc_indices`).  Cost is
  proportional to the frontier-incident arcs only.

Both representations index NumPy arc-parallel arrays (``col_idx``,
``weights``, ``arc_sources``) identically and in the same ascending arc
order, so every downstream kernel — payload evaluation, per-destination
histograms, combiner folds — produces bit-identical results either way.
:class:`FrontierPolicy` picks the representation per superstep with the
GBBS-style heuristic: go dense once the frontier-incident arc count
exceeds ``m / k`` ("Theoretically Efficient Parallel Graph Algorithms
Can Be Fast and Scalable"), sparse otherwise.  The engines record the
decision as the ``frontier_mode`` telemetry counter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.graph.properties import _ragged_arange

#: An arc selection: boolean mask over all arcs (dense) or sorted int64
#: arc indices (sparse).  Opaque to programs — valid only as a fancy
#: index into arc-parallel arrays or via :func:`selected_arc_count`.
ArcSelection = NDArray[np.bool_] | NDArray[np.int64]

__all__ = [
    "ArcSelection",
    "DEFAULT_FRONTIER_POLICY",
    "DENSE",
    "SPARSE",
    "FrontierPolicy",
    "arc_indices",
    "select_arcs",
    "selected_arc_count",
]

#: Frontier / arc-selection representation names.
SPARSE = "sparse"
DENSE = "dense"


@dataclass(frozen=True)
class FrontierPolicy:
    """Per-superstep sparse/dense switching rule.

    Parameters
    ----------
    k:
        Density threshold divisor: a superstep's arc selection goes
        dense when the frontier-incident arc count exceeds ``m / k``
        (``m`` counting directed arcs).  The crossover between the two
        representations is where the sparse build's ``O(frontier
        arcs)`` work with its larger constant overtakes the mask path's
        fixed ``O(n + m)`` sweep; ``k = 3`` matches the measured
        crossover of the NumPy kernels and errs toward sparse.
    mode:
        ``"auto"`` applies the heuristic; ``"sparse"`` / ``"dense"``
        force one representation for every superstep (ablation and
        regression-test hooks).
    """

    k: int = 3
    mode: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in ("auto", SPARSE, DENSE):
            raise ValueError(
                f"mode must be 'auto', {SPARSE!r} or {DENSE!r}"
            )
        if self.k < 1:
            raise ValueError("k must be >= 1")

    def choose(
        self,
        *,
        superstep: int,
        frontier_size: int,
        frontier_arcs: int,
        num_vertices: int,
        num_arcs: int,
    ) -> str:
        """Representation for one superstep's sender set."""
        if self.mode != "auto":
            return self.mode
        return DENSE if frontier_arcs > num_arcs // self.k else SPARSE


#: The engines' default switching rule.
DEFAULT_FRONTIER_POLICY = FrontierPolicy()


def arc_indices(
    senders: NDArray[np.int64], row_ptr: NDArray[np.int64]
) -> NDArray[np.int64]:
    """Ascending arc indices of every out-arc of ``senders``.

    ``senders`` must be sorted ascending and duplicate-free; the result
    then selects the same arcs, in the same order, as the boolean mask
    from :func:`~repro.bsp._scatter.arcs_from` — the property the
    bit-identity of sparse and dense supersteps rests on.
    """
    starts = row_ptr[senders]
    counts = row_ptr[senders + 1] - starts
    return np.repeat(starts, counts) + _ragged_arange(counts)


def select_arcs(
    senders: NDArray[np.int64], row_ptr: NDArray[np.int64], mode: str
) -> ArcSelection:
    """Arc selection for ``senders`` in the given representation.

    Returns a boolean mask (``mode="dense"``) or an int64 index array
    (``mode="sparse"``); both select identical arcs in identical order.
    """
    if mode == SPARSE:
        return arc_indices(senders, row_ptr)
    n = row_ptr.size - 1
    vertex_mask = np.zeros(n, dtype=bool)
    vertex_mask[senders] = True
    return np.repeat(vertex_mask, np.diff(row_ptr))


def selected_arc_count(selection: ArcSelection) -> int:
    """Number of arcs a selection picks (mask or index array)."""
    if selection.dtype == np.bool_:
        return int(np.count_nonzero(selection))
    return int(selection.size)
