"""Shared superstep accounting.

The reference engine and the vectorized kernels must charge identical
costs for identical superstep behaviour — the equivalence tests rely on
it.  Both therefore call :func:`record_superstep` with the same five
quantities: active vertices, messages received, messages sent, the
per-destination enqueue histogram, and the superstep index.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.runtime.loops import Tracer
from repro.xmt.calibration import KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["record_superstep", "with_queue_design"]

#: Message-queue designs for :func:`with_queue_design`.
QUEUE_DESIGNS = ("single-tail", "per-vertex", "chunked")


def record_superstep(
    tracer: Tracer,
    *,
    superstep: int,
    active: int,
    received: int,
    sent: int,
    enqueues_per_destination: np.ndarray | None,
    costs: KernelCosts,
    name: str = "bsp/superstep",
    compute_reads: float = 0.0,
    compute_instructions: float = 0.0,
) -> None:
    """Append one ``kind="superstep"`` region to ``tracer``.

    ``enqueues_per_destination`` may be the full per-vertex histogram
    (zeros allowed) or ``None`` when ``sent`` is 0.

    ``compute_reads`` / ``compute_instructions`` charge algorithm-specific
    local computation beyond the message traffic — e.g. the neighbour-list
    scans of the triangle program.  The generic engine cannot observe
    Python-level compute, so only the vectorized kernels supply these;
    engine traces underestimate compute-heavy programs accordingly.
    """
    with tracer.region(
        name, items=max(active, 1), kind="superstep", iteration=superstep
    ) as r:
        r.count(
            instructions=(
                active * costs.vertex_touch_instructions
                + received * costs.message_receive_instructions
                + sent * costs.message_enqueue_instructions
                + compute_instructions
            ),
            reads=received * costs.message_receive_reads + active
            + compute_reads,
            writes=sent * costs.message_enqueue_writes + active,
        )
        if sent:
            if enqueues_per_destination is None:
                raise ValueError(
                    "sent > 0 requires the per-destination histogram"
                )
            sites = np.asarray(enqueues_per_destination)
            sites = sites[sites > 0]
            global_counter = int(np.ceil(sent / costs.message_queue_shard))
            r.atomics_per_site(np.concatenate([sites, [global_counter]]))


def with_queue_design(
    trace: WorkTrace,
    design: str,
    costs: KernelCosts,
    *,
    chunk: int = 64,
) -> WorkTrace:
    """Re-account a BSP trace under an alternative message-queue design.

    The paper's §VII names the hazard directly: "Without native support
    for message features such as enqueueing and dequeueing, serialization
    around a single atomic fetch-and-add is possible, inhibiting
    scalability."  This helper rewrites each superstep's hotspot profile
    as if the runtime had used:

    * ``"single-tail"`` — one global queue whose tail every message
      reserves: the naive design §VII warns about.  Every enqueue lands
      on one word, so the hotspot depth equals the message count and the
      superstep stops scaling with processors.
    * ``"per-vertex"`` — a tail word per destination vertex (this
      library's default accounting): the hotspot depth is the hottest
      receiver's in-traffic, i.e. bounded by the maximum active degree.
    * ``"chunked"`` — a single tail reserved in blocks of ``chunk``
      slots (the MTA/XMT work-queue idiom GraphCT's BFS uses): the
      depth shrinks to ``messages / chunk``.

    Message counts are recovered from the traced enqueue writes
    (``writes_per_message`` is a calibration constant), so the helper
    applies to any trace produced by :func:`record_superstep`.
    """
    if design not in QUEUE_DESIGNS:
        raise ValueError(f"design must be one of {QUEUE_DESIGNS}")
    if costs.message_enqueue_writes <= 0:
        # The rewrite divides traced enqueue writes by this constant to
        # recover per-superstep message counts; with it at 0 the trace
        # does not encode the counts and every superstep would silently
        # pass through unmodified.
        raise ValueError(
            "with_queue_design cannot recover message counts: "
            "costs.message_enqueue_writes is 0, so enqueue writes do not "
            "encode the sent count; re-trace with a KernelCosts whose "
            "message_enqueue_writes is positive"
        )
    out = WorkTrace(label=f"{trace.label}[{design}]")
    for region in trace:
        if region.kind != "superstep" or region.atomics <= 0:
            out.add(region)
            continue
        # Messages sent in this superstep, from the write accounting.
        active = region.parallel_items
        sent = max(
            (region.writes - active) / costs.message_enqueue_writes, 0.0
        )
        if sent <= 0:
            out.add(region)
            continue
        if design == "single-tail":
            max_site = sent
            atomics = sent
        elif design == "chunked":
            max_site = math.ceil(sent / chunk)
            atomics = max_site
        else:  # per-vertex: keep the traced per-destination histogram
            out.add(region)
            continue
        out.add(
            replace(
                region,
                atomics=max(atomics, max_site),
                atomic_max_site=max_site,
            )
        )
    return out
