"""Command-line entry point: ``python -m repro.cli <experiment>``.

Renders each of the paper's experiments as ASCII tables::

    python -m repro.cli table1            # Table I totals
    python -m repro.cli fig1              # CC time per superstep
    python -m repro.cli fig2              # BFS frontier vs messages
    python -m repro.cli fig3              # BFS per-level scaling
    python -m repro.cli fig4              # triangle-counting scaling
    python -m repro.cli anecdotes         # distributed-system anecdotes
    python -m repro.cli graph500          # validated batch BFS + TEPS
    python -m repro.cli verify            # executable claim scorecard
    python -m repro.cli all               # everything
    python -m repro.cli profile ...       # wall-clock telemetry profiling
    python -m repro.cli bench ...         # benchmark history + regression gate
    python -m repro.cli serve ...         # long-lived graph-analytics server
    python -m repro.cli check ...         # BSP program linter / contracts
    python -m repro.cli top ...           # live per-worker engine view
    python -m repro.cli version           # exact package version

``profile`` is its own subcommand (see :mod:`repro.telemetry.profile`):
it runs one algorithm with telemetry enabled and writes a Chrome trace
plus a measured-vs-modeled report.  ``bench`` (see :mod:`repro.bench.cli`)
records benchmark runs into the append-only history ledger, renders
trends, and gates regressions.  ``serve`` (see :mod:`repro.service.cli`)
loads one graph into the sharded engine's shared-memory CSR and serves
algorithm jobs over HTTP — submit, poll, fetch results / telemetry /
traces.  ``check`` (see :mod:`repro.check.cli`) statically lints vertex
programs for determinism/race hazards and property-tests combiner
contracts.  ``top`` (see :mod:`repro.telemetry.top`) attaches to a live
sharded engine — via its flight-recorder beacon or a ``repro serve``
URL — and renders per-worker phase/progress/rss like ``top(1)``.
``version`` (also ``--version``) prints the installed
package version, so ledger provenance and bug reports can cite an exact
release.

Options: ``--scale N`` (default 14), ``--seed S``, ``--paper-scale``
(render the processor sweeps with work extrapolated to the paper's
scale-24 input), ``--chart`` (ASCII log-scale figures), ``--json PATH``
(machine-readable dump of every experiment; ``-`` for stdout).

Installed as the ``repro-experiments`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.experiments import (
    run_cluster_anecdotes,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
)
from repro.analysis.charts import log_ascii_chart
from repro.analysis.report import (
    format_scaling_table,
    format_seconds,
    format_series,
    format_table1,
)
from repro.analysis.workload import ExperimentConfig

__all__ = ["main"]


def _fig1(config: ExperimentConfig, paper_scale: bool, chart: bool = False) -> str:
    res = run_fig1(config)
    sweeps = (
        res.bsp_times_paper_scale if paper_scale else res.bsp_times,
        res.graphct_times_paper_scale if paper_scale else res.graphct_times,
    )
    out = []
    if chart:
        for name, sweep in zip(("BSP", "GraphCT"), sweeps):
            iters = sorted(next(iter(sweep.values()))["by_iteration"])
            series = {
                f"P={p}": [sweep[p]["by_iteration"][i] for i in iters]
                for p in config.processor_counts
            }
            out.append(log_ascii_chart(
                f"Figure 1 ({name}): seconds per iteration (log y)",
                series, x_labels=iters,
            ))
    for name, sweep in zip(("BSP", "GraphCT"), sweeps):
        iters = sorted(next(iter(sweep.values()))["by_iteration"])
        columns = [
            (f"P={p}", [format_seconds(sweep[p]["by_iteration"][i])
                        for i in iters])
            for p in config.processor_counts
        ]
        out.append(
            format_series(
                f"Figure 1 ({name}): connected components time per "
                f"{'superstep' if name == 'BSP' else 'iteration'}",
                iters,
                *columns,
            )
        )
    out.append(
        f"\nBSP supersteps: {res.bsp.num_supersteps}, GraphCT iterations: "
        f"{res.graphct.num_iterations} "
        f"(inflation {res.superstep_inflation:.2f}x; paper: 13 vs 6)"
    )
    b, g = res.totals_at(max(config.processor_counts))
    out.append(
        f"Totals at P={max(config.processor_counts)}: BSP "
        f"{format_seconds(b)}, GraphCT {format_seconds(g)} "
        f"(paper: 5.40s vs 1.31s)"
    )
    return "\n\n".join(out)


def _fig2(config: ExperimentConfig, chart: bool = False) -> str:
    res = run_fig2(config)
    if chart:
        plot = log_ascii_chart(
            "Figure 2: frontier (GraphCT) vs messages (BSP), log y",
            {"frontier": res.frontier_sizes, "messages": res.bsp_messages},
            x_labels=list(range(len(res.bsp_messages))),
        )
        return (
            f"{plot}\n\npeak delivered-messages/frontier after the apex: "
            f"{res.peak_message_to_frontier_ratio:.0f}x"
        )
    table = format_series(
        "Figure 2: BFS frontier size vs BSP messages per level",
        list(range(max(len(res.frontier_sizes), len(res.bsp_messages)))),
        ("frontier (GraphCT)", res.frontier_sizes),
        ("messages (BSP)", res.bsp_messages),
    )
    return (
        f"{table}\n\npeak delivered-messages/frontier after the apex: "
        f"{res.peak_message_to_frontier_ratio:.0f}x "
        f"(paper: 'an order of magnitude larger')"
    )


def _fig3(config: ExperimentConfig, paper_scale: bool) -> str:
    res = run_fig3(config)
    series = res.series_paper_scale if paper_scale else res.series
    out = []
    for model in ("bsp", "graphct"):
        out.append(
            format_scaling_table(
                f"Figure 3 ({model}): BFS per-level time vs processors"
                + (" [paper-scale work]" if paper_scale else ""),
                config.processor_counts,
                {f"level {lvl}": series[model][lvl] for lvl in res.levels},
            )
        )
    p = max(config.processor_counts)
    out.append(
        f"\nTotals at P={p}: BSP {format_seconds(res.bsp_total[p])}, "
        f"GraphCT {format_seconds(res.graphct_total[p])} "
        f"(paper: 3.12s vs 310ms)"
    )
    return "\n\n".join(out)


def _fig4(config: ExperimentConfig, paper_scale: bool, chart: bool = False) -> str:
    res = run_fig4(config)
    series = {
        "BSP": res.bsp_times_paper_scale if paper_scale else res.bsp_times,
        "GraphCT": (
            res.graphct_times_paper_scale if paper_scale
            else res.graphct_times
        ),
    }
    if chart:
        return log_ascii_chart(
            "Figure 4: triangle counting, seconds vs processors (log y)",
            {name: list(times.values()) for name, times in series.items()},
            x_labels=list(config.processor_counts),
        )
    table = format_scaling_table(
        "Figure 4: triangle counting time vs processors"
        + (" [paper-scale work]" if paper_scale else ""),
        config.processor_counts,
        series,
    )
    return (
        f"{table}\n\n"
        f"possible triangles (messages): {res.bsp.possible_triangles:,} | "
        f"actual triangles: {res.bsp.total_triangles:,} | "
        f"BSP/GraphCT write ratio: {res.write_ratio:.0f}x\n"
        f"(paper: 5.5B possible, 30.9M actual, 181x writes, "
        f"444s vs 47.4s at 128P)"
    )


def _table1(config: ExperimentConfig, paper_scale: bool) -> str:
    res = run_table1(config)
    rows = res.extrapolated_rows if paper_scale else res.rows
    title = (
        "Table I: execution times at P="
        f"{max(config.processor_counts)}"
        + (" [paper-scale work]" if paper_scale else
           f" [RMAT scale {config.scale}]")
    )
    return format_table1(rows, title=title, paper_rows=res.paper_rows)


def _verify(config: ExperimentConfig) -> str:
    from repro.analysis.verification import verify_all

    return verify_all(config).render()


def _graph500(config: ExperimentConfig) -> str:
    from repro.analysis.graph500 import run_graph500

    res = run_graph500(
        scale=config.scale, edge_factor=config.edge_factor,
        num_searches=8, seed=config.seed,
    )
    lines = [
        f"Graph500-style run (scale {res.scale}, {res.num_searches} "
        f"validated searches)",
        "=" * 60,
    ]
    for model in ("graphct", "bsp"):
        lines.append(
            f"harmonic-mean simulated TEPS [{model:7s}]: "
            f"{res.harmonic_mean_teps(model):.3e}"
        )
    lines.append(
        f"edges traversed per search: "
        f"{[f'{e:,}' for e in res.edges_traversed]}"
    )
    return "\n".join(lines)


def _anecdotes(config: ExperimentConfig) -> str:
    res = run_cluster_anecdotes(config)
    lines = ["Distributed-BSP anecdotes (order-of-magnitude checks)",
             "=" * 54]
    for name, row in res.rows.items():
        ok = "OK " if res.within_order_of_magnitude(name) else "OFF"
        lines.append(
            f"[{ok}] {name}: simulated {format_seconds(row['simulated'])} "
            f"vs paper ~{format_seconds(row['paper'])} "
            f"on {int(row['machines'])} machines"
        )
    lines.append(
        f"Giraph SSSP flat-scaling machine counts: {res.sssp_flat_counts} "
        f"(paper: flat from 30 to 85)"
    )
    return "\n".join(lines)


def collect_results(config: ExperimentConfig) -> dict:
    """All experiments as one JSON-serializable dictionary.

    The layout mirrors EXPERIMENTS.md: per-experiment measured series
    plus the paper's reference values.
    """
    f1 = run_fig1(config)
    f2 = run_fig2(config)
    f3 = run_fig3(config)
    f4 = run_fig4(config)
    t1 = run_table1(config)
    an = run_cluster_anecdotes(config)
    p_max = max(config.processor_counts)
    return {
        "config": {
            "scale": config.scale,
            "edge_factor": config.edge_factor,
            "seed": config.seed,
            "processor_counts": list(config.processor_counts),
        },
        "fig1": {
            "bsp_supersteps": f1.bsp.num_supersteps,
            "graphct_iterations": f1.graphct.num_iterations,
            "superstep_inflation": f1.superstep_inflation,
            "bsp_messages_per_superstep": f1.bsp.messages_per_superstep,
            "bsp_seconds_by_superstep": {
                p: list(f1.bsp_times[p]["by_iteration"].values())
                for p in config.processor_counts
            },
            "graphct_seconds_by_iteration": {
                p: list(f1.graphct_times[p]["by_iteration"].values())
                for p in config.processor_counts
            },
            "paper": {"bsp_supersteps": 13, "graphct_iterations": 6},
        },
        "fig2": {
            "frontier_sizes": f2.frontier_sizes,
            "bsp_messages": f2.bsp_messages,
            "peak_delivered_to_frontier": f2.peak_message_to_frontier_ratio,
        },
        "fig3": {
            "levels": f3.levels,
            "series": {
                model: {
                    str(lvl): dict(times)
                    for lvl, times in f3.series[model].items()
                }
                for model in f3.series
            },
            "bsp_total": f3.bsp_total,
            "graphct_total": f3.graphct_total,
            "paper": {"bsp_total_128": 3.12, "graphct_total_128": 0.310},
        },
        "fig4": {
            "bsp_times": f4.bsp_times,
            "graphct_times": f4.graphct_times,
            "possible_triangles": f4.bsp.possible_triangles,
            "actual_triangles": f4.bsp.total_triangles,
            "write_ratio": f4.write_ratio,
            "paper": {
                "bsp_128": 444.0, "graphct_128": 47.4,
                "possible": 5.5e9, "actual": 30.9e6, "write_ratio": 181,
            },
        },
        "table1": {
            "processors": p_max,
            "rows": t1.rows,
            "extrapolated_rows": t1.extrapolated_rows,
            "paper_rows": t1.paper_rows,
        },
        "anecdotes": {
            "rows": an.rows,
            "sssp_flat_counts": an.sssp_flat_counts,
        },
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli`` / ``repro-experiments``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        from repro.telemetry.profile import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "top":
        from repro.telemetry.top import main as top_main

        return top_main(argv[1:])
    if argv and argv[0] in ("version", "--version"):
        from repro.bench.ledger import package_version

        print(f"repro {package_version()}")
        return 0
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's figures and table.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig1", "fig2", "fig3", "fig4", "table1", "anecdotes",
            "graph500", "verify", "all",
        ],
    )
    parser.add_argument("--scale", type=int, default=14)
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="extrapolate work to the paper's scale-24 graph",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render figures as ASCII log-scale charts",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write all experiment data as JSON (use '-' for stdout)",
    )
    args = parser.parse_args(argv)
    config = ExperimentConfig(
        scale=args.scale, edge_factor=args.edge_factor, seed=args.seed
    )

    if args.json is not None:
        payload = json.dumps(collect_results(config), indent=2, default=float)
        if args.json == "-":
            print(payload)
            return 0
        with open(args.json, "w", encoding="ascii") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.json}")

    sections = []
    if args.experiment in ("fig1", "all"):
        sections.append(_fig1(config, args.paper_scale, args.chart))
    if args.experiment in ("fig2", "all"):
        sections.append(_fig2(config, args.chart))
    if args.experiment in ("fig3", "all"):
        sections.append(_fig3(config, args.paper_scale))
    if args.experiment in ("fig4", "all"):
        sections.append(_fig4(config, args.paper_scale, args.chart))
    if args.experiment in ("table1", "all"):
        sections.append(_table1(config, args.paper_scale))
    if args.experiment in ("anecdotes", "all"):
        sections.append(_anecdotes(config))
    if args.experiment == "graph500":
        sections.append(_graph500(config))
    if args.experiment == "verify":
        sections.append(_verify(config))
    print(("\n\n" + "~" * 72 + "\n\n").join(sections))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
