"""Graph substrate: storage, construction, generation, I/O, and utilities.

This subpackage re-creates the data layer of GraphCT: a single, efficient,
read-only compressed sparse row (:class:`~repro.graph.csr.CSRGraph`)
representation that is built once and then served to every analysis kernel,
plus the generators and file formats used by the paper's experiments.
"""

from repro.graph.builder import (
    GraphBuilder,
    from_edge_array,
    from_edge_list,
)
from repro.graph.csr import CSRGraph
from repro.graph.dag import ascending_orientation, degree_orientation
from repro.graph.generators import (
    RMATParameters,
    barabasi_albert,
    erdos_renyi,
    path_graph,
    ring_graph,
    rmat,
    rmat_edges,
    star_graph,
    two_d_grid,
    watts_strogatz,
)
from repro.graph.io import (
    load_graph,
    read_edge_list,
    save_graph,
    write_edge_list,
)
from repro.graph.properties import (
    connected_component_sizes,
    degree_statistics,
    giant_component_vertex,
    is_symmetric,
    peripheral_vertex,
    reachable_from,
)
from repro.graph.streaming import StreamingGraph
from repro.graph.subgraph import extract_subgraph, largest_component_subgraph

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "RMATParameters",
    "StreamingGraph",
    "ascending_orientation",
    "barabasi_albert",
    "connected_component_sizes",
    "degree_orientation",
    "degree_statistics",
    "erdos_renyi",
    "giant_component_vertex",
    "peripheral_vertex",
    "extract_subgraph",
    "from_edge_array",
    "from_edge_list",
    "is_symmetric",
    "largest_component_subgraph",
    "load_graph",
    "path_graph",
    "reachable_from",
    "read_edge_list",
    "ring_graph",
    "rmat",
    "rmat_edges",
    "save_graph",
    "star_graph",
    "two_d_grid",
    "watts_strogatz",
    "write_edge_list",
]
