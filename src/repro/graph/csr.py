"""Compressed sparse row graph storage.

GraphCT stores every graph in one read-only CSR structure that all kernels
share (Ediger et al., "GraphCT: Multithreaded Algorithms for Massive Graph
Analysis").  :class:`CSRGraph` mirrors that design: a pair of NumPy arrays
``row_ptr`` / ``col_idx`` (plus an optional parallel ``weights`` array) that
are frozen after construction.  Kernels never mutate the graph; algorithm
state lives in separate arrays owned by the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["CSRGraph"]

# Vertex ids and offsets.  int64 everywhere: the paper's graphs have 2^24
# vertices and 2^28 edges, and offset arithmetic on subsampled wedge batches
# can exceed 2^31 even at reduced scale.
VERTEX_DTYPE = np.int64
OFFSET_DTYPE = np.int64
WEIGHT_DTYPE = np.float64


@dataclass(frozen=True)
class CSRGraph:
    """A read-only graph in compressed sparse row form.

    Parameters
    ----------
    row_ptr:
        ``(num_vertices + 1,)`` int64 array.  The neighbours of vertex ``v``
        occupy ``col_idx[row_ptr[v]:row_ptr[v + 1]]``.
    col_idx:
        ``(num_edges,)`` int64 array of neighbour ids.  For an *undirected*
        graph each edge {u, v} is stored twice (u→v and v→u), matching
        GraphCT's representation; ``num_edges`` therefore counts directed
        arcs.
    weights:
        Optional ``(num_edges,)`` float64 array parallel to ``col_idx``.
    directed:
        True when the arc set is not symmetric.  Undirected graphs built by
        :mod:`repro.graph.builder` always symmetrize.
    sorted_adjacency:
        True when every adjacency list is sorted ascending.  Sortedness is
        required by the O(d_u + d_v) neighbourhood-intersection used in
        triangle counting; the builder guarantees it.

    Notes
    -----
    Instances are frozen and their arrays are marked non-writeable; this is
    the "served read-only to analysis applications" contract from the paper.
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    weights: np.ndarray | None = None
    directed: bool = False
    sorted_adjacency: bool = True
    _degree_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        row_ptr = np.ascontiguousarray(self.row_ptr, dtype=OFFSET_DTYPE)
        col_idx = np.ascontiguousarray(self.col_idx, dtype=VERTEX_DTYPE)
        if row_ptr.ndim != 1 or col_idx.ndim != 1:
            raise ValueError("row_ptr and col_idx must be one-dimensional")
        if row_ptr.size == 0:
            raise ValueError("row_ptr must have at least one entry")
        if row_ptr[0] != 0:
            raise ValueError("row_ptr must start at 0")
        if row_ptr[-1] != col_idx.size:
            raise ValueError(
                f"row_ptr[-1] ({int(row_ptr[-1])}) must equal "
                f"len(col_idx) ({col_idx.size})"
            )
        if np.any(np.diff(row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        n = row_ptr.size - 1
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise ValueError("col_idx contains out-of-range vertex ids")
        object.__setattr__(self, "row_ptr", row_ptr)
        object.__setattr__(self, "col_idx", col_idx)
        if self.weights is not None:
            weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)
            if weights.shape != col_idx.shape:
                raise ValueError("weights must be parallel to col_idx")
            weights.setflags(write=False)
            object.__setattr__(self, "weights", weights)
        row_ptr.setflags(write=False)
        col_idx.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic size queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (including isolated ones)."""
        return self.row_ptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (2x edge count when undirected)."""
        return self.col_idx.size

    @property
    def num_edges(self) -> int:
        """Number of logical edges: arcs/2 for undirected graphs."""
        if self.directed:
            return self.num_arcs
        return self.num_arcs // 2

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return (
            f"CSRGraph({kind}, n={self.num_vertices}, "
            f"arcs={self.num_arcs}, weighted={self.is_weighted})"
        )

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the adjacency list of vertex ``v``."""
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.col_idx[self.row_ptr[v] : self.row_ptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors` for vertex ``v``."""
        if self.weights is None:
            raise ValueError("graph is unweighted")
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.weights[self.row_ptr[v] : self.row_ptr[v + 1]]

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v`` (degree, for undirected graphs)."""
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees (cached; read-only)."""
        cached = self._degree_cache.get("degrees")
        if cached is None:
            cached = np.diff(self.row_ptr)
            cached.setflags(write=False)
            self._degree_cache["degrees"] = cached
        return cached

    def has_edge(self, u: int, v: int) -> bool:
        """True when arc u→v is stored.  O(log d_u) on sorted adjacency."""
        nbrs = self.neighbors(u)
        if self.sorted_adjacency:
            pos = np.searchsorted(nbrs, v)
            return bool(pos < nbrs.size and nbrs[pos] == v)
        return bool(np.any(nbrs == v))

    def arc_sources(self) -> np.ndarray:
        """Expand ``row_ptr`` into a per-arc source-vertex vector.

        The result is parallel to :attr:`col_idx`; arc ``i`` runs from
        ``arc_sources()[i]`` to ``col_idx[i]``.  Cached because every
        vectorized kernel needs it.
        """
        cached = self._degree_cache.get("arc_sources")
        if cached is None:
            cached = np.repeat(
                np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degrees()
            )
            cached.setflags(write=False)
            self._degree_cache["arc_sources"] = cached
        return cached

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate unique edges.

        Undirected graphs yield each edge once with u <= v; directed graphs
        yield every arc.  Intended for tests and small graphs only — kernels
        use the array interface.
        """
        src = self.arc_sources()
        if self.directed:
            for u, v in zip(src.tolist(), self.col_idx.tolist()):
                yield (u, v)
        else:
            keep = src <= self.col_idx
            for u, v in zip(src[keep].tolist(), self.col_idx[keep].tolist()):
                yield (int(u), int(v))

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------
    def memory_footprint_bytes(self) -> int:
        """Bytes held by the CSR arrays (used by capacity planning docs)."""
        total = self.row_ptr.nbytes + self.col_idx.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def fingerprint(self) -> str:
        """Content hash of the frozen CSR (hex SHA-256, cached).

        Two graphs share a fingerprint exactly when their CSR arrays,
        weights, and flags are identical — the stable identity the
        service layer's result cache keys on.  Safe to cache because
        instances are frozen and the arrays are non-writeable.
        """
        cached = self._degree_cache.get("fingerprint")
        if cached is None:
            import hashlib

            h = hashlib.sha256()
            h.update(
                f"csr/v1 directed={self.directed} "
                f"sorted={self.sorted_adjacency} "
                f"weighted={self.is_weighted}".encode("ascii")
            )
            h.update(np.ascontiguousarray(self.row_ptr).tobytes())
            h.update(np.ascontiguousarray(self.col_idx).tobytes())
            if self.weights is not None:
                h.update(np.ascontiguousarray(self.weights).tobytes())
            cached = h.hexdigest()
            self._degree_cache["fingerprint"] = cached
        return cached

    def reverse(self) -> "CSRGraph":
        """Transpose a directed graph (identity for undirected graphs)."""
        if not self.directed:
            return self
        sources = self.arc_sources()
        # One lexsort produces the transposed arcs already grouped by
        # new source (old dst) *and* sorted within each adjacency run —
        # no per-vertex re-sort pass.  Stability keeps parallel arcs'
        # weights paired in their original relative order.
        order = np.lexsort((sources, self.col_idx))
        new_ptr = np.zeros(self.num_vertices + 1, dtype=OFFSET_DTYPE)
        if self.col_idx.size:
            new_ptr[1:] = np.bincount(
                self.col_idx, minlength=self.num_vertices
            )
        np.cumsum(new_ptr, out=new_ptr)
        return CSRGraph(
            row_ptr=new_ptr,
            col_idx=sources[order],
            weights=self.weights[order] if self.weights is not None else None,
            directed=True,
            sorted_adjacency=True,
        )
