"""Total-order edge orientation.

Triangle counting (in both programming models) relies on a total ordering
of the vertices: the paper defines a triangle as a triple v_i, v_j, v_k
with i < j < k so that each triangle is counted exactly once (§V).  This
module orients an undirected graph's arcs along an ordering, producing a
DAG in CSR form whose adjacency lists hold only higher-ranked neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import OFFSET_DTYPE, CSRGraph

__all__ = ["ascending_orientation", "degree_orientation"]


def ascending_orientation(graph: CSRGraph) -> CSRGraph:
    """Keep only arcs u→v with ``u < v`` (vertex-id total order).

    This is the ordering the paper's Algorithm 3 uses.  Input must be an
    undirected (symmetric) graph.
    """
    if graph.directed:
        raise ValueError("orientation requires an undirected graph")
    src = graph.arc_sources()
    keep = src < graph.col_idx
    return _filtered_dag(graph, keep)


def degree_orientation(graph: CSRGraph) -> CSRGraph:
    """Keep only arcs u→v where u precedes v in (degree, id) order.

    Orienting by degree sends hub work to low-degree endpoints and bounds
    out-degrees by O(sqrt(m)) on scale-free graphs; the ablation bench
    compares it against the paper's plain id order.
    """
    if graph.directed:
        raise ValueError("orientation requires an undirected graph")
    deg = graph.degrees()
    src = graph.arc_sources()
    dst = graph.col_idx
    keep = (deg[src] < deg[dst]) | ((deg[src] == deg[dst]) & (src < dst))
    return _filtered_dag(graph, keep)


def _filtered_dag(graph: CSRGraph, keep: np.ndarray) -> CSRGraph:
    src = graph.arc_sources()[keep]
    dst = graph.col_idx[keep]
    row_ptr = np.zeros(graph.num_vertices + 1, dtype=OFFSET_DTYPE)
    if src.size:
        row_ptr[1:] = np.bincount(src, minlength=graph.num_vertices)
    np.cumsum(row_ptr, out=row_ptr)
    # Arcs were already grouped by src and sorted by dst in the input CSR,
    # and boolean filtering preserves order, so adjacency stays sorted.
    return CSRGraph(
        row_ptr=row_ptr,
        col_idx=dst,
        weights=graph.weights[keep] if graph.weights is not None else None,
        directed=True,
        sorted_adjacency=graph.sorted_adjacency,
    )
