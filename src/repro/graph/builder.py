"""Graph construction: edge lists → :class:`~repro.graph.csr.CSRGraph`.

The builder performs the normalization GraphCT's loaders perform before a
graph is served to kernels: self-loop removal, duplicate-edge removal,
symmetrization for undirected graphs, and per-vertex adjacency sorting.
All steps are vectorized; construction of the paper-scale miniature
(scale-14 RMAT, ~half a million arcs) takes milliseconds.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.csr import OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE, CSRGraph

__all__ = ["GraphBuilder", "from_edge_array", "from_edge_list"]


def _as_edge_array(edges: Iterable[Sequence[int]]) -> np.ndarray:
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return np.empty((0, 2), dtype=VERTEX_DTYPE)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array of vertex pairs")
    return arr.astype(VERTEX_DTYPE, copy=False)


def from_edge_array(
    edges: np.ndarray,
    num_vertices: int | None = None,
    *,
    weights: np.ndarray | None = None,
    directed: bool = False,
    remove_self_loops: bool = True,
    deduplicate: bool = True,
) -> CSRGraph:
    """Build a CSR graph from an ``(m, 2)`` integer edge array.

    Parameters
    ----------
    edges:
        ``(m, 2)`` array; row ``(u, v)`` is an edge.  For undirected graphs
        each input edge is stored in both directions.
    num_vertices:
        Total vertex count.  Defaults to ``edges.max() + 1`` (isolated
        trailing vertices must be declared explicitly).
    weights:
        Optional length-``m`` weight vector, one entry per input edge.
    directed:
        Keep arcs as given instead of symmetrizing.
    remove_self_loops:
        Drop ``(v, v)`` edges (GraphCT kernels assume simple graphs).
    deduplicate:
        Collapse repeated arcs.  RMAT emits duplicates by design, so the
        generators rely on this.  For weighted graphs the *first* weight of
        a duplicate group is kept.
    """
    edges = _as_edge_array(edges)
    if weights is not None:
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
        if weights.shape != (edges.shape[0],):
            raise ValueError("weights must have one entry per input edge")

    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if edges.size else 0
    if edges.size and (edges.min() < 0 or edges.max() >= num_vertices):
        raise ValueError("edge endpoints out of range for num_vertices")

    src = edges[:, 0]
    dst = edges[:, 1]

    if remove_self_loops and src.size:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if weights is not None:
            weights = weights[keep]

    if not directed and src.size:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if weights is not None:
            weights = np.concatenate([weights, weights])

    # Sort arcs by (src, dst); this both groups adjacency lists and sorts
    # them, so sorted_adjacency holds for free.
    if src.size:
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if weights is not None:
            weights = weights[order]
        if deduplicate:
            uniq = np.empty(src.size, dtype=bool)
            uniq[0] = True
            np.logical_or(src[1:] != src[:-1], dst[1:] != dst[:-1], out=uniq[1:])
            src, dst = src[uniq], dst[uniq]
            if weights is not None:
                weights = weights[uniq]

    row_ptr = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
    if src.size:
        row_ptr[1:] = np.bincount(src, minlength=num_vertices)
    np.cumsum(row_ptr, out=row_ptr)

    return CSRGraph(
        row_ptr=row_ptr,
        col_idx=dst,
        weights=weights,
        directed=directed,
        sorted_adjacency=True,
    )


def from_edge_list(
    edges: Iterable[tuple[int, int]],
    num_vertices: int | None = None,
    **kwargs,
) -> CSRGraph:
    """Convenience wrapper over :func:`from_edge_array` for Python iterables."""
    return from_edge_array(_as_edge_array(edges), num_vertices, **kwargs)


class GraphBuilder:
    """Incremental edge accumulator with a :meth:`build` finalizer.

    Useful when edges arrive in batches (file readers, streaming examples).
    Batches are buffered as arrays and concatenated once at build time, so
    accumulation stays O(total edges).

    Example
    -------
    >>> b = GraphBuilder(num_vertices=4)
    >>> b.add_edge(0, 1)
    >>> b.add_edges([(1, 2), (2, 3)])
    >>> g = b.build()
    >>> g.num_edges
    3
    """

    def __init__(self, num_vertices: int | None = None, *, directed: bool = False):
        self.num_vertices = num_vertices
        self.directed = directed
        self._chunks: list[np.ndarray] = []
        self._weight_chunks: list[np.ndarray] = []
        self._weighted: bool | None = None

    def add_edge(self, u: int, v: int, weight: float | None = None) -> None:
        """Append a single edge (slow path; prefer :meth:`add_edges`)."""
        self.add_edges(
            [(u, v)], weights=None if weight is None else [weight]
        )

    def add_edges(
        self,
        edges: Iterable[Sequence[int]],
        weights: Sequence[float] | None = None,
    ) -> None:
        """Append a batch of edges (optionally weighted)."""
        arr = _as_edge_array(edges)
        weighted = weights is not None
        if self._weighted is None:
            self._weighted = weighted
        elif self._weighted != weighted:
            raise ValueError("cannot mix weighted and unweighted batches")
        self._chunks.append(arr)
        if weighted:
            w = np.asarray(weights, dtype=WEIGHT_DTYPE)
            if w.shape != (arr.shape[0],):
                raise ValueError("weights must have one entry per edge")
            self._weight_chunks.append(w)

    @property
    def num_buffered_edges(self) -> int:
        return sum(c.shape[0] for c in self._chunks)

    def build(self, **kwargs) -> CSRGraph:
        """Finalize into a CSR graph; the builder may be reused afterwards."""
        if self._chunks:
            edges = np.concatenate(self._chunks, axis=0)
        else:
            edges = np.empty((0, 2), dtype=VERTEX_DTYPE)
        weights = (
            np.concatenate(self._weight_chunks) if self._weight_chunks else None
        )
        return from_edge_array(
            edges,
            self.num_vertices,
            weights=weights,
            directed=self.directed,
            **kwargs,
        )
