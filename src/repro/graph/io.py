"""Graph file input/output.

GraphCT provides "graph data-file input and output" as part of its
workflow surface; this module reproduces the useful subset:

* whitespace-separated edge-list text (optionally weighted, ``#`` comments),
* a binary ``.npz`` snapshot of the CSR arrays (fast reload of built graphs),
* a DIMACS(9)-style reader (``p sp N M`` header, ``a u v w`` arc lines,
  1-indexed) because public shortest-path instances ship in it.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import VERTEX_DTYPE, WEIGHT_DTYPE, CSRGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "save_graph",
    "load_graph",
    "read_dimacs",
]

_SNAPSHOT_FORMAT_VERSION = 1


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write unique edges as ``u v [w]`` lines.

    Undirected graphs are written one line per logical edge (u <= v);
    directed graphs one line per arc.
    """
    path = Path(path)
    src = graph.arc_sources()
    dst = graph.col_idx
    w = graph.weights
    if not graph.directed:
        keep = src <= dst
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]
    with path.open("w", encoding="ascii") as fh:
        fh.write(f"# repro edge list: {graph.num_vertices} vertices\n")
        fh.write(f"# directed={graph.directed} weighted={graph.is_weighted}\n")
        if w is None:
            for u, v in zip(src.tolist(), dst.tolist()):
                fh.write(f"{u} {v}\n")
        else:
            for u, v, ww in zip(src.tolist(), dst.tolist(), w.tolist()):
                fh.write(f"{u} {v} {ww:.17g}\n")


def _parse_vertex(
    token: str, path: Path, lineno: int, num_vertices: int | None
) -> int:
    """Parse one vertex id, reporting ``path:lineno`` on a bad value.

    Invalid ids used to flow through to CSR validation, which fails with
    no indication of *which line* of a million-edge file was bad (or,
    with no ``num_vertices`` bound, silently inflates the vertex count).
    """
    try:
        v = int(token)
    except ValueError:
        raise ValueError(
            f"{path}:{lineno}: vertex id {token!r} is not an integer"
        ) from None
    if v < 0:
        raise ValueError(f"{path}:{lineno}: negative vertex id {v}")
    if num_vertices is not None and v >= num_vertices:
        raise ValueError(
            f"{path}:{lineno}: vertex id {v} out of range "
            f"[0, {num_vertices})"
        )
    return v


def read_edge_list(
    path: str | os.PathLike,
    num_vertices: int | None = None,
    *,
    directed: bool = False,
) -> CSRGraph:
    """Read a ``u v [w]`` edge list (``#`` comments ignored).

    Weighted and unweighted lines must not be mixed.  Vertex ids are
    validated while parsing — negative or (when ``num_vertices`` is
    given) out-of-range ids raise with the offending ``path:lineno``.
    """
    path = Path(path)
    sources: list[int] = []
    targets: list[int] = []
    weights: list[float] = []
    weighted: bool | None = None
    with path.open("r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 2:
                this_weighted = False
            elif len(parts) == 3:
                this_weighted = True
            else:
                raise ValueError(f"{path}:{lineno}: expected 'u v' or 'u v w'")
            if weighted is None:
                weighted = this_weighted
            elif weighted != this_weighted:
                raise ValueError(
                    f"{path}:{lineno}: mixed weighted/unweighted lines"
                )
            sources.append(_parse_vertex(parts[0], path, lineno, num_vertices))
            targets.append(_parse_vertex(parts[1], path, lineno, num_vertices))
            if this_weighted:
                weights.append(float(parts[2]))
    edges = np.column_stack(
        [
            np.asarray(sources, dtype=VERTEX_DTYPE),
            np.asarray(targets, dtype=VERTEX_DTYPE),
        ]
    ) if sources else np.empty((0, 2), dtype=VERTEX_DTYPE)
    w = np.asarray(weights, dtype=WEIGHT_DTYPE) if weighted else None
    return from_edge_array(edges, num_vertices, weights=w, directed=directed)


def save_graph(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Serialize the CSR arrays to a compressed ``.npz`` snapshot."""
    payload = {
        "format_version": np.asarray(_SNAPSHOT_FORMAT_VERSION),
        "row_ptr": graph.row_ptr,
        "col_idx": graph.col_idx,
        "directed": np.asarray(graph.directed),
        "sorted_adjacency": np.asarray(graph.sorted_adjacency),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(Path(path), **payload)


def load_graph(path: str | os.PathLike) -> CSRGraph:
    """Load a snapshot written by :func:`save_graph`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != _SNAPSHOT_FORMAT_VERSION:
            raise ValueError(f"unsupported snapshot version {version}")
        return CSRGraph(
            row_ptr=data["row_ptr"],
            col_idx=data["col_idx"],
            weights=data["weights"] if "weights" in data.files else None,
            directed=bool(data["directed"]),
            sorted_adjacency=bool(data["sorted_adjacency"]),
        )


def read_dimacs(path: str | os.PathLike, *, directed: bool = True) -> CSRGraph:
    """Read a DIMACS shortest-path instance (``p sp``/``a`` lines, 1-indexed).

    Arc endpoints are validated while parsing: ids outside
    ``[1, N]`` (``N`` from the ``p sp`` header, which must precede the
    arc lines) raise with the offending ``path:lineno`` instead of
    failing later in CSR validation without file context.
    """
    path = Path(path)
    num_vertices: int | None = None
    sources: list[int] = []
    targets: list[int] = []
    weights: list[float] = []
    with path.open("r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] == "c":
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise ValueError(f"{path}:{lineno}: expected 'p sp N M'")
                num_vertices = int(parts[2])
                if num_vertices < 0:
                    raise ValueError(
                        f"{path}:{lineno}: negative vertex count "
                        f"{num_vertices}"
                    )
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise ValueError(f"{path}:{lineno}: expected 'a u v w'")
                if num_vertices is None:
                    raise ValueError(
                        f"{path}:{lineno}: arc line before the 'p sp' header"
                    )
                for token in parts[1:3]:
                    v = int(token)
                    if not 1 <= v <= num_vertices:
                        raise ValueError(
                            f"{path}:{lineno}: vertex id {v} out of range "
                            f"[1, {num_vertices}] (DIMACS ids are 1-indexed)"
                        )
                sources.append(int(parts[1]) - 1)
                targets.append(int(parts[2]) - 1)
                weights.append(float(parts[3]))
            else:
                raise ValueError(f"{path}:{lineno}: unknown record '{parts[0]}'")
    if num_vertices is None:
        raise ValueError(f"{path}: missing 'p sp' header")
    edges = np.column_stack(
        [
            np.asarray(sources, dtype=VERTEX_DTYPE),
            np.asarray(targets, dtype=VERTEX_DTYPE),
        ]
    ) if sources else np.empty((0, 2), dtype=VERTEX_DTYPE)
    return from_edge_array(
        edges,
        num_vertices,
        weights=np.asarray(weights, dtype=WEIGHT_DTYPE) if weights else None,
        directed=directed,
    )
