"""A dynamic (streaming) graph structure, STINGER-lite.

The paper's group built STINGER for "streaming graphs" (§II cites their
streaming-analytics line, refs [12], [13]).  This module provides the
minimal dynamic substrate those kernels need: an undirected graph whose
edges arrive and depart in batches, stored as per-vertex blocked
adjacency (amortized O(1) insertion, tombstone-free deletion by swap),
with an O(edges) :meth:`~StreamingGraph.snapshot` into the read-only CSR
form the static kernels consume.

Unlike :class:`~repro.graph.csr.CSRGraph`, neighbour arrays here are
*unsorted* — exactly STINGER's trade-off (fast updates, linear scans) —
so membership tests are O(degree).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import VERTEX_DTYPE, CSRGraph

__all__ = ["StreamingGraph"]

#: Initial per-vertex adjacency capacity; doubles on overflow.
_INITIAL_CAPACITY = 4


class StreamingGraph:
    """An undirected dynamic graph with batch insert/delete.

    Self loops are rejected; duplicate insertions and deletions of
    missing edges are no-ops (returning False), so streams with repeats
    are safe to replay.

    Edges carry no weights: the blocked adjacency stores vertex ids
    only, so :meth:`from_csr` refuses weighted snapshots rather than
    silently dropping their weight array.
    """

    def __init__(self, num_vertices: int):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self._adj = [
            np.empty(_INITIAL_CAPACITY, dtype=VERTEX_DTYPE)
            for _ in range(num_vertices)
        ]
        self._deg = np.zeros(num_vertices, dtype=np.int64)
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self._num_edges

    def degree(self, v: int) -> int:
        self._check(v)
        return int(self._deg[v])

    def degrees(self) -> np.ndarray:
        return self._deg.copy()

    def neighbors(self, v: int) -> np.ndarray:
        """Current neighbours of ``v`` (unsorted; a copy)."""
        self._check(v)
        return self._adj[v][: self._deg[v]].copy()

    def has_edge(self, u: int, v: int) -> bool:
        self._check(u)
        self._check(v)
        if self._deg[u] > self._deg[v]:
            u, v = v, u
        return bool(np.any(self._adj[u][: self._deg[u]] == v))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert {u, v}; returns False when it already exists."""
        self._check(u)
        self._check(v)
        if u == v:
            raise ValueError("self loops are not allowed")
        if self.has_edge(u, v):
            return False
        self._append(u, v)
        self._append(v, u)
        self._num_edges += 1
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete {u, v}; returns False when it is absent."""
        self._check(u)
        self._check(v)
        if u == v or not self.has_edge(u, v):
            return False
        self._remove(u, v)
        self._remove(v, u)
        self._num_edges -= 1
        return True

    def apply_batch(self, insertions=(), deletions=()) -> tuple[int, int]:
        """Apply a batch of updates; returns (applied_ins, applied_del).

        Batching is the streaming model of the group's MTAAP papers:
        updates accumulate and are applied between analysis epochs.
        """
        applied_ins = sum(
            1 for u, v in insertions if self.insert_edge(int(u), int(v))
        )
        applied_del = sum(
            1 for u, v in deletions if self.delete_edge(int(u), int(v))
        )
        return applied_ins, applied_del

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """Freeze the current state into a read-only CSR graph."""
        if self._num_edges == 0:
            return from_edge_array(
                np.empty((0, 2), dtype=VERTEX_DTYPE), self.num_vertices
            )
        sources = []
        targets = []
        for v in range(self.num_vertices):
            nbrs = self._adj[v][: self._deg[v]]
            keep = nbrs > v
            if keep.any():
                kept = nbrs[keep]
                sources.append(np.full(kept.size, v, dtype=VERTEX_DTYPE))
                targets.append(kept)
        edges = np.column_stack(
            [np.concatenate(sources), np.concatenate(targets)]
        )
        return from_edge_array(edges, self.num_vertices)

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "StreamingGraph":
        """Seed a dynamic graph from a static (unweighted) snapshot."""
        if graph.directed:
            raise ValueError("StreamingGraph is undirected")
        if graph.is_weighted:
            raise ValueError(
                "weighted graphs are not supported: StreamingGraph stores "
                "no edge weights, so seeding from this snapshot would "
                "silently drop graph.weights"
            )
        sg = cls(graph.num_vertices)
        src = graph.arc_sources()
        keep = src < graph.col_idx
        for u, v in zip(src[keep].tolist(), graph.col_idx[keep].tolist()):
            sg.insert_edge(u, v)
        return sg

    # ------------------------------------------------------------------
    def _check(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")

    def _append(self, u: int, v: int) -> None:
        block = self._adj[u]
        if self._deg[u] == block.size:
            grown = np.empty(max(block.size * 2, 1), dtype=VERTEX_DTYPE)
            grown[: block.size] = block
            self._adj[u] = grown
            block = grown
        block[self._deg[u]] = v
        self._deg[u] += 1

    def _remove(self, u: int, v: int) -> None:
        d = int(self._deg[u])
        nbrs = self._adj[u][:d]
        pos = int(np.flatnonzero(nbrs == v)[0])
        nbrs[pos] = nbrs[d - 1]  # swap with the last live entry
        self._deg[u] -= 1
