"""Batched ordered-wedge enumeration over an oriented DAG.

Both triangle counters — the shared-memory GraphCT kernel
(:mod:`repro.graphct.triangles`) and the BSP Algorithm 3 rendition
(:mod:`repro.bsp_algorithms.triangles`) — walk the same wedge set: for
every DAG arc ``centre → w``, one wedge per in-neighbour ``u`` of the
centre, closed iff the arc ``u → w`` exists.  The enumeration and the
binary-search closure test live here so the two counters cannot drift;
they differ only in how wedges are *charged* (implicit loop reads vs.
materialized possible-triangle messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_arange

__all__ = ["WEDGE_BATCH", "WedgeIndex", "build_wedge_index", "iter_closed_wedges"]

#: Wedges processed per vectorized batch (bounds peak memory).
WEDGE_BATCH = 4_000_000


@dataclass(frozen=True)
class WedgeIndex:
    """Precomputed wedge structure of an oriented DAG.

    Wedges centred at ``v``: (in-neighbour ``u``) x (out-neighbour ``w``)
    in the orientation, enumerated per *out-arc* so each wedge appears
    exactly once.
    """

    num_vertices: int
    #: DAG arcs as parallel (source, destination) vectors, CSR order.
    dag_src: np.ndarray
    dag_dst: np.ndarray
    #: ``src * n + dst`` — sorted, for O(log m) closure tests.
    arc_keys: np.ndarray
    #: DAG in-degree per vertex (= messages received in BSP superstep 1).
    in_degree: np.ndarray
    #: Wedges enumerated at each out-arc: ``in_degree[dag_src]``.
    wedges_per_arc: np.ndarray
    #: In-adjacency of the DAG: sources of reversed arcs grouped by
    #: destination, with ``rev_ptr`` the per-vertex group offsets.
    rev_src: np.ndarray
    rev_ptr: np.ndarray

    @property
    def total_wedges(self) -> int:
        """Ordered wedges = the BSP algorithm's "possible triangles"."""
        return int(self.wedges_per_arc.sum())


def build_wedge_index(dag: CSRGraph) -> WedgeIndex:
    """Index an oriented DAG (from :mod:`repro.graph.dag`) for wedges."""
    n = dag.num_vertices
    dag_src = dag.arc_sources()
    dag_dst = dag.col_idx
    # (src, dst) is lexicographically sorted in CSR order, so the fused
    # keys are sorted too.
    arc_keys = dag_src * n + dag_dst
    in_degree = (
        np.bincount(dag_dst, minlength=n).astype(np.int64, copy=False)
        if dag_dst.size
        else np.zeros(n, dtype=np.int64)
    )
    rev_order = np.argsort(dag_dst, kind="stable")
    rev_src = dag_src[rev_order]
    rev_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(in_degree, out=rev_ptr[1:])
    return WedgeIndex(
        num_vertices=n,
        dag_src=dag_src,
        dag_dst=dag_dst,
        arc_keys=arc_keys,
        in_degree=in_degree,
        wedges_per_arc=in_degree[dag_src],
        rev_src=rev_src,
        rev_ptr=rev_ptr,
    )


def iter_closed_wedges(
    index: WedgeIndex,
    *,
    batch_size: int = WEDGE_BATCH,
    arc_range: tuple[int, int] | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Enumerate wedges in batches with their closure verdicts.

    Yields ``(u, centre, w, hit)`` per batch: the wedge corners
    ``u < centre < w`` (in the DAG's total order) and a boolean mask —
    ``hit[i]`` iff the arc ``u[i] → w[i]`` exists, i.e. the wedge closes
    into a triangle.  Batches cover the out-arcs in CSR order and are
    sized to roughly ``batch_size`` wedges (always at least one arc, so
    a single pathological hub cannot stall progress).

    ``arc_range=(lo, hi)`` restricts enumeration to the half-open
    out-arc interval ``[lo, hi)``.  Because each wedge belongs to
    exactly one out-arc, a partition of ``[0, num_arcs)`` into disjoint
    ranges partitions the wedge set — the basis of the sharded closure
    scan in :func:`repro.bsp_algorithms.triangles.bsp_count_triangles`.
    """
    dag_src = index.dag_src
    dag_dst = index.dag_dst
    arc_keys = index.arc_keys
    rev_src = index.rev_src
    rev_ptr = index.rev_ptr
    wedges_per_arc = index.wedges_per_arc
    n = index.num_vertices

    if arc_range is None:
        arc_lo, arc_end = 0, int(dag_dst.size)
    else:
        arc_lo, arc_end = int(arc_range[0]), int(arc_range[1])
        if not 0 <= arc_lo <= arc_end <= dag_dst.size:
            raise ValueError(
                f"arc_range {arc_range!r} outside [0, {dag_dst.size}]"
            )

    arc_starts = np.concatenate([[0], np.cumsum(wedges_per_arc)])
    while arc_lo < arc_end:
        arc_hi = int(
            np.searchsorted(arc_starts, arc_starts[arc_lo] + batch_size, "right")
        ) - 1
        arc_hi = min(max(arc_hi, arc_lo + 1), arc_end)
        sel = slice(arc_lo, arc_hi)
        counts = wedges_per_arc[sel]
        if counts.sum():
            centre = np.repeat(dag_src[sel], counts)
            w = np.repeat(dag_dst[sel], counts)
            u_pos = np.repeat(rev_ptr[dag_src[sel]], counts) + _ragged_arange(
                counts
            )
            u = rev_src[u_pos]
            keys = u * n + w
            # counts.sum() > 0 implies the DAG has arcs, so arc_keys is
            # non-empty here and clamping the insertion point is safe.
            pos = np.minimum(np.searchsorted(arc_keys, keys), arc_keys.size - 1)
            hit = arc_keys[pos] == keys
            yield u, centre, w, hit
        arc_lo = arc_hi
