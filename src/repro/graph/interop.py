"""networkx interoperability.

The library has no hard dependency on networkx (the kernels are all
self-contained), but downstream users — and this repository's own test
oracles — often want to cross between the two worlds.  These helpers
import networkx lazily and raise a clear error when it is missing.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import VERTEX_DTYPE, WEIGHT_DTYPE, CSRGraph

__all__ = ["to_networkx", "from_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment-specific
        raise ImportError(
            "networkx is required for graph interop; "
            "install with `pip install repro[test]`"
        ) from exc
    return networkx


def to_networkx(graph: CSRGraph):
    """Convert a CSR graph to ``networkx.Graph`` / ``DiGraph``.

    Vertex ids become node labels 0..n-1 (isolated vertices included);
    weights transfer to the ``weight`` edge attribute.
    """
    nx = _require_networkx()
    out = nx.DiGraph() if graph.directed else nx.Graph()
    out.add_nodes_from(range(graph.num_vertices))
    src = graph.arc_sources()
    dst = graph.col_idx
    if graph.directed:
        keep = np.ones(src.size, dtype=bool)
    else:
        keep = src <= dst
    if graph.weights is not None:
        out.add_weighted_edges_from(
            zip(
                src[keep].tolist(),
                dst[keep].tolist(),
                graph.weights[keep].tolist(),
            )
        )
    else:
        out.add_edges_from(zip(src[keep].tolist(), dst[keep].tolist()))
    return out


def from_networkx(nx_graph) -> CSRGraph:
    """Convert a networkx graph with integer-labelled nodes to CSR.

    Node labels must be integers in ``[0, n)``; relabel with
    ``networkx.convert_node_labels_to_integers`` first if they are not.
    An edge ``weight`` attribute, when present on every edge, transfers
    to the CSR weights array.
    """
    _require_networkx()
    nodes = list(nx_graph.nodes())
    if nodes and not all(
        isinstance(v, (int, np.integer)) and 0 <= v < len(nodes)
        for v in nodes
    ):
        raise ValueError(
            "node labels must be integers in [0, n); use "
            "networkx.convert_node_labels_to_integers first"
        )
    n = len(nodes)
    edges = list(nx_graph.edges(data=True))
    if edges:
        pairs = np.asarray(
            [(u, v) for u, v, _ in edges], dtype=VERTEX_DTYPE
        )
        if all("weight" in data for _, _, data in edges):
            weights = np.asarray(
                [data["weight"] for _, _, data in edges],
                dtype=WEIGHT_DTYPE,
            )
        else:
            weights = None
    else:
        pairs = np.empty((0, 2), dtype=VERTEX_DTYPE)
        weights = None
    return from_edge_array(
        pairs, n, weights=weights, directed=nx_graph.is_directed()
    )
