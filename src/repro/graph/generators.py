"""Synthetic graph generators.

The paper's experiments run on an undirected, scale-free **RMAT** graph
(Chakrabarti, Zhan & Faloutsos, SDM 2004) with 16M vertices and 268M edges
— i.e. Graph500 scale 24 with edge factor 16 and the standard quadrant
probabilities a=0.57, b=0.19, c=0.19, d=0.05.  :func:`rmat` reproduces that
generator exactly (recursive quadrant descent with per-level probability
noise disabled by default), vectorized over all edges at once so miniature
paper-scale graphs build in milliseconds.

Also provided: Erdős–Rényi G(n, m), Watts–Strogatz small-world rewiring
(the paper's background cites Watts & Strogatz), Barabási–Albert
preferential attachment with optional triad closure (denser-triangle
graphs for the §V density projection), and deterministic test
topologies (stars, rings, paths, grids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import VERTEX_DTYPE, CSRGraph

__all__ = [
    "RMATParameters",
    "GRAPH500_RMAT",
    "barabasi_albert",
    "rmat",
    "rmat_edges",
    "erdos_renyi",
    "watts_strogatz",
    "star_graph",
    "ring_graph",
    "path_graph",
    "two_d_grid",
]


@dataclass(frozen=True)
class RMATParameters:
    """RMAT quadrant probabilities and sizing.

    ``scale`` gives ``n = 2**scale`` vertices; ``edge_factor`` gives
    ``m = edge_factor * n`` generated edge pairs (before dedup/self-loop
    removal, exactly as Graph500 counts them).
    """

    scale: int = 14
    edge_factor: int = 16
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ValueError("scale must be non-negative")
        if self.edge_factor <= 0:
            raise ValueError("edge_factor must be positive")
        probs = (self.a, self.b, self.c, self.d)
        if any(p < 0 for p in probs):
            raise ValueError("quadrant probabilities must be non-negative")
        if not np.isclose(sum(probs), 1.0, atol=1e-9):
            raise ValueError("quadrant probabilities must sum to 1")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edge_pairs(self) -> int:
        return self.edge_factor * self.num_vertices


#: The exact parameterization used by the paper (and Graph500): scale 24 in
#: the paper; scale 14 is this reproduction's default miniature.
GRAPH500_RMAT = RMATParameters()


def rmat_edges(
    params: RMATParameters,
    seed: int | np.random.Generator = 1,
) -> np.ndarray:
    """Generate the raw RMAT edge pair array, duplicates and loops included.

    Each edge independently descends ``scale`` levels of the recursive 2x2
    adjacency-matrix partition; at each level one quadrant is chosen with
    probabilities (a, b, c, d), contributing one bit to each endpoint id.
    All edges are drawn simultaneously: the loop below runs ``scale`` times
    over vectors of length ``m`` rather than ``m`` times over ``scale``.

    Returns an ``(m, 2)`` int64 array.
    """
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    m = params.num_edge_pairs
    src = np.zeros(m, dtype=VERTEX_DTYPE)
    dst = np.zeros(m, dtype=VERTEX_DTYPE)
    ab = params.a + params.b
    a_frac = params.a / ab if ab > 0 else 0.0
    cd = params.c + params.d
    c_frac = params.c / cd if cd > 0 else 0.0
    for _ in range(params.scale):
        r_row = rng.random(m)
        r_col = rng.random(m)
        # Row bit: 1 with probability c + d (lower half of the matrix).
        row_bit = r_row >= ab
        # Column bit depends on which half the row landed in.
        col_threshold = np.where(row_bit, c_frac, a_frac)
        col_bit = r_col >= col_threshold
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit
    return np.column_stack([src, dst])


def rmat(
    scale: int = 14,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    d: float = 0.05,
    seed: int | np.random.Generator = 1,
    directed: bool = False,
) -> CSRGraph:
    """Generate a simple RMAT graph ready for the kernels.

    Matches the paper's input recipe: generate ``edge_factor * 2**scale``
    RMAT pairs, drop self loops and duplicates, and symmetrize (the paper's
    graphs are undirected).  Note the resulting unique-edge count is below
    the nominal ``edge_factor * n`` because RMAT repeats hot edges; the
    paper's "268 million edges" counts generated pairs the same way.
    """
    params = RMATParameters(scale=scale, edge_factor=edge_factor, a=a, b=b, c=c, d=d)
    edges = rmat_edges(params, seed)
    return from_edge_array(edges, params.num_vertices, directed=directed)


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int | np.random.Generator = 1,
    directed: bool = False,
) -> CSRGraph:
    """G(n, m)-style random graph: ``num_edges`` uniform pairs, then dedup."""
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    pairs = rng.integers(0, num_vertices, size=(num_edges, 2), dtype=VERTEX_DTYPE)
    return from_edge_array(pairs, num_vertices, directed=directed)


def watts_strogatz(
    num_vertices: int,
    k: int = 4,
    rewire_prob: float = 0.1,
    *,
    seed: int | np.random.Generator = 1,
) -> CSRGraph:
    """Watts–Strogatz small-world graph (ring lattice + random rewiring).

    Each vertex starts connected to its ``k`` nearest ring neighbours
    (``k`` must be even); each lattice edge's far endpoint is rewired to a
    uniform random vertex with probability ``rewire_prob``.
    """
    if k % 2 or k <= 0:
        raise ValueError("k must be a positive even integer")
    if k >= num_vertices:
        raise ValueError("k must be smaller than num_vertices")
    if not 0.0 <= rewire_prob <= 1.0:
        raise ValueError("rewire_prob must be in [0, 1]")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    v = np.arange(num_vertices, dtype=VERTEX_DTYPE)
    src_parts = []
    dst_parts = []
    for offset in range(1, k // 2 + 1):
        src_parts.append(v)
        dst_parts.append((v + offset) % num_vertices)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    rewire = rng.random(src.size) < rewire_prob
    dst = dst.copy()
    dst[rewire] = rng.integers(
        0, num_vertices, size=int(rewire.sum()), dtype=VERTEX_DTYPE
    )
    return from_edge_array(np.column_stack([src, dst]), num_vertices)


def barabasi_albert(
    num_vertices: int,
    attachments: int = 8,
    *,
    seed: int | np.random.Generator = 1,
    closure_prob: float = 0.0,
) -> CSRGraph:
    """Preferential-attachment scale-free graph (Barabási–Albert).

    Each new vertex attaches to ``attachments`` existing vertices chosen
    proportionally to degree (sampled from the endpoint-repetition
    list, the standard O(m) trick).  ``closure_prob`` adds Holme–Kim
    triad closure: after each preferential attachment, with this
    probability the next link goes to a random neighbour of the previous
    target, closing a triangle.  The paper's §V notes RMAT graphs carry
    far fewer triangles than real networks and that the BSP triangle
    algorithm's message volume "will grow quickly with a higher triangle
    density" — this generator provides the denser graphs to test that
    projection.
    """
    if attachments < 1:
        raise ValueError("attachments must be >= 1")
    if num_vertices <= attachments:
        raise ValueError("num_vertices must exceed attachments")
    if not 0.0 <= closure_prob <= 1.0:
        raise ValueError("closure_prob must be in [0, 1]")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    sources: list[int] = []
    targets: list[int] = []
    adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
    # Endpoint-repetition list: each endpoint appears once per incident
    # edge, so uniform sampling is degree-proportional.
    repeated: list[int] = list(range(attachments))
    for v in range(attachments, num_vertices):
        chosen: set[int] = set()
        last_target: int | None = None
        while len(chosen) < attachments:
            if (
                closure_prob > 0.0
                and last_target is not None
                and rng.random() < closure_prob
            ):
                # Triad closure: link to a neighbour of the last target.
                neighbours = adjacency[last_target]
                candidates = [w for w in neighbours if w not in chosen
                              and w != v]
                if candidates:
                    pick = int(candidates[rng.integers(len(candidates))])
                    chosen.add(pick)
                    last_target = pick
                    continue
            pick = int(repeated[rng.integers(len(repeated))])
            if pick != v and pick not in chosen:
                chosen.add(pick)
                last_target = pick
        for w in chosen:
            sources.append(v)
            targets.append(w)
            adjacency[v].append(w)
            adjacency[w].append(v)
            repeated.extend((v, w))
    edges = np.column_stack(
        [
            np.asarray(sources, dtype=VERTEX_DTYPE),
            np.asarray(targets, dtype=VERTEX_DTYPE),
        ]
    )
    return from_edge_array(edges, num_vertices)


def star_graph(num_leaves: int) -> CSRGraph:
    """Hub vertex 0 connected to ``num_leaves`` leaves (maximal degree skew)."""
    if num_leaves < 0:
        raise ValueError("num_leaves must be non-negative")
    leaves = np.arange(1, num_leaves + 1, dtype=VERTEX_DTYPE)
    edges = np.column_stack([np.zeros_like(leaves), leaves])
    return from_edge_array(edges, num_leaves + 1)


def ring_graph(num_vertices: int) -> CSRGraph:
    """Cycle on ``num_vertices`` vertices (diameter n/2 — the BSP worst case)."""
    if num_vertices < 3:
        raise ValueError("a ring needs at least 3 vertices")
    v = np.arange(num_vertices, dtype=VERTEX_DTYPE)
    edges = np.column_stack([v, (v + 1) % num_vertices])
    return from_edge_array(edges, num_vertices)


def path_graph(num_vertices: int) -> CSRGraph:
    """Simple path 0-1-...-(n-1)."""
    if num_vertices < 1:
        raise ValueError("a path needs at least 1 vertex")
    v = np.arange(num_vertices - 1, dtype=VERTEX_DTYPE)
    edges = np.column_stack([v, v + 1])
    return from_edge_array(edges, num_vertices)


def two_d_grid(rows: int, cols: int) -> CSRGraph:
    """rows x cols 4-neighbour grid (large-diameter planar test topology)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    idx = np.arange(rows * cols, dtype=VERTEX_DTYPE).reshape(rows, cols)
    horiz = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    vert = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    edges = np.concatenate([horiz, vert], axis=0)
    return from_edge_array(edges, rows * cols)
