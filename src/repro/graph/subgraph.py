"""Subgraph extraction (a GraphCT workflow utility).

GraphCT workflows chain kernels through utilities like "extract the
subgraph induced by these vertices"; e.g. the betweenness example in the
GraphCT paper first extracts the giant component.  Extraction relabels the
kept vertices to a dense 0..k-1 id space and returns the mapping.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.csr import VERTEX_DTYPE, CSRGraph
from repro.graph.properties import _label_components

__all__ = ["extract_subgraph", "largest_component_subgraph"]


def extract_subgraph(
    graph: CSRGraph,
    vertices: Sequence[int] | np.ndarray,
) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on ``vertices``.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    original id of subgraph vertex ``i``.  Duplicate ids are collapsed;
    order of ``original_ids`` is ascending original id.
    """
    keep_ids = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
    if keep_ids.size and (
        keep_ids[0] < 0 or keep_ids[-1] >= graph.num_vertices
    ):
        raise IndexError("vertex id out of range")
    keep_mask = np.zeros(graph.num_vertices, dtype=bool)
    keep_mask[keep_ids] = True
    remap = np.full(graph.num_vertices, -1, dtype=VERTEX_DTYPE)
    remap[keep_ids] = np.arange(keep_ids.size, dtype=VERTEX_DTYPE)

    src = graph.arc_sources()
    dst = graph.col_idx
    arc_keep = keep_mask[src] & keep_mask[dst]
    if not graph.directed:
        # Each undirected edge is stored as two arcs; keep only u <= v to
        # avoid double-counting, the builder re-symmetrizes.
        arc_keep &= src <= dst
    edges = np.column_stack([remap[src[arc_keep]], remap[dst[arc_keep]]])
    weights = graph.weights[arc_keep] if graph.weights is not None else None
    sub = from_edge_array(
        edges,
        keep_ids.size,
        weights=weights,
        directed=graph.directed,
        remove_self_loops=False,
        deduplicate=False,
    )
    return sub, keep_ids


def largest_component_subgraph(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph of the largest connected component."""
    labels = _label_components(graph)
    values, counts = np.unique(labels, return_counts=True)
    giant = values[np.argmax(counts)]
    return extract_subgraph(graph, np.flatnonzero(labels == giant))
