"""Graph property utilities (degree statistics, reachability, symmetry).

These are the small "workflow" helpers GraphCT exposes around its kernels.
They are also used internally by the experiment harness, e.g. to pick a BFS
source inside the giant component and to report the degree skew that drives
the paper's analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "is_symmetric",
    "reachable_from",
    "connected_component_sizes",
    "giant_component_vertex",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree distribution."""

    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    isolated_vertices: int
    #: Ratio max/mean — the skew measure the paper's load-balance discussion
    #: is about (scale-free graphs have a handful of very high degrees).
    skew: float


def degree_statistics(graph: CSRGraph) -> DegreeStatistics:
    """Compute degree summary statistics."""
    deg = graph.degrees()
    if deg.size == 0:
        return DegreeStatistics(0, 0, 0.0, 0.0, 0, 0.0)
    mean = float(deg.mean())
    return DegreeStatistics(
        min_degree=int(deg.min()),
        max_degree=int(deg.max()),
        mean_degree=mean,
        median_degree=float(np.median(deg)),
        isolated_vertices=int(np.count_nonzero(deg == 0)),
        skew=float(deg.max()) / mean if mean > 0 else 0.0,
    )


def is_symmetric(graph: CSRGraph) -> bool:
    """True when for every stored arc u→v the reverse arc v→u is stored."""
    src = graph.arc_sources()
    dst = graph.col_idx
    forward = np.lexsort((dst, src))
    backward = np.lexsort((src, dst))
    return bool(
        np.array_equal(src[forward], dst[backward])
        and np.array_equal(dst[forward], src[backward])
    )


def reachable_from(graph: CSRGraph, source: int) -> np.ndarray:
    """Boolean mask of vertices reachable from ``source`` (frontier sweep)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range")
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    while frontier.size:
        starts = graph.row_ptr[frontier]
        stops = graph.row_ptr[frontier + 1]
        counts = stops - starts
        if counts.sum() == 0:
            break
        # Gather all neighbours of the frontier in one shot.
        offsets = np.repeat(starts, counts) + _ragged_arange(counts)
        nbrs = graph.col_idx[offsets]
        new = nbrs[~visited[nbrs]]
        if new.size == 0:
            break
        new = np.unique(new)
        visited[new] = True
        frontier = new
    return visited


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(c)`` for each count ``c`` without Python loops.

    For counts ``[2, 0, 3]`` returns ``[0, 1, 0, 1, 2]``.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Standard trick: fill with ones, then set the first element of each run
    # to (1 - previous run length) so the cumulative sum restarts at zero.
    out = np.ones(total, dtype=np.int64)
    nonzero = counts > 0
    run_lengths = counts[nonzero]
    run_starts = np.concatenate([[0], np.cumsum(run_lengths)[:-1]])
    out[run_starts[0]] = 0
    if run_starts.size > 1:
        out[run_starts[1:]] = 1 - run_lengths[:-1]
    return np.cumsum(out)


def connected_component_sizes(graph: CSRGraph) -> np.ndarray:
    """Sizes of connected components, descending.

    Implemented with repeated pointer-jumping label propagation (independent
    of the instrumented kernels in :mod:`repro.graphct`, so it can serve as
    a lightweight oracle for utilities like subgraph extraction).
    """
    labels = _label_components(graph)
    _, counts = np.unique(labels, return_counts=True)
    return np.sort(counts)[::-1]


def giant_component_vertex(graph: CSRGraph) -> int:
    """A vertex inside the largest connected component.

    The experiment harness uses this to pick BFS sources that reach the
    bulk of the graph (the paper traverses "the entire graph" from one
    source, which requires the source to be in the giant component).
    """
    labels = _label_components(graph)
    values, counts = np.unique(labels, return_counts=True)
    giant = values[np.argmax(counts)]
    return int(np.flatnonzero(labels == giant)[0])


def peripheral_vertex(graph: CSRGraph, hops: int = 2) -> int:
    """A low-eccentricity-complement vertex: far from the giant hub.

    Runs ``hops`` sweeps of the double-BFS heuristic inside the giant
    component, returning a vertex on the last discovered frontier.  BFS
    from such a vertex exhibits the full frontier ramp-up/apex/contraction
    profile of the paper's Figures 2 and 3 (a hub source collapses the
    level structure to 3-4 levels).
    """
    start = giant_component_vertex(graph)
    current = start
    for _ in range(max(hops, 1)):
        dist = _bfs_distances(graph, current)
        reachable = dist >= 0
        far = int(dist[reachable].max())
        candidates = np.flatnonzero(reachable & (dist == far))
        # Prefer a low-degree peripheral vertex (deterministic pick).
        degrees = graph.degrees()[candidates]
        nxt = int(candidates[np.argmin(degrees)])
        if nxt == current:
            break
        current = nxt
    return current


def _bfs_distances(graph: CSRGraph, source: int) -> np.ndarray:
    dist = np.full(graph.num_vertices, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        starts = graph.row_ptr[frontier]
        counts = graph.row_ptr[frontier + 1] - starts
        if counts.sum() == 0:
            break
        offsets = np.repeat(starts, counts) + _ragged_arange(counts)
        nbrs = graph.col_idx[offsets]
        new = np.unique(nbrs[dist[nbrs] < 0])
        if not new.size:
            break
        level += 1
        dist[new] = level
        frontier = new
    return dist


def _label_components(graph: CSRGraph) -> np.ndarray:
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    src = graph.arc_sources()
    dst = graph.col_idx
    while True:
        # Hook: each arc pulls its endpoints to the smaller label.
        smaller = np.minimum(labels[src], labels[dst])
        new_labels = labels.copy()
        np.minimum.at(new_labels, src, smaller)
        np.minimum.at(new_labels, dst, smaller)
        # Compress: pointer jumping until labels are fixpoints.
        while True:
            jumped = new_labels[new_labels]
            if np.array_equal(jumped, new_labels):
                break
            new_labels = jumped
        if np.array_equal(new_labels, labels):
            return labels
        labels = new_labels
