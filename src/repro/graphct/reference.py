"""Reference kernels written against the XMT synchronization primitives.

The vectorized kernels in this package compute whole iterations as array
programs; these reference implementations instead spell out the XMT-C
idioms the paper's code uses — ``int_fetch_add`` work queues,
full/empty-bit locks — against the functional simulations in
:mod:`repro.xmt.memory`.  They exist to (a) document what the original
loop bodies look like, (b) exercise the primitives end-to-end, and (c)
cross-validate the vectorized kernels through a completely independent
code path.  They run one logical thread (Python), so they are for small
graphs and tests, not benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.runtime.counters import OpCounter
from repro.xmt.memory import AtomicCounter, FullEmptyArray

__all__ = ["reference_bfs", "reference_connected_components"]


def reference_bfs(
    graph: CSRGraph, source: int
) -> tuple[np.ndarray, OpCounter]:
    """Level-synchronous BFS with a fetch-and-add work queue.

    The XMT idiom (Bader & Madduri): the next-level queue's tail is an
    atomic counter; each thread reserves a slot per discovered vertex
    with ``int_fetch_add``.  Vertex colours are full/empty words: a
    vertex is claimed by the first thread to ``readfe`` its colour word
    while it is marked unvisited — here serialized, but the operation
    sequence (and the op counts) are the real kernel's.

    Returns ``(distances, op_counter)``.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    ops = OpCounter()
    # Colour words: -1 = unvisited; distance otherwise.  All start full.
    colour = FullEmptyArray(n, fill=-1, counter=ops)
    queue = np.full(n, -1, dtype=np.int64)
    tail = AtomicCounter(counter=ops)

    colour.write_xf(source, 0)
    queue[tail.fetch_add(1)] = source
    head = 0
    level_end = tail.value

    while head < tail.value:
        v = int(queue[head])
        head += 1
        dist_v = colour.readff(v)
        for w in graph.neighbors(v).tolist():
            ops.add(instructions=2, reads=0)
            # Claim: consume the colour word; if unvisited, mark.
            current = colour.readfe(w)
            if current < 0:
                colour.writeef(w, dist_v + 1)
                queue[tail.fetch_add(1)] = w
                ops.add(writes=1)  # queue slot store
            else:
                colour.writeef(w, current)  # put it back unchanged
        if head == level_end:
            level_end = tail.value  # barrier between levels

    distances = colour.snapshot()
    return distances, ops


def reference_connected_components(
    graph: CSRGraph,
) -> tuple[np.ndarray, OpCounter]:
    """Shiloach–Vishkin components with racy-min label updates.

    Each sweep walks every arc and lowers the endpoint labels through a
    full/empty-protected read-modify-write — the serialized equivalent
    of the XMT's synchronized hooking.  A shared fetch-and-add counter
    tracks whether the sweep changed anything (the termination idiom).

    Returns ``(labels, op_counter)``.
    """
    if graph.directed:
        raise ValueError("connected components requires an undirected graph")
    n = graph.num_vertices
    ops = OpCounter()
    labels = FullEmptyArray(n, fill=0, counter=ops)
    for v in range(n):
        labels.write_xf(v, v)

    src = graph.arc_sources()
    dst = graph.col_idx
    while True:
        changes = AtomicCounter(counter=ops)
        for u, w in zip(src.tolist(), dst.tolist()):
            ops.add(instructions=2)
            lu = labels.readff(u)
            lw = labels.readff(w)
            if lw < lu:
                # Lock the word (readfe), re-check, write back (writeef):
                # the full/empty update sequence of the XMT kernel.
                current = labels.readfe(u)
                labels.writeef(u, min(current, lw))
                if lw < current:
                    changes.fetch_add(1)
        # Pointer jumping: label <- label[label], same locking discipline.
        for v in range(n):
            lv = labels.readff(v)
            ll = labels.readff(int(lv))
            if ll < lv:
                current = labels.readfe(v)
                labels.writeef(v, min(current, ll))
                changes.fetch_add(1)
        if changes.value == 0:
            break

    return labels.snapshot(), ops
