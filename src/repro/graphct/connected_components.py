"""Shared-memory connected components (Shiloach–Vishkin style).

The GraphCT algorithm the paper describes (§III): every iteration sweeps
*all* edges; when an endpoint sees a smaller label it adopts it, and —
because labels live in shared memory — the new label "is available to be
read by other threads" *within* the same iteration, so labels propagate
several hops per sweep.  Combined with pointer-jumping compression this is
the classic Shiloach–Vishkin scheme; it converges in a handful of
iterations with *constant work per iteration* (all m edges are re-examined
every time), which is exactly the flat per-iteration profile of Fig. 1's
right panel.

The vectorized emulation below performs, per iteration, an edge-hooking
minimum over all arcs followed by full pointer-jumping compression; the
compression plays the role of the intra-iteration propagation that racy
shared-memory reads provide on the XMT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["ComponentsResult", "connected_components"]


@dataclass
class ComponentsResult:
    """Outcome of a connected-components run."""

    #: Per-vertex component label (the minimum vertex id in the component).
    labels: np.ndarray
    #: Number of connected components.
    num_components: int
    #: Sweeps over the edge set until a fixpoint was reached.
    num_iterations: int
    #: Labels changed per iteration (length ``num_iterations``).
    changes_per_iteration: list[int] = field(default_factory=list)
    #: Instrumented work, one ``cc/iteration`` region per sweep.
    trace: WorkTrace = field(default_factory=WorkTrace)


def connected_components(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    max_iterations: int | None = None,
    compression_rounds: int = 1,
) -> ComponentsResult:
    """Label connected components of an undirected graph.

    Returns labels such that two vertices share a label iff they are
    connected; the label is the smallest vertex id in the component.
    ``compression_rounds`` bounds the pointer-jumping per sweep (1 is the
    classic Shiloach–Vishkin "compress once" schedule).
    """
    if compression_rounds < 1:
        raise ValueError("compression_rounds must be >= 1")
    if graph.directed:
        raise ValueError(
            "connected components requires an undirected (symmetric) graph"
        )
    n = graph.num_vertices
    tracer = Tracer(label="graphct/cc")
    labels = np.arange(n, dtype=np.int64)
    src = graph.arc_sources()
    dst = graph.col_idx

    limit = max_iterations if max_iterations is not None else n + 1
    changes_history: list[int] = []
    iteration = 0
    while iteration < limit:
        with tracer.region(
            "cc/iteration", items=max(graph.num_arcs, 1), iteration=iteration
        ) as r:
            # Hook: every arc pulls both endpoints to the smaller label.
            # (XMT loop over all edges; 2 label reads per arc.)
            hooked = labels.copy()
            arc_min = np.minimum(labels[src], labels[dst])
            np.minimum.at(hooked, src, arc_min)
            np.minimum.at(hooked, dst, arc_min)

            # Compress: a bounded number of pointer-jumping rounds — this
            # emulates the same-iteration label visibility of the racy
            # shared-memory reads on the XMT (labels propagate a few hops
            # per sweep, not to a full fixpoint).
            jumps = 0
            for _ in range(compression_rounds):
                jumped = hooked[hooked]
                jumps += 1
                if np.array_equal(jumped, hooked):
                    break
                hooked = jumped

            changed = int(np.count_nonzero(hooked != labels))
            changes_history.append(changed)

            r.count(
                instructions=graph.num_arcs * costs.edge_visit_instructions,
                reads=2 * graph.num_arcs + jumps * n,
                writes=changed,
            )
            # Termination flag: one shared word, amortized per-thread.
            r.atomics_per_site(1 if changed else 0)

        iteration += 1
        converged = changed == 0
        labels = hooked
        if converged:
            break

    num_components = int(np.unique(labels).size)
    return ComponentsResult(
        labels=labels,
        num_components=num_components,
        num_iterations=iteration,
        changes_per_iteration=changes_history,
        trace=tracer.trace,
    )
