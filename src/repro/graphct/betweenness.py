"""Betweenness centrality (Brandes' algorithm, level-synchronous form).

GraphCT ships parallel betweenness centrality (Madduri, Ediger, Jiang,
Bader & Chavarría-Miranda, MTAAP 2009) with optional source sampling for
approximate scores on massive graphs.  This kernel mirrors that design:
Brandes' forward sweep is the level-synchronous BFS (shortest-path counts
accumulated per level), the backward sweep accumulates dependencies level
by level, and ``num_sources`` selects exact (all sources) or sampled
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_arange
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BetweennessResult", "betweenness_centrality"]


@dataclass
class BetweennessResult:
    """Outcome of a betweenness-centrality computation."""

    #: Per-vertex centrality score (unnormalized Brandes accumulation;
    #: each undirected shortest path is counted from both endpoints).
    scores: np.ndarray
    #: Sources actually processed.
    num_sources: int
    #: True when every vertex served as a source (exact scores).
    exact: bool
    trace: WorkTrace = field(default_factory=WorkTrace)


def betweenness_centrality(
    graph: CSRGraph,
    *,
    num_sources: int | None = None,
    seed: int = 0,
    costs: KernelCosts = DEFAULT_COSTS,
) -> BetweennessResult:
    """Brandes betweenness; sample ``num_sources`` sources when given.

    Sampled scores are scaled by ``n / num_sources`` so they estimate the
    exact accumulation (k-betweenness sampling as in the GraphCT papers).
    """
    n = graph.num_vertices
    if num_sources is not None and not 1 <= num_sources <= n:
        raise ValueError("num_sources must be in [1, num_vertices]")
    tracer = Tracer(label="graphct/betweenness")
    scores = np.zeros(n, dtype=np.float64)

    if num_sources is None or num_sources == n:
        sources = np.arange(n, dtype=np.int64)
        exact = True
    else:
        rng = np.random.default_rng(seed)
        sources = rng.choice(n, size=num_sources, replace=False)
        exact = False

    for source in sources.tolist():
        _accumulate_from(graph, int(source), scores, tracer, costs)

    if not exact and sources.size:
        scores *= n / sources.size

    return BetweennessResult(
        scores=scores,
        num_sources=int(sources.size),
        exact=exact,
        trace=tracer.trace,
    )


def _accumulate_from(
    graph: CSRGraph,
    source: int,
    scores: np.ndarray,
    tracer: Tracer,
    costs: KernelCosts,
) -> None:
    n = graph.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[source] = 0
    sigma[source] = 1.0
    levels: list[np.ndarray] = [np.asarray([source], dtype=np.int64)]

    # Forward sweep: level-synchronous BFS accumulating path counts.
    edges_total = 0
    while levels[-1].size:
        frontier = levels[-1]
        starts = graph.row_ptr[frontier]
        counts = graph.row_ptr[frontier + 1] - starts
        arcs = int(counts.sum())
        edges_total += arcs
        if not arcs:
            break
        offsets = np.repeat(starts, counts) + _ragged_arange(counts)
        nbrs = graph.col_idx[offsets]
        pred_sigma = np.repeat(sigma[frontier], counts)
        depth = dist[frontier[0]] + 1
        undiscovered = dist[nbrs] < 0
        dist[nbrs[undiscovered]] = depth
        on_level = dist[nbrs] == depth
        np.add.at(sigma, nbrs[on_level], pred_sigma[on_level])
        nxt = np.unique(nbrs[undiscovered])
        if not nxt.size:
            break
        levels.append(nxt)

    # Backward sweep: dependency accumulation, deepest level first.
    delta = np.zeros(n, dtype=np.float64)
    for frontier in reversed(levels[1:]):
        starts = graph.row_ptr[frontier]
        counts = graph.row_ptr[frontier + 1] - starts
        offsets = np.repeat(starts, counts) + _ragged_arange(counts)
        nbrs = graph.col_idx[offsets]
        w = np.repeat(frontier, counts)
        # Predecessors of w sit one level above.
        pred = dist[nbrs] == dist[w] - 1
        contrib = (
            sigma[nbrs[pred]]
            / sigma[w[pred]]
            * (1.0 + delta[w[pred]])
        )
        np.add.at(delta, nbrs[pred], contrib)
    delta[source] = 0.0
    scores += delta

    with tracer.region("bc/source", items=max(edges_total, 1)) as r:
        r.count(
            instructions=2 * edges_total * costs.edge_visit_instructions,
            reads=4 * edges_total,
            writes=2 * n,
        )
