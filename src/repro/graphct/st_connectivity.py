"""st-connectivity by bidirectional breadth-first search.

The paper's BFS baseline descends from Bader & Madduri's "Designing
multithreaded algorithms for breadth-first search and st-connectivity on
the Cray MTA-2" (ICPP 2006).  The st-connectivity kernel grows BFS
frontiers from both endpoints, always expanding the smaller frontier,
and stops at the first meeting vertex — touching far fewer edges than a
full single-source BFS on small-world graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_arange
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["STConnectivityResult", "st_connectivity"]


@dataclass
class STConnectivityResult:
    """Outcome of an st-connectivity query."""

    source: int
    target: int
    connected: bool
    #: Length of a shortest s-t path (-1 when disconnected).
    path_length: int
    #: Vertices visited by either search.
    vertices_touched: int
    #: Arcs examined by either search.
    edges_examined: int
    trace: WorkTrace = field(default_factory=WorkTrace)


def st_connectivity(
    graph: CSRGraph,
    source: int,
    target: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
) -> STConnectivityResult:
    """Decide whether ``target`` is reachable from ``source``.

    Requires an undirected graph (bidirectional search assumes the
    reverse edge exists).  Returns the exact shortest-path length.
    """
    if graph.directed:
        raise ValueError("st_connectivity requires an undirected graph")
    n = graph.num_vertices
    for name, v in (("source", source), ("target", target)):
        if not 0 <= v < n:
            raise IndexError(f"{name} {v} out of range [0, {n})")

    tracer = Tracer(label="graphct/st")
    if source == target:
        return STConnectivityResult(
            source=source, target=target, connected=True, path_length=0,
            vertices_touched=1, edges_examined=0, trace=tracer.trace,
        )

    # dist_from[0] = hops from source, dist_from[1] = hops from target.
    dist = np.full((2, n), -1, dtype=np.int64)
    dist[0, source] = 0
    dist[1, target] = 0
    frontiers = [
        np.asarray([source], dtype=np.int64),
        np.asarray([target], dtype=np.int64),
    ]
    depth = [0, 0]
    edges_examined = 0
    round_index = 0
    best = -1

    # Termination: after a first meeting the sum of the two search
    # depths keeps growing; once depth[0] + depth[1] exceeds the best
    # meeting length every undiscovered s-t path is provably longer
    # (first-meeting-only stopping can overshoot by one hop).
    while frontiers[0].size and frontiers[1].size and (
        best < 0 or depth[0] + depth[1] <= best
    ):
        # Expand the cheaper side (fewer incident arcs).
        cost0 = int(
            (graph.row_ptr[frontiers[0] + 1] - graph.row_ptr[frontiers[0]]).sum()
        )
        cost1 = int(
            (graph.row_ptr[frontiers[1] + 1] - graph.row_ptr[frontiers[1]]).sum()
        )
        side = 0 if cost0 <= cost1 else 1
        other = 1 - side
        frontier = frontiers[side]

        with tracer.region(
            "st/expand", items=int(frontier.size), iteration=round_index
        ) as r:
            starts = graph.row_ptr[frontier]
            counts = graph.row_ptr[frontier + 1] - starts
            arcs = int(counts.sum())
            edges_examined += arcs
            if arcs:
                offsets = np.repeat(starts, counts) + _ragged_arange(counts)
                nbrs = graph.col_idx[offsets]
                fresh = np.unique(nbrs[dist[side, nbrs] < 0])
                dist[side, fresh] = depth[side] + 1
                # Meeting test: any newly reached vertex known to the
                # other search closes a path.
                met = fresh[dist[other, fresh] >= 0]
                if met.size:
                    lengths = dist[side, met] + dist[other, met]
                    candidate = int(lengths.min())
                    best = candidate if best < 0 else min(best, candidate)
                frontiers[side] = fresh
            else:
                frontiers[side] = np.empty(0, dtype=np.int64)
            depth[side] += 1
            r.count(
                instructions=arcs * costs.edge_visit_instructions
                + frontier.size * costs.vertex_touch_instructions,
                reads=2 * arcs + frontier.size,
                writes=int(frontiers[side].size),
            )
        round_index += 1

    touched = int(np.count_nonzero((dist[0] >= 0) | (dist[1] >= 0)))
    return STConnectivityResult(
        source=source,
        target=target,
        connected=best >= 0,
        path_length=best,
        vertices_touched=touched,
        edges_examined=edges_examined,
        trace=tracer.trace,
    )
