"""Community detection by label propagation (shared-memory formulation).

GraphCT's authors ship parallel community detection (Riedy, Meyerhenke,
Ediger & Bader, PPAM 2011 — cited in the paper's §II).  This kernel
implements the label-propagation family (Raghavan et al.): each vertex
repeatedly adopts the label carried by the plurality of its neighbours,
with new labels visible *within* a sweep — the same immediate-visibility
property the paper's connected-components discussion highlights for
shared memory.

Ties are broken by a seeded hash of (label, deciding vertex, iteration)
— the deterministic stand-in for LPA's random tie-breaking.  Two naive
alternatives fail structurally: a smallest-label rule floods one label
through each component (with unique initial labels every first-sweep
plurality is a tie), degenerating LPA into connected components; and a
per-label-only hash lets a globally "lucky" label win every tie
simultaneously, with the same epidemic result.

Also provides :func:`modularity`, the standard partition-quality score
used by the tests and the community example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["CommunityResult", "label_propagation_communities", "modularity"]

#: splitmix64-style mixing constants for tie-break jitter.
_MIX1 = np.uint64(0x9E3779B97F4A7C15)
_MIX2 = np.uint64(0xBF58476D1CE4E5B9)


def _tie_jitter(
    labels: np.ndarray,
    iteration: int,
    seed: int,
    context: int | np.ndarray = 0,
) -> np.ndarray:
    """Deterministic pseudo-random value in [0, 1) per (label, context).

    ``context`` (typically the deciding vertex's id) makes tie decisions
    independent across vertices — without it one label's globally lucky
    hash wins every tie simultaneously and floods the graph.
    """
    with np.errstate(over="ignore"):
        x = (
            labels.astype(np.uint64) * _MIX1
            + np.uint64(iteration * 0x1000003 + seed)
        )
        x += np.asarray(context, dtype=np.uint64) * _MIX2
        x = (x + _MIX1) * _MIX2
        x ^= x >> np.uint64(31)
        x *= _MIX1
        x ^= x >> np.uint64(29)
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


@dataclass
class CommunityResult:
    """Outcome of a community-detection run."""

    #: Community label per vertex (a member vertex id).
    labels: np.ndarray
    num_communities: int
    num_iterations: int
    #: Vertices that changed label in each sweep.
    changes_per_iteration: list[int] = field(default_factory=list)
    #: Modularity of the final partition.
    modularity: float = 0.0
    trace: WorkTrace = field(default_factory=WorkTrace)


def modularity(graph: CSRGraph, labels: np.ndarray) -> float:
    """Newman modularity of a partition (undirected graphs).

    ``Q = sum_c [ m_c / m  -  (d_c / 2m)^2 ]`` where ``m_c`` counts
    intra-community edges and ``d_c`` sums member degrees.
    """
    if graph.directed:
        raise ValueError("modularity requires an undirected graph")
    labels = np.asarray(labels)
    if labels.shape != (graph.num_vertices,):
        raise ValueError("labels must have one entry per vertex")
    m = graph.num_edges
    if m == 0:
        return 0.0
    src = graph.arc_sources()
    dst = graph.col_idx
    intra_arcs = int(np.count_nonzero(labels[src] == labels[dst]))
    # Each intra edge is stored as two arcs.
    intra_fraction = (intra_arcs / 2) / m
    _, inverse = np.unique(labels, return_inverse=True)
    degree_sums = np.zeros(inverse.max() + 1)
    np.add.at(degree_sums, inverse, graph.degrees().astype(np.float64))
    expected = float(np.sum((degree_sums / (2.0 * m)) ** 2))
    return intra_fraction - expected


def label_propagation_communities(
    graph: CSRGraph,
    *,
    max_iterations: int = 100,
    seed: int = 0,
    costs: KernelCosts = DEFAULT_COSTS,
) -> CommunityResult:
    """Detect communities by asynchronous label propagation.

    Each sweep visits vertices in index order; a vertex adopts the most
    frequent label among its neighbours (ties broken by the seeded hash
    jitter), and the update is immediately visible to later vertices in
    the same sweep.  Terminates when a sweep changes nothing.
    """
    if graph.directed:
        raise ValueError("community detection requires an undirected graph")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    n = graph.num_vertices
    tracer = Tracer(label="graphct/community")
    labels = np.arange(n, dtype=np.int64)
    row_ptr, col_idx = graph.row_ptr, graph.col_idx

    changes_history: list[int] = []
    iteration = 0
    while iteration < max_iterations:
        with tracer.region(
            "community/sweep", items=max(n, 1), iteration=iteration
        ) as r:
            changed = 0
            for v in range(n):
                lo, hi = int(row_ptr[v]), int(row_ptr[v + 1])
                if lo == hi:
                    continue
                nbr_labels = labels[col_idx[lo:hi]]
                values, counts = np.unique(nbr_labels, return_counts=True)
                score = counts + _tie_jitter(values, iteration, seed, context=v)
                best = int(values[np.argmax(score)])
                # Keep the current label when it is among the top count
                # (stops label thrashing between equivalent choices).
                if labels[v] in values[counts == counts.max()]:
                    best = int(labels[v])
                if best != labels[v]:
                    labels[v] = best
                    changed += 1
            changes_history.append(changed)
            r.count(
                instructions=graph.num_arcs * costs.edge_visit_instructions
                + n * costs.vertex_touch_instructions,
                reads=graph.num_arcs + n,
                writes=changed,
            )
        iteration += 1
        if changed == 0:
            break

    # Canonicalize: each community labelled by its smallest member.
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        labels[members] = members.min()

    return CommunityResult(
        labels=labels,
        num_communities=int(np.unique(labels).size),
        num_iterations=iteration,
        changes_per_iteration=changes_history,
        modularity=modularity(graph, labels),
        trace=tracer.trace,
    )
