"""Maximal independent set (greedy shared-memory formulation).

The companion kernel to the BSP Luby implementation in
:mod:`repro.bsp_algorithms.mis`: the same problem in the two programming
models the paper contrasts.  The shared-memory kernel is the classic
greedy sweep — visit vertices in order, add a vertex when no smaller
neighbour was added — which is exact, deterministic and single-pass, but
inherently sequential along the vertex order (the lexicographically
first MIS is P-complete to parallelize).  Luby's randomized rounds are
the price the parallel model pays; comparing the two is another
instance of the paper's programming-model trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["MISResult", "maximal_independent_set"]


@dataclass
class MISResult:
    """Outcome of a maximal-independent-set computation."""

    #: True where the vertex belongs to the set.
    in_set: np.ndarray
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def size(self) -> int:
        return int(np.count_nonzero(self.in_set))


def maximal_independent_set(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
) -> MISResult:
    """Greedy (lexicographically-first) maximal independent set.

    A vertex joins iff none of its smaller-id neighbours joined — one
    ordered sweep, each edge examined once.
    """
    if graph.directed:
        raise ValueError("MIS requires an undirected graph")
    n = graph.num_vertices
    tracer = Tracer(label="graphct/mis")
    in_set = np.zeros(n, dtype=bool)
    row_ptr, col_idx = graph.row_ptr, graph.col_idx

    with tracer.region("mis/sweep", items=max(n, 1)) as r:
        for v in range(n):
            nbrs = col_idx[row_ptr[v]: row_ptr[v + 1]]
            smaller = nbrs[nbrs < v]
            if not in_set[smaller].any():
                in_set[v] = True
        r.count(
            instructions=graph.num_arcs * costs.edge_visit_instructions
            + n * costs.vertex_touch_instructions,
            reads=graph.num_arcs + n,
            writes=int(in_set.sum()),
        )

    return MISResult(in_set=in_set, trace=tracer.trace)
