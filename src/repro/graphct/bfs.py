"""Shared-memory level-synchronous breadth-first search.

The GraphCT baseline of §IV: the multithreaded level-synchronous BFS of
Bader & Madduri (ICPP 2006).  Each level expands the current frontier in
parallel; a vertex joins the next frontier only if it is *definitively
unmarked*, and only one copy of each vertex is enqueued (the property the
paper contrasts with BSP's speculative messaging).  The next-frontier
queue tail is reserved with atomic fetch-and-adds in thread-local chunks,
which is why the shared-memory queue shows far less contention than the
BSP message queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_arange
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["BFSResult", "breadth_first_search"]

#: Queue slots a thread reserves per fetch-and-add on the shared tail.
#: Chunking is the standard MTA/XMT idiom for low-contention work queues.
QUEUE_CHUNK = 64


@dataclass
class BFSResult:
    """Outcome of a breadth-first search."""

    source: int
    #: Hop distance from the source; -1 for unreachable vertices.
    distances: np.ndarray
    #: BFS-tree parent; -1 for the source and unreachable vertices.
    parents: np.ndarray
    #: Vertices on the frontier at each level (level 0 = the source).
    frontier_sizes: list[int] = field(default_factory=list)
    #: Arcs examined while expanding each level.
    edges_examined: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)

    @property
    def num_levels(self) -> int:
        return len(self.frontier_sizes)

    @property
    def vertices_reached(self) -> int:
        return int(np.count_nonzero(self.distances >= 0))


def breadth_first_search(
    graph: CSRGraph,
    source: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
) -> BFSResult:
    """Level-synchronous BFS from ``source``.

    Works on directed and undirected graphs (follows out-arcs).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")

    tracer = Tracer(label="graphct/bfs")
    distances = np.full(n, -1, dtype=np.int64)
    parents = np.full(n, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    frontier_sizes: list[int] = []
    edges_examined: list[int] = []

    level = 0
    while frontier.size:
        with tracer.region(
            "bfs/level", items=int(frontier.size), iteration=level
        ) as r:
            starts = graph.row_ptr[frontier]
            counts = graph.row_ptr[frontier + 1] - starts
            arcs = int(counts.sum())
            frontier_sizes.append(int(frontier.size))
            edges_examined.append(arcs)

            if arcs:
                offsets = np.repeat(starts, counts) + _ragged_arange(counts)
                nbrs = graph.col_idx[offsets]
                parent_of = np.repeat(frontier, counts)
                fresh = distances[nbrs] < 0
                cand = nbrs[fresh]
                cand_parent = parent_of[fresh]
                # First writer wins, as on the XMT: keep the first
                # occurrence of each newly discovered vertex.
                uniq, first = np.unique(cand, return_index=True)
                distances[uniq] = level + 1
                parents[uniq] = cand_parent[first]
                next_frontier = uniq
            else:
                next_frontier = np.empty(0, dtype=np.int64)

            discovered = int(next_frontier.size)
            r.count(
                instructions=(
                    arcs * costs.edge_visit_instructions
                    + frontier.size * costs.vertex_touch_instructions
                ),
                # one colour check per examined arc + frontier loads
                reads=arcs + frontier.size,
                # distance + parent + queue slot per discovered vertex
                writes=3 * discovered,
            )
            # Chunked tail reservation on one shared counter word.
            r.atomics_per_site(int(np.ceil(discovered / QUEUE_CHUNK)))

        frontier = next_frontier
        level += 1

    return BFSResult(
        source=source,
        distances=distances,
        parents=parents,
        frontier_sizes=frontier_sizes,
        edges_examined=edges_examined,
        trace=tracer.trace,
    )
