"""The GraphCT workflow object.

GraphCT "is designed to enable a workflow of graph analysis algorithms to
be developed through a series of function calls" against one in-memory
graph (paper §II).  :class:`GraphCT` is that surface: construct it around
a graph (or load one from disk) and chain kernels; results are cached by
kernel + parameters so a workflow can re-reference earlier stages.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.graph.csr import CSRGraph
from repro.graph.io import load_graph, read_edge_list
from repro.graph.properties import degree_statistics, giant_component_vertex
from repro.graph.subgraph import extract_subgraph
from repro.graphct.betweenness import betweenness_centrality
from repro.graphct.community import label_propagation_communities
from repro.graphct.diameter import estimate_diameter
from repro.graphct.mis import maximal_independent_set
from repro.graphct.bfs import breadth_first_search
from repro.graphct.connected_components import connected_components
from repro.graphct.kcore import k_core_decomposition
from repro.graphct.pagerank import pagerank
from repro.graphct.sssp import sssp
from repro.graphct.st_connectivity import st_connectivity
from repro.graphct.triangles import clustering_coefficients, count_triangles
from repro.telemetry.core import NULL_TELEMETRY, Telemetry

__all__ = ["GraphCT"]


class GraphCT:
    """A graph analysis workflow over one read-only graph.

    Pass a :class:`~repro.telemetry.core.Telemetry` to time every kernel
    execution: each cache-miss dispatch records one
    ``"graphct/<kernel>"`` wall-clock span (cache hits cost no span —
    they do no work).

    Example
    -------
    >>> from repro.graph import rmat
    >>> wf = GraphCT(rmat(scale=8, edge_factor=8, seed=1))
    >>> cc = wf.connected_components()
    >>> bfs = wf.breadth_first_search(wf.giant_component_vertex())
    >>> tri = wf.count_triangles()
    """

    _KERNELS: dict[str, Callable] = {
        "connected_components": connected_components,
        "breadth_first_search": breadth_first_search,
        "count_triangles": count_triangles,
        "clustering_coefficients": clustering_coefficients,
        "k_core_decomposition": k_core_decomposition,
        "pagerank": pagerank,
        "sssp": sssp,
        "st_connectivity": st_connectivity,
        "estimate_diameter": estimate_diameter,
        "maximal_independent_set": maximal_independent_set,
        "betweenness_centrality": betweenness_centrality,
        "label_propagation_communities": label_propagation_communities,
    }

    def __init__(
        self, graph: CSRGraph, *, telemetry: Telemetry | None = None
    ):
        if not isinstance(graph, CSRGraph):
            raise TypeError("GraphCT requires a CSRGraph")
        self.graph = graph
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self._cache: dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str | os.PathLike, **kwargs) -> "GraphCT":
        """Load a workflow from a ``.npz`` snapshot or an edge-list file."""
        path_str = str(path)
        if path_str.endswith(".npz"):
            return cls(load_graph(path))
        return cls(read_edge_list(path, **kwargs))

    # ------------------------------------------------------------------
    # Kernel dispatch
    # ------------------------------------------------------------------
    def run(self, kernel: str, *args, **kwargs):
        """Run a kernel by name, caching by (kernel, args, kwargs)."""
        try:
            fn = self._KERNELS[kernel]
        except KeyError:
            raise ValueError(
                f"unknown kernel {kernel!r}; available: "
                f"{sorted(self._KERNELS)}"
            ) from None
        key = (kernel, args, tuple(sorted(kwargs.items())))
        if key not in self._cache:
            with self.telemetry.span(
                f"graphct/{kernel}", category="kernel", kernel=kernel
            ):
                self._cache[key] = fn(self.graph, *args, **kwargs)
            if self.telemetry.enabled:
                self.telemetry.sample_memory()
        return self._cache[key]

    def __getattr__(self, name: str):
        if name in self._KERNELS:
            return lambda *args, **kwargs: self.run(name, *args, **kwargs)
        raise AttributeError(name)

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def degree_statistics(self):
        return degree_statistics(self.graph)

    def giant_component_vertex(self) -> int:
        return giant_component_vertex(self.graph)

    def subgraph(self, vertices) -> "GraphCT":
        """Workflow over the induced subgraph (new cache)."""
        sub, _ = extract_subgraph(self.graph, vertices)
        return GraphCT(sub)
