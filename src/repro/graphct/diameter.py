"""Graph diameter estimation by the double-sweep heuristic.

Small diameter is the structural property the paper's background leans
on ("all reachable vertices are found in a small number of hops", §II);
this kernel measures it.  The double-sweep lower bound (Magnien,
Latapy & Habib) runs a BFS from an arbitrary vertex, then from the
farthest vertex found, and repeats; the largest eccentricity observed is
a lower bound that is exact on trees and empirically tight on
small-world graphs.  ``exact=True`` computes the true diameter by
all-pairs BFS (O(nm); small graphs only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graphct.bfs import breadth_first_search
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["DiameterResult", "estimate_diameter"]


@dataclass
class DiameterResult:
    """Outcome of a diameter estimate."""

    #: Largest shortest-path distance found (exact when ``exact``).
    diameter: int
    #: True when computed by exhaustive all-pairs BFS.
    exact: bool
    #: Endpoints realizing the reported distance.
    endpoints: tuple[int, int]
    #: BFS sweeps performed.
    num_sweeps: int
    trace: WorkTrace = field(default_factory=WorkTrace)


def estimate_diameter(
    graph: CSRGraph,
    *,
    exact: bool = False,
    max_sweeps: int = 8,
    costs: KernelCosts = DEFAULT_COSTS,
) -> DiameterResult:
    """Diameter of the largest component reachable from vertex 0's
    component (double-sweep lower bound, or exact all-pairs).

    Isolated/unreachable parts are ignored (the diameter of a
    disconnected graph is conventionally infinite; this reports the
    observed eccentricity within the swept component, like GraphCT's
    workflow usage).
    """
    n = graph.num_vertices
    if n == 0:
        raise ValueError("diameter of an empty graph is undefined")
    trace = WorkTrace(label="graphct/diameter")

    if exact:
        best = 0
        endpoints = (0, 0)
        sweeps = 0
        for source in range(n):
            res = breadth_first_search(graph, source, costs=costs)
            trace.extend(res.trace)
            sweeps += 1
            far = int(res.distances.max())
            if far > best:
                best = far
                endpoints = (source, int(np.argmax(res.distances)))
        return DiameterResult(
            diameter=best, exact=True, endpoints=endpoints,
            num_sweeps=sweeps, trace=trace,
        )

    if max_sweeps < 2:
        raise ValueError("double sweep needs max_sweeps >= 2")
    # Start from a non-isolated vertex when one exists.
    degrees = graph.degrees()
    nonzero = np.flatnonzero(degrees > 0)
    current = int(nonzero[0]) if nonzero.size else 0
    best = 0
    endpoints = (current, current)
    sweeps = 0
    while sweeps < max_sweeps:
        res = breadth_first_search(graph, current, costs=costs)
        trace.extend(res.trace)
        sweeps += 1
        far = int(res.distances.max())
        far_vertex = int(np.argmax(res.distances))
        if far > best:
            # Improved: sweep again from the new far endpoint.
            best = far
            endpoints = (current, far_vertex)
            current = far_vertex
        else:
            break
    return DiameterResult(
        diameter=best, exact=False, endpoints=endpoints,
        num_sweeps=sweeps, trace=trace,
    )
