"""Shared-memory triangle counting and clustering coefficients.

The GraphCT implementation the paper describes (§V) is a triply-nested
loop: for every vertex, for every neighbour, intersect the two sorted
adjacency lists.  The possible triangles are *implicit in the loop body* —
the kernel writes to memory only when a triangle is actually found, which
is the crucial contrast with the BSP variant (which must materialize every
possible triangle as a message).

A total order over vertices (ids, per Algorithm 3) restricts counting to
triples v_i < v_j < v_k so each triangle is found exactly once.  The
vectorized implementation enumerates ordered wedges u < v < w around each
middle vertex v and closes them with a binary search over the oriented arc
set; the *work accounting* charges the full triply-nested loop the paper
describes (``sum_v sum_{u in N(v)} d(u)`` adjacency reads), identically
for both programming models ("Both algorithms perform the same number of
reads to the graph").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.dag import ascending_orientation, degree_orientation
from repro.graph.wedges import (
    WEDGE_BATCH,
    build_wedge_index,
    iter_closed_wedges,
)
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = [
    "TriangleResult",
    "ClusteringResult",
    "count_triangles",
    "clustering_coefficients",
]


@dataclass
class TriangleResult:
    """Outcome of a triangle-counting run."""

    #: Unique triangles in the graph (each counted once).
    total_triangles: int
    #: Triangles incident on each vertex (each triangle counts at its
    #: three corners), for clustering coefficients.
    per_vertex: np.ndarray
    #: Ordered wedges examined — the BSP algorithm's "possible triangles".
    wedges_checked: int
    trace: WorkTrace = field(default_factory=WorkTrace)


@dataclass
class ClusteringResult:
    """Local and global clustering coefficients."""

    #: Per-vertex local clustering coefficient (0 where degree < 2).
    local: np.ndarray
    #: Transitivity: 3 x triangles / open+closed wedges.
    global_coefficient: float
    triangles: TriangleResult


def count_triangles(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
    ordering: str = "id",
) -> TriangleResult:
    """Count unique triangles of an undirected graph.

    ``ordering`` selects the total order that orients wedges: ``"id"``
    (the paper's choice) or ``"degree"`` (the ablation variant, which
    shrinks wedge counts on skewed graphs).
    """
    if graph.directed:
        raise ValueError("triangle counting requires an undirected graph")
    if ordering == "id":
        dag = ascending_orientation(graph)
    elif ordering == "degree":
        dag = degree_orientation(graph)
    else:
        raise ValueError("ordering must be 'id' or 'degree'")

    n = graph.num_vertices
    tracer = Tracer(label="graphct/triangles")
    per_vertex = np.zeros(n, dtype=np.int64)

    # Batched wedge enumeration + closure check (shared with the BSP
    # counter so the two cannot drift).
    index = build_wedge_index(dag)
    total_wedges = index.total_wedges
    total_triangles = 0
    deg = graph.degrees()
    for u, centre, w, hit in iter_closed_wedges(index, batch_size=WEDGE_BATCH):
        closed = int(np.count_nonzero(hit))
        total_triangles += closed
        if closed:
            corners = np.concatenate([u[hit], centre[hit], w[hit]])
            per_vertex += np.bincount(corners, minlength=n)

    # --- work accounting: the paper's triply-nested shared-memory loop.
    # Inner iterations = sum over all (v, u in N(v)) of d(u) = sum d(u)^2.
    inner_steps = float(np.sum(deg.astype(np.float64) ** 2))
    with tracer.region("tc/intersect", items=max(n, 1)) as r:
        r.count(
            instructions=inner_steps * costs.intersection_step_instructions
            + n * costs.vertex_touch_instructions,
            reads=inner_steps,
            # "only produces a write when a triangle is detected" (§V)
            writes=float(total_triangles),
        )

    return TriangleResult(
        total_triangles=total_triangles,
        per_vertex=per_vertex,
        wedges_checked=total_wedges,
        trace=tracer.trace,
    )


def clustering_coefficients(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
) -> ClusteringResult:
    """Local clustering coefficients and global transitivity.

    ``local[v] = triangles_at(v) / (d(v) choose 2)``;
    ``global = 3 x triangles / wedges``.
    """
    tri = count_triangles(graph, costs=costs)
    deg = graph.degrees().astype(np.float64)
    possible = deg * (deg - 1.0) / 2.0
    local = np.zeros(graph.num_vertices, dtype=np.float64)
    mask = possible > 0
    local[mask] = tri.per_vertex[mask] / possible[mask]
    total_wedges = float(possible.sum())
    global_cc = (
        3.0 * tri.total_triangles / total_wedges if total_wedges > 0 else 0.0
    )
    return ClusteringResult(
        local=local, global_coefficient=global_cc, triangles=tri
    )
