"""GraphCT: the shared-memory baseline kernels.

A Python/NumPy re-creation of the GraphCT kernels the paper benchmarks
against (Ediger, Jiang, Riedy & Bader, "GraphCT: Multithreaded Algorithms
for Massive Graph Analysis"), plus the neighbouring kernels GraphCT ships
(clustering coefficients, k-core, PageRank, SSSP, betweenness centrality).

Every kernel:

* reads a single, read-only :class:`~repro.graph.csr.CSRGraph` (GraphCT's
  "one efficient graph data representation ... served read-only"),
* is written as the XMT loop-parallel algorithm (level-synchronous BFS per
  Bader & Madduri; Shiloach–Vishkin connected components; triply-nested
  triangle counting), vectorized with NumPy,
* records a :class:`~repro.xmt.trace.WorkTrace` of its parallel regions so
  the XMT cost model can price it at any processor count.
"""

from repro.graphct.bfs import BFSResult, breadth_first_search
from repro.graphct.betweenness import (
    BetweennessResult,
    betweenness_centrality,
)
from repro.graphct.community import (
    CommunityResult,
    label_propagation_communities,
    modularity,
)
from repro.graphct.connected_components import (
    ComponentsResult,
    connected_components,
)
from repro.graphct.diameter import DiameterResult, estimate_diameter
from repro.graphct.framework import GraphCT
from repro.graphct.kcore import KCoreResult, k_core_decomposition
from repro.graphct.mis import MISResult, maximal_independent_set
from repro.graphct.pagerank import PageRankResult, pagerank
from repro.graphct.sssp import SSSPResult, sssp
from repro.graphct.streaming_clustering import (
    StreamingClusteringCoefficients,
)
from repro.graphct.st_connectivity import (
    STConnectivityResult,
    st_connectivity,
)
from repro.graphct.triangles import (
    ClusteringResult,
    TriangleResult,
    clustering_coefficients,
    count_triangles,
)

__all__ = [
    "BFSResult",
    "BetweennessResult",
    "ClusteringResult",
    "CommunityResult",
    "ComponentsResult",
    "DiameterResult",
    "GraphCT",
    "KCoreResult",
    "MISResult",
    "PageRankResult",
    "SSSPResult",
    "STConnectivityResult",
    "StreamingClusteringCoefficients",
    "TriangleResult",
    "betweenness_centrality",
    "breadth_first_search",
    "clustering_coefficients",
    "connected_components",
    "count_triangles",
    "estimate_diameter",
    "k_core_decomposition",
    "label_propagation_communities",
    "maximal_independent_set",
    "modularity",
    "pagerank",
    "sssp",
    "st_connectivity",
]
