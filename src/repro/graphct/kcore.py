"""k-core decomposition (a GraphCT workflow kernel).

GraphCT's kernel list includes k-core (paper §II).  The parallel scheme is
the standard peeling algorithm expressed as synchronized rounds: at round
k, repeatedly remove all vertices whose remaining degree is below k; the
core number of a vertex is the largest k at which it survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_arange
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["KCoreResult", "k_core_decomposition"]


@dataclass
class KCoreResult:
    """Outcome of a k-core decomposition."""

    #: Core number per vertex (0 for isolated vertices).
    core_numbers: np.ndarray
    #: Largest non-empty core.
    max_core: int
    trace: WorkTrace = field(default_factory=WorkTrace)

    def core_members(self, k: int) -> np.ndarray:
        """Vertices belonging to the k-core."""
        return np.flatnonzero(self.core_numbers >= k)


def k_core_decomposition(
    graph: CSRGraph,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
) -> KCoreResult:
    """Compute core numbers by parallel peeling rounds."""
    if graph.directed:
        raise ValueError("k-core requires an undirected graph")
    n = graph.num_vertices
    tracer = Tracer(label="graphct/kcore")
    remaining_degree = graph.degrees().astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)

    k = 1
    round_index = 0
    while alive.any():
        # Peel everything below k, cascading within the round.
        while True:
            peel = alive & (remaining_degree < k)
            peeled = np.flatnonzero(peel)
            if peeled.size == 0:
                break
            with tracer.region(
                "kcore/peel", items=int(peeled.size), iteration=round_index
            ) as r:
                core[peeled] = k - 1
                alive[peeled] = False
                starts = graph.row_ptr[peeled]
                counts = graph.row_ptr[peeled + 1] - starts
                arcs = int(counts.sum())
                if arcs:
                    offsets = np.repeat(starts, counts) + _ragged_arange(counts)
                    nbrs = graph.col_idx[offsets]
                    live_nbrs = nbrs[alive[nbrs]]
                    remaining_degree -= np.bincount(
                        live_nbrs, minlength=remaining_degree.size
                    )
                r.count(
                    instructions=(
                        arcs * costs.edge_visit_instructions
                        + peeled.size * costs.vertex_touch_instructions
                    ),
                    reads=arcs + peeled.size,
                    writes=int(peeled.size),
                )
                if arcs:
                    # degree decrements are per-neighbour fetch-and-adds
                    sites = np.bincount(live_nbrs) if live_nbrs.size else []
                    r.atomics_per_site(np.asarray(sites))
            round_index += 1
        survivors = alive & (remaining_degree >= k)
        core[survivors] = k
        if not survivors.any():
            break
        k += 1

    return KCoreResult(
        core_numbers=core, max_core=int(core.max(initial=0)), trace=tracer.trace
    )
