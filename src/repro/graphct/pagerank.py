"""PageRank by damped power iteration (shared-memory formulation).

Included because GraphCT-style workflows commonly chain it after component
extraction, and because it is the canonical Pregel example — having both
formulations lets the test suite cross-validate the BSP engine against
this kernel on identical graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["PageRankResult", "pagerank"]


@dataclass
class PageRankResult:
    """Outcome of a PageRank computation."""

    ranks: np.ndarray
    num_iterations: int
    converged: bool
    #: L1 change of the rank vector per iteration.
    residuals: list[float] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)


def pagerank(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iterations: int = 100,
    costs: KernelCosts = DEFAULT_COSTS,
) -> PageRankResult:
    """Compute PageRank over out-arcs.

    Follows the standard formulation: dangling-vertex mass is
    redistributed uniformly; ranks sum to 1.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    n = graph.num_vertices
    if n == 0:
        return PageRankResult(
            ranks=np.empty(0), num_iterations=0, converged=True
        )

    tracer = Tracer(label="graphct/pagerank")
    out_degree = graph.degrees().astype(np.float64)
    dangling = out_degree == 0
    src = graph.arc_sources()
    dst = graph.col_idx
    ranks = np.full(n, 1.0 / n)
    residuals: list[float] = []
    converged = False

    for iteration in range(max_iterations):
        with tracer.region(
            "pagerank/iteration", items=max(graph.num_arcs, 1),
            iteration=iteration,
        ) as r:
            contrib = np.zeros(n)
            share = np.zeros(n)
            np.divide(ranks, out_degree, out=share, where=~dangling)
            np.add.at(contrib, dst, share[src])
            dangling_mass = float(ranks[dangling].sum())
            new_ranks = (
                (1.0 - damping) / n
                + damping * (contrib + dangling_mass / n)
            )
            residual = float(np.abs(new_ranks - ranks).sum())
            residuals.append(residual)
            r.count(
                instructions=graph.num_arcs * costs.edge_visit_instructions
                + n * costs.vertex_touch_instructions,
                reads=2 * graph.num_arcs + n,
                writes=n,
            )
            ranks = new_ranks
        if residual < tolerance:
            converged = True
            break

    return PageRankResult(
        ranks=ranks,
        num_iterations=len(residuals),
        converged=converged,
        residuals=residuals,
        trace=tracer.trace,
    )
