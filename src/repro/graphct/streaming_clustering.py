"""Incremental clustering coefficients over a streaming graph.

The paper's §V points to Ediger, Jiang, Riedy & Bader, "Massive
streaming data analytics: a case study with clustering coefficients"
(MTAAP 2010 — the paper's ref [12]) for alternative neighbour-
intersection mechanisms.  That work maintains per-vertex triangle counts
*incrementally* as edges arrive and depart: inserting {u, v} creates one
new triangle per common neighbour of u and v (and deletion removes
them), so each update costs one neighbourhood intersection instead of a
full recount.

:class:`StreamingClusteringCoefficients` wraps a
:class:`~repro.graph.streaming.StreamingGraph`, keeps the running
triangle counts, and exposes the same local/global coefficients as the
static kernel — the invariant ``incremental == recompute-from-scratch``
is property-tested against :func:`repro.graphct.triangles.
clustering_coefficients`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.streaming import StreamingGraph
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["StreamingClusteringCoefficients"]


class StreamingClusteringCoefficients:
    """Maintains triangle counts under edge insertions and deletions."""

    def __init__(
        self,
        graph: StreamingGraph,
        *,
        costs: KernelCosts = DEFAULT_COSTS,
    ):
        self.graph = graph
        self.costs = costs
        self.tracer = Tracer(label="graphct/streaming-cc")
        self._triangles = np.zeros(graph.num_vertices, dtype=np.int64)
        self._total = 0
        self._updates = 0
        self._bootstrap()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def total_triangles(self) -> int:
        return self._total

    @property
    def trace(self) -> WorkTrace:
        return self.tracer.trace

    def triangles_at(self, v: int) -> int:
        return int(self._triangles[v])

    def local_coefficients(self) -> np.ndarray:
        """Current per-vertex local clustering coefficients."""
        deg = self.graph.degrees().astype(np.float64)
        possible = deg * (deg - 1.0) / 2.0
        out = np.zeros(self.graph.num_vertices)
        mask = possible > 0
        out[mask] = self._triangles[mask] / possible[mask]
        return out

    def global_coefficient(self) -> float:
        """Current transitivity (3 x triangles / wedges)."""
        deg = self.graph.degrees().astype(np.float64)
        wedges = float(np.sum(deg * (deg - 1.0) / 2.0))
        return 3.0 * self._total / wedges if wedges > 0 else 0.0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert {u, v} and update counts; False if already present."""
        common = self._common_neighbors(u, v)
        if not self.graph.insert_edge(u, v):
            return False
        self._apply_delta(u, v, common, +1)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete {u, v} and update counts; False if absent."""
        if not self.graph.delete_edge(u, v):
            return False
        # Common neighbours computed after removal: exactly the
        # triangles the edge participated in.
        common = self._common_neighbors(u, v)
        self._apply_delta(u, v, common, -1)
        return True

    def apply_batch(self, insertions=(), deletions=()) -> tuple[int, int]:
        """Apply a batch of updates; returns (applied_ins, applied_del)."""
        ins = sum(
            1 for u, v in insertions if self.insert_edge(int(u), int(v))
        )
        dels = sum(
            1 for u, v in deletions if self.delete_edge(int(u), int(v))
        )
        return ins, dels

    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Count the seed graph's triangles once (static kernel path)."""
        snapshot = self.graph.snapshot()
        if snapshot.num_edges:
            from repro.graphct.triangles import count_triangles

            base = count_triangles(snapshot, costs=self.costs)
            self._triangles = base.per_vertex.copy()
            self._total = base.total_triangles

    def _common_neighbors(self, u: int, v: int) -> np.ndarray:
        nu = self.graph.neighbors(u)
        nv = self.graph.neighbors(v)
        # Unsorted STINGER-style adjacency: intersect via membership.
        return np.intersect1d(nu, nv, assume_unique=True)

    def _apply_delta(
        self, u: int, v: int, common: np.ndarray, sign: int
    ) -> None:
        k = int(common.size)
        with self.tracer.region(
            "stream/update", items=max(k, 1), iteration=self._updates
        ) as r:
            if k:
                self._triangles[common] += sign
                self._triangles[u] += sign * k
                self._triangles[v] += sign * k
                self._total += sign * k
            scan = self.graph.degree(u) + self.graph.degree(v)
            r.count(
                instructions=scan * self.costs.intersection_step_instructions,
                reads=scan,
                writes=2 + k,
            )
        self._updates += 1
