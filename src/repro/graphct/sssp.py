"""Single-source shortest paths (Bellman–Ford rounds, shared memory).

The paper's §IV cites Kajdanowicz et al.'s SSSP comparison on a Twitter
graph; this kernel is the shared-memory counterpart used by that
reproduction bench.  The algorithm is the frontier-driven Bellman–Ford:
each round relaxes all out-arcs of the vertices whose distance improved
in the previous round — on an unweighted graph this degenerates to
level-synchronous BFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.properties import _ragged_arange
from repro.runtime.loops import Tracer
from repro.xmt.calibration import DEFAULT_COSTS, KernelCosts
from repro.xmt.trace import WorkTrace

__all__ = ["SSSPResult", "sssp"]


@dataclass
class SSSPResult:
    """Outcome of a shortest-path computation."""

    source: int
    #: Shortest distance from the source; +inf for unreachable vertices.
    distances: np.ndarray
    num_rounds: int
    #: Active (improved) vertices per round.
    active_per_round: list[int] = field(default_factory=list)
    trace: WorkTrace = field(default_factory=WorkTrace)


def sssp(
    graph: CSRGraph,
    source: int,
    *,
    costs: KernelCosts = DEFAULT_COSTS,
) -> SSSPResult:
    """Shortest paths from ``source``; unweighted arcs count 1.

    Negative weights are rejected (Bellman–Ford rounds would still
    converge, but negative cycles are undetectable in this formulation).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    if graph.weights is not None and graph.weights.size and graph.weights.min() < 0:
        raise ValueError("sssp requires non-negative weights")

    tracer = Tracer(label="graphct/sssp")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.asarray([source], dtype=np.int64)
    active_history: list[int] = []

    round_index = 0
    while frontier.size:
        active_history.append(int(frontier.size))
        with tracer.region(
            "sssp/round", items=int(frontier.size), iteration=round_index
        ) as r:
            starts = graph.row_ptr[frontier]
            counts = graph.row_ptr[frontier + 1] - starts
            arcs = int(counts.sum())
            if arcs:
                offsets = np.repeat(starts, counts) + _ragged_arange(counts)
                nbrs = graph.col_idx[offsets]
                w = (
                    graph.weights[offsets]
                    if graph.weights is not None
                    else np.ones(arcs)
                )
                cand = np.repeat(dist[frontier], counts) + w
                improved = cand < dist[nbrs]
                tgt = nbrs[improved]
                val = cand[improved]
                # Per-target minimum (multiple relaxations may race on the
                # XMT; the minimum wins either way).
                order = np.lexsort((val, tgt))
                tgt, val = tgt[order], val[order]
                first = np.ones(tgt.size, dtype=bool)
                first[1:] = tgt[1:] != tgt[:-1]
                np.minimum.at(dist, tgt[first], val[first])
                next_frontier = np.unique(tgt)
                relaxations = int(np.count_nonzero(improved))
            else:
                next_frontier = np.empty(0, dtype=np.int64)
                relaxations = 0
            r.count(
                instructions=arcs * costs.edge_visit_instructions
                + frontier.size * costs.vertex_touch_instructions,
                reads=2 * arcs + frontier.size,
                writes=relaxations,
            )
        frontier = next_frontier
        round_index += 1

    return SSSPResult(
        source=source,
        distances=dist,
        num_rounds=round_index,
        active_per_round=active_history,
        trace=tracer.trace,
    )
