"""The ``repro serve`` subcommand: a long-lived graph-analytics server.

Loads one graph (a synthetic RMAT by default, or a file via
``--graph``), freezes it into the sharded engine's shared-memory CSR,
and serves algorithm jobs over HTTP until SIGTERM/SIGINT or a client
``POST /shutdown``.  Shutdown drains: queued and in-flight jobs finish,
then the worker pool and shared memory are released.

Example::

    python -m repro.cli serve --scale 10 --port 8080 --num-workers 2
    curl -s -X POST localhost:8080/jobs \
        -d '{"algorithm": "bfs", "params": {"source": 0}}'
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path

from repro.service.app import GraphAnalyticsService, build_server

__all__ = ["load_served_graph", "main"]


def load_served_graph(
    path: str | None,
    *,
    scale: int = 10,
    edge_factor: int = 16,
    seed: int = 1,
):
    """The graph to serve: ``path`` when given, else a seeded RMAT.

    File formats route on suffix: ``.npz`` snapshots via
    :func:`~repro.graph.io.load_graph`, ``.gr`` DIMACS instances via
    :func:`~repro.graph.io.read_dimacs`, anything else as a whitespace
    edge list.
    """
    if path is None:
        from repro.graph.generators import rmat

        return rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    suffix = Path(path).suffix.lower()
    if suffix == ".npz":
        from repro.graph.io import load_graph

        return load_graph(path)
    if suffix == ".gr":
        from repro.graph.io import read_dimacs

        return read_dimacs(path)
    from repro.graph.io import read_edge_list

    return read_edge_list(path)


def main(argv: list[str] | None = None) -> int:
    """Run ``repro serve``: build the service, serve until shutdown, drain."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve BSP graph-analytics jobs over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks a free one, printed at startup)",
    )
    parser.add_argument(
        "--graph", default=None, metavar="PATH",
        help="serve this file (.npz snapshot, .gr DIMACS, or edge list) "
             "instead of a synthetic RMAT graph",
    )
    parser.add_argument("--scale", type=int, default=10,
                        help="RMAT scale when no --graph is given")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--num-workers", type=int, default=2,
                        help="shard worker processes for the warm engine")
    parser.add_argument("--partition", default="hash",
                        choices=("hash", "balanced-edge"))
    parser.add_argument("--job-threads", type=int, default=2)
    parser.add_argument("--cache-size", type=int, default=128,
                        help="LRU result-cache entries (0 disables)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    args = parser.parse_args(argv)

    graph = load_served_graph(
        args.graph,
        scale=args.scale,
        edge_factor=args.edge_factor,
        seed=args.seed,
    )
    service = GraphAnalyticsService(
        graph,
        num_workers=args.num_workers,
        partition=args.partition,
        job_threads=args.job_threads,
        cache_capacity=args.cache_size,
    )
    server = build_server(
        service, args.host, args.port, verbose=args.verbose
    )

    def _signal_shutdown(signum, frame):
        print(f"received signal {signum}; draining...", flush=True)
        server.initiate_shutdown()

    signal.signal(signal.SIGTERM, _signal_shutdown)
    signal.signal(signal.SIGINT, _signal_shutdown)

    host, port = server.server_address[:2]
    info = service.graph_info()
    print(
        f"serving graph ({info['num_vertices']} vertices, "
        f"{info['num_edges']} edges, fingerprint "
        f"{info['fingerprint'][:12]}...) on http://{host}:{port} "
        f"with {args.num_workers} shard worker(s)",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        # Drain after the socket closes: queued jobs finish, then the
        # engine's worker processes exit and shared memory unlinks.
        service.close()
        counts = service.jobs.counts()
        print(
            f"drained; jobs done={counts['done']} failed={counts['failed']}, "
            f"cache={service.cache.stats()}",
            flush=True,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
