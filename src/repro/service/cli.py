"""The ``repro serve`` subcommand: a long-lived graph-analytics server.

Loads one graph (a synthetic RMAT by default, or a file via
``--graph``), freezes it into the sharded engine's shared-memory CSR,
and serves algorithm jobs over HTTP until SIGTERM/SIGINT or a client
``POST /shutdown``.  Shutdown drains: queued and in-flight jobs finish,
then the worker pool and shared memory are released.

All process output is structured log events (``--log-format json`` for
JSON lines, default ``text``) carrying trace ids, and the service keeps
a Prometheus-scrapable metrics registry (``GET /metrics``; disable with
``--no-metrics``).

Example::

    python -m repro.cli serve --scale 10 --port 8080 --num-workers 2 \
        --log-format json
    curl -s -X POST localhost:8080/jobs \
        -d '{"algorithm": "bfs", "params": {"source": 0}}'
    curl -s localhost:8080/metrics
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path

from repro.service.app import GraphAnalyticsService, build_server
from repro.telemetry.logs import StructuredLogger
from repro.telemetry.metrics import NULL_METRICS

__all__ = ["load_served_graph", "main"]


def load_served_graph(
    path: str | None,
    *,
    scale: int = 10,
    edge_factor: int = 16,
    seed: int = 1,
):
    """The graph to serve: ``path`` when given, else a seeded RMAT.

    File formats route on suffix: ``.npz`` snapshots via
    :func:`~repro.graph.io.load_graph`, ``.gr`` DIMACS instances via
    :func:`~repro.graph.io.read_dimacs`, anything else as a whitespace
    edge list.
    """
    if path is None:
        from repro.graph.generators import rmat

        return rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    suffix = Path(path).suffix.lower()
    if suffix == ".npz":
        from repro.graph.io import load_graph

        return load_graph(path)
    if suffix == ".gr":
        from repro.graph.io import read_dimacs

        return read_dimacs(path)
    from repro.graph.io import read_edge_list

    return read_edge_list(path)


def main(argv: list[str] | None = None) -> int:
    """Run ``repro serve``: build the service, serve until shutdown, drain."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve BSP graph-analytics jobs over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks a free one, printed at startup)",
    )
    parser.add_argument(
        "--graph", default=None, metavar="PATH",
        help="serve this file (.npz snapshot, .gr DIMACS, or edge list) "
             "instead of a synthetic RMAT graph",
    )
    parser.add_argument("--scale", type=int, default=10,
                        help="RMAT scale when no --graph is given")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--num-workers", type=int, default=2,
                        help="shard worker processes for the warm engine")
    parser.add_argument("--partition", default="hash",
                        choices=("hash", "balanced-edge"))
    parser.add_argument("--job-threads", type=int, default=2)
    parser.add_argument("--cache-size", type=int, default=128,
                        help="LRU result-cache entries (0 disables)")
    parser.add_argument("--log-format", default="text",
                        choices=("text", "json"),
                        help="structured log rendering (one line per "
                             "event either way; json is the machine-"
                             "parseable form)")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable the metrics registry entirely "
                             "(/metrics serves an empty exposition)")
    parser.add_argument("--stall-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="declare a shard worker stalled after this "
                             "many seconds without a flight-recorder "
                             "event mid-barrier (0 disables; default "
                             "%(default)s)")
    parser.add_argument("--no-flight-recorder", action="store_true",
                        help="disable the worker flight recorder "
                             "(/debug/workers loses per-worker phase/"
                             "progress and no postmortem bundles are "
                             "written)")
    parser.add_argument("--verbose", action="store_true",
                        help="log at debug level (includes http.server "
                             "internals)")
    args = parser.parse_args(argv)

    logger = StructuredLogger(
        sys.stdout,
        fmt=args.log_format,
        level="debug" if args.verbose else "info",
    )
    graph = load_served_graph(
        args.graph,
        scale=args.scale,
        edge_factor=args.edge_factor,
        seed=args.seed,
    )
    service = GraphAnalyticsService(
        graph,
        num_workers=args.num_workers,
        partition=args.partition,
        job_threads=args.job_threads,
        cache_capacity=args.cache_size,
        metrics=NULL_METRICS if args.no_metrics else None,
        logger=logger,
        flight_recorder=False if args.no_flight_recorder else None,
        stall_timeout=args.stall_timeout if args.stall_timeout > 0 else None,
    )
    server = build_server(
        service, args.host, args.port, verbose=args.verbose
    )

    def _signal_shutdown(signum, frame):
        logger.info("serve.signal", signal=int(signum), action="draining")
        server.initiate_shutdown()

    signal.signal(signal.SIGTERM, _signal_shutdown)
    signal.signal(signal.SIGINT, _signal_shutdown)

    host, port = server.server_address[:2]
    info = service.graph_info()
    logger.info(
        "serve.start",
        url=f"http://{host}:{port}",
        num_vertices=info["num_vertices"],
        num_edges=info["num_edges"],
        fingerprint=info["fingerprint"][:12],
        num_workers=args.num_workers,
        metrics="disabled" if args.no_metrics else "enabled",
        log_format=args.log_format,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        # Drain after the socket closes: queued jobs finish, then the
        # engine's worker processes exit and shared memory unlinks.
        service.close()
        counts = service.jobs.counts()
        cache = service.cache.stats()
        logger.info(
            "serve.drained",
            jobs_done=counts["done"],
            jobs_failed=counts["failed"],
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_evictions=cache["evictions"],
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
