"""Parameter validation and algorithm dispatch for the service.

Two responsibilities, split from the HTTP layer so they are unit-testable
without a socket:

* :func:`canonicalize_params` — validate a client's parameter dict
  against the algorithm's spec and fill defaults, producing the
  *canonical* form the result cache keys on (so ``{}`` and an explicit
  ``{"damping": 0.85, "num_supersteps": 30}`` PageRank request share one
  cache entry).  Raises :class:`ValueError` with a client-presentable
  message — the HTTP layer maps that to a 400.
* :func:`run_algorithm` — run one canonical request against the served
  graph on the caller's warm engine and flatten the result dataclass
  into a JSON-safe payload.  Values are byte-identical to the direct
  library call with the same worker count: the same wrapper executes,
  only ``engine=`` reuse differs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bsp_algorithms import (
    bsp_breadth_first_search,
    bsp_connected_components,
    bsp_count_triangles,
    bsp_k_core,
    bsp_pagerank,
    bsp_sssp,
)
from repro.graph.csr import CSRGraph
from repro.telemetry.metrics import NULL_METRICS

__all__ = ["ALGORITHMS", "canonicalize_params", "run_algorithm"]

#: Algorithms the service serves, in menu order.
ALGORITHMS = ("cc", "bfs", "sssp", "pagerank", "kcore", "triangles")


def _require_int(params: dict, name: str, *, minimum: int | None = None) -> int:
    if name not in params:
        raise ValueError(f"missing required parameter {name!r}")
    value = params[name]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"parameter {name!r} must be an integer")
    if minimum is not None and value < minimum:
        raise ValueError(f"parameter {name!r} must be >= {minimum}")
    return value


def _source_param(params: dict, graph: CSRGraph) -> int:
    source = _require_int(params, "source", minimum=0)
    if source >= graph.num_vertices:
        raise ValueError(
            f"parameter 'source' {source} out of range "
            f"[0, {graph.num_vertices})"
        )
    return source


def canonicalize_params(
    algorithm: str, params: dict | None, graph: CSRGraph
) -> dict:
    """Validate ``params`` for ``algorithm`` and return the canonical form.

    Unknown keys, missing required keys, wrong types, and out-of-range
    values all raise :class:`ValueError`.  The returned dict has every
    optional parameter filled with its default, so it is a stable cache
    key component.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; serving {list(ALGORITHMS)}"
        )
    params = dict(params or {})
    allowed = {
        "cc": set(),
        "bfs": {"source"},
        "sssp": {"source"},
        "pagerank": {"num_supersteps", "damping"},
        "kcore": {"k"},
        "triangles": set(),
    }[algorithm]
    unknown = set(params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for {algorithm!r}; "
            f"allowed: {sorted(allowed)}"
        )
    if algorithm in ("bfs", "sssp"):
        return {"source": _source_param(params, graph)}
    if algorithm == "pagerank":
        out = {"num_supersteps": 30, "damping": 0.85}
        if "num_supersteps" in params:
            out["num_supersteps"] = _require_int(
                params, "num_supersteps", minimum=1
            )
        if "damping" in params:
            damping = params["damping"]
            if not isinstance(damping, (int, float)) or isinstance(
                damping, bool
            ):
                raise ValueError("parameter 'damping' must be a number")
            damping = float(damping)
            if not 0.0 < damping < 1.0:
                raise ValueError("parameter 'damping' must lie in (0, 1)")
            out["damping"] = damping
        return out
    if algorithm == "kcore":
        return {"k": _require_int(params, "k", minimum=0)}
    return {}  # cc, triangles take no parameters


def _num_list(array: np.ndarray) -> list:
    """Array to a strict-JSON list (non-finite floats become None)."""
    values = np.asarray(array).tolist()
    if np.issubdtype(np.asarray(array).dtype, np.floating):
        return [v if math.isfinite(v) else None for v in values]
    return values


def run_algorithm(
    algorithm: str,
    params: dict,
    graph: CSRGraph,
    *,
    engine=None,
    num_workers: int | None = None,
    telemetry=None,
    metrics=NULL_METRICS,
) -> dict:
    """Execute one canonical request; return the JSON-safe payload.

    ``engine`` is the service's warm :class:`ShardedBSPEngine`, reused
    (and left open) by every engine-backed algorithm.  Triangle counting
    has no engine path — it shards its closure scan over its own pool,
    sized by ``num_workers``.

    ``metrics`` bridges engine activity up to the service registry:
    ``repro_engine_busy`` is 1 while an engine-backed run holds the warm
    engine, and each completed run adds its superstep count to
    ``repro_engine_supersteps_total`` (the triangles pool counts too,
    labelled by algorithm like everything else).
    """
    busy = metrics.gauge(
        "repro_engine_busy",
        "Engine-backed jobs currently executing or awaiting the warm "
        "engine (they serialize on its internal lock).",
    )
    if algorithm != "triangles":  # triangles runs on its own pool
        busy.inc()
    try:
        common = _dispatch(
            algorithm, params, graph,
            engine=engine, num_workers=num_workers, telemetry=telemetry,
        )
    finally:
        if algorithm != "triangles":
            busy.dec()
    metrics.counter(
        "repro_engine_runs_total",
        "Algorithm runs executed (cache misses).",
        {"algorithm": algorithm},
    ).inc()
    metrics.counter(
        "repro_engine_supersteps_total",
        "BSP supersteps executed on behalf of jobs.",
        {"algorithm": algorithm},
    ).inc(common["num_supersteps"])
    return common


def _dispatch(
    algorithm: str,
    params: dict,
    graph: CSRGraph,
    *,
    engine=None,
    num_workers: int | None = None,
    telemetry=None,
) -> dict:
    """The per-algorithm wrapper calls behind :func:`run_algorithm`."""
    common: dict
    if algorithm == "cc":
        res = bsp_connected_components(
            graph, engine=engine, telemetry=telemetry
        )
        common = {
            "values": _num_list(res.labels),
            "num_components": res.num_components,
        }
    elif algorithm == "bfs":
        res = bsp_breadth_first_search(
            graph, params["source"], engine=engine, telemetry=telemetry
        )
        common = {
            "values": _num_list(res.distances),
            "source": res.source,
            "frontier_sizes": list(res.frontier_sizes),
        }
    elif algorithm == "sssp":
        res = bsp_sssp(
            graph, params["source"], engine=engine, telemetry=telemetry
        )
        common = {"values": _num_list(res.distances), "source": res.source}
    elif algorithm == "pagerank":
        res = bsp_pagerank(
            graph,
            num_supersteps=params["num_supersteps"],
            damping=params["damping"],
            engine=engine,
            telemetry=telemetry,
        )
        common = {"values": _num_list(res.ranks)}
    elif algorithm == "kcore":
        res = bsp_k_core(
            graph, params["k"], engine=engine, telemetry=telemetry
        )
        in_core = np.asarray(res.in_core, dtype=bool)
        common = {
            "values": in_core.tolist(),
            "k": res.k,
            "core_size": int(in_core.sum()),
        }
    elif algorithm == "triangles":
        res = bsp_count_triangles(
            graph, num_workers=num_workers, telemetry=telemetry
        )
        common = {
            "values": _num_list(res.per_vertex),
            "total_triangles": int(res.total_triangles),
            "possible_triangles": int(res.possible_triangles),
        }
    else:  # canonicalize_params already rejected this
        raise ValueError(f"unknown algorithm {algorithm!r}")
    common["algorithm"] = algorithm
    common["num_supersteps"] = int(res.num_supersteps)
    common["messages_per_superstep"] = [
        int(m) for m in res.messages_per_superstep
    ]
    return common
