"""HTTP routing for the graph-analytics service (stdlib only).

The router tier: translate JSON-over-HTTP requests onto the
:class:`~repro.service.app.GraphAnalyticsService` object and nothing
else — no algorithm knowledge, no lifecycle ownership.  Endpoints:

====== ======================== ===========================================
Method Path                     Meaning
====== ======================== ===========================================
GET    ``/health``              service status, graph metadata, queue
                                depth, worker liveness, job/cache tallies
GET    ``/graph``               served-graph metadata
POST   ``/jobs``                submit ``{"algorithm": ..., "params": {}}``
                                → 202 with the job id and trace id
GET    ``/jobs``                all jobs, submission order
GET    ``/jobs/<id>``           one job's status (+ queue-wait/run timing)
GET    ``/jobs/<id>/result``    200 payload when done, 409 while pending /
                                running, 500 with the error when failed
GET    ``/jobs/<id>/trace``     Chrome-trace slice of just this job's spans
GET    ``/metrics``             Prometheus text exposition of the service
                                metrics registry
GET    ``/metrics.json``        the same registry as a schema-versioned
                                JSON snapshot
GET    ``/telemetry``           schema-versioned telemetry report
                                (+ service block with cache hit/miss)
GET    ``/trace``               Chrome trace-event JSON of the session
GET    ``/debug/workers``       live flight-recorder view: per-worker
                                phase/progress/rss, stall state, skew
GET    ``/debug/postmortem``    postmortem bundle ids on disk
GET    ``/debug/postmortem/<id>`` one postmortem bundle (rings, last
                                barrier, partition map, tracebacks)
POST   ``/shutdown``            202, then graceful drain and exit
====== ======================== ===========================================

Error bodies are always ``{"error": "..."}``; malformed JSON is a 400,
unknown routes 404, wrong methods 405.

Every request is *observed*: a ``trace_id`` is resolved first (the
client's ``X-Trace-Id`` header when present, else freshly generated),
echoed back as a response header, stamped into submitted jobs, and
carried by the structured request log line the handler emits on
completion — one id correlates the HTTP access log, the job record, and
the job's span in the trace export.  Latency and status are recorded
into the service metrics registry per *route template* (``/jobs/<id>``,
not the literal path, so label cardinality stays bounded).
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler

__all__ = ["PROMETHEUS_CONTENT_TYPE", "ServiceRequestHandler"]

#: Request bodies above this are rejected (parameters are tiny).
_MAX_BODY_BYTES = 1 << 20

#: Content type of the ``GET /metrics`` exposition body.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Routes that are their own metrics label; everything else normalizes
#: to a template (or ``<other>``) so label cardinality stays bounded.
_STATIC_ROUTES = frozenset(
    {
        "/", "/health", "/graph", "/jobs", "/telemetry", "/trace",
        "/metrics", "/metrics.json", "/shutdown",
        "/debug/workers", "/debug/postmortem",
    }
)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request against the service (threaded by the server)."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: Per-request correlation id, resolved before dispatch.
    trace_id = ""

    @property
    def service(self):
        return self.server.service

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        # http.server's own access/error lines; the structured request
        # log below supersedes them, so they only surface at debug.
        self.service.logger.debug("http.server", message=format % args)

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("ascii")
        self._status = code
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", self.trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._status = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", self.trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json_body(self) -> dict | None:
        """Parse the request body; None (after a 400/413) when invalid."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(body, dict):
            self._error(400, "JSON body must be an object")
            return None
        return body

    # -- request observation ---------------------------------------------
    def _route_template(self) -> str:
        """The metrics/log label for this request's path."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in _STATIC_ROUTES:
            return path
        if path.startswith("/jobs/"):
            parts = path.split("/")[2:]
            if len(parts) == 1:
                return "/jobs/<id>"
            if len(parts) == 2 and parts[1] in ("result", "trace"):
                return f"/jobs/<id>/{parts[1]}"
        if path.startswith("/debug/postmortem/"):
            if len(path.split("/")) == 4:
                return "/debug/postmortem/<id>"
        return "<other>"

    def _handle(self, method: str, dispatch) -> None:
        """Dispatch one request with tracing, metrics, and logging."""
        from repro.service.app import new_trace_id

        start = time.monotonic()
        self.trace_id = self.headers.get("X-Trace-Id") or new_trace_id()
        self._status = 0
        self._log_job_id = None
        try:
            dispatch()
        except Exception as exc:  # noqa: BLE001 - boundary: log, then 500
            self.service.logger.error(
                "http.error",
                method=method,
                path=self.path,
                trace_id=self.trace_id,
                error=f"{type(exc).__name__}: {exc}",
            )
            if self._status == 0:
                try:
                    self._error(500, f"internal error: {type(exc).__name__}")
                except OSError:  # pragma: no cover - client went away
                    pass
            # The response stream may be mid-body; don't reuse the
            # connection.
            self.close_connection = True
        finally:
            latency = time.monotonic() - start
            route = self._route_template()
            metrics = self.service.metrics
            metrics.counter(
                "repro_http_requests_total",
                "HTTP requests handled.",
                {"route": route, "method": method,
                 "code": str(self._status or 0)},
            ).inc()
            metrics.histogram(
                "repro_http_request_latency_seconds",
                "Request handling latency.",
                {"route": route},
            ).observe(latency)
            self.service.logger.info(
                "http.request",
                method=method,
                path=self.path,
                route=route,
                status=self._status or 0,
                latency_ms=round(latency * 1e3, 3),
                trace_id=self.trace_id,
                job_id=self._log_job_id,
            )

    # -- GET routes ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET", self._dispatch_get)

    def _dispatch_get(self) -> None:
        path = self.path.rstrip("/") or "/"
        if path == "/health":
            self._send_json(200, self.service.status())
        elif path == "/graph":
            self._send_json(200, self.service.graph_info())
        elif path == "/jobs":
            self._send_json(
                200,
                {"jobs": [j.to_dict() for j in self.service.jobs.list_jobs()]},
            )
        elif path == "/metrics":
            self._send_text(
                200, self.service.metrics_text(), PROMETHEUS_CONTENT_TYPE
            )
        elif path == "/metrics.json":
            self._send_json(200, self.service.metrics_json())
        elif path == "/telemetry":
            self._send_json(200, self.service.telemetry_report())
        elif path == "/trace":
            self._send_json(200, self.service.chrome_trace())
        elif path == "/debug/workers":
            self._send_json(200, self.service.debug_workers())
        elif path == "/debug/postmortem":
            self._send_json(
                200, {"postmortems": self.service.postmortem_ids()}
            )
        elif path.startswith("/debug/postmortem/"):
            parts = path.split("/")[3:]
            if len(parts) != 1:
                self._error(404, f"unknown path {self.path!r}")
                return
            bundle = self.service.postmortem(parts[0])
            if bundle is None:
                self._error(404, f"unknown postmortem {parts[0]!r}")
            else:
                self._send_json(200, bundle)
        elif path.startswith("/jobs/"):
            self._get_job(path)
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _get_job(self, path: str) -> None:
        parts = path.split("/")[2:]  # after "/jobs/"
        job = self.service.jobs.get(parts[0])
        if job is None:
            self._error(404, f"unknown job {parts[0]!r}")
            return
        self._log_job_id = job.job_id
        if len(parts) == 1:
            self._send_json(200, job.to_dict())
        elif len(parts) == 2 and parts[1] == "trace":
            self._send_json(200, self.service.job_trace(job))
        elif len(parts) == 2 and parts[1] == "result":
            if job.status == "done":
                self._send_json(
                    200,
                    {
                        "job_id": job.job_id,
                        "status": job.status,
                        "trace_id": job.trace_id,
                        "cached": job.cached,
                        "result": job.result,
                    },
                )
            elif job.status == "failed":
                self._send_json(
                    500,
                    {
                        "job_id": job.job_id,
                        "status": job.status,
                        "trace_id": job.trace_id,
                        "error": job.error,
                    },
                )
            else:
                self._send_json(
                    409,
                    {
                        "job_id": job.job_id,
                        "status": job.status,
                        "trace_id": job.trace_id,
                        "error": "job has not finished; poll "
                                 f"/jobs/{job.job_id}",
                    },
                )
        else:
            self._error(404, f"unknown path {self.path!r}")

    # -- POST routes -----------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST", self._dispatch_post)

    def _dispatch_post(self) -> None:
        path = self.path.rstrip("/")
        if path == "/jobs":
            self._submit_job()
        elif path == "/shutdown":
            self._send_json(202, {"status": "shutting-down"})
            self.server.initiate_shutdown()
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _submit_job(self) -> None:
        body = self._read_json_body()
        if body is None:
            return
        algorithm = body.get("algorithm")
        if not isinstance(algorithm, str):
            self._error(400, "body must name an 'algorithm' string")
            return
        params = body.get("params") or {}
        if not isinstance(params, dict):
            self._error(400, "'params' must be an object")
            return
        try:
            job = self.service.submit(
                algorithm, params, trace_id=self.trace_id
            )
        except ValueError as exc:
            self._error(400, str(exc))
            return
        except RuntimeError as exc:
            self._error(503, str(exc))
            return
        self._log_job_id = job.job_id
        self._send_json(
            202,
            {
                "job_id": job.job_id,
                "status": job.status,
                "trace_id": job.trace_id,
                "algorithm": job.algorithm,
                "params": job.params,
            },
        )

    # Reject everything else explicitly so clients get JSON, not HTML.
    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._handle("PUT", lambda: self._error(405, "method not allowed"))

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._handle("DELETE", lambda: self._error(405, "method not allowed"))

    def do_PATCH(self) -> None:  # noqa: N802 - http.server API
        self._handle("PATCH", lambda: self._error(405, "method not allowed"))
