"""HTTP routing for the graph-analytics service (stdlib only).

The router tier: translate JSON-over-HTTP requests onto the
:class:`~repro.service.app.GraphAnalyticsService` object and nothing
else — no algorithm knowledge, no lifecycle ownership.  Endpoints:

====== ======================== ===========================================
Method Path                     Meaning
====== ======================== ===========================================
GET    ``/health``              service status, graph metadata, job/cache
                                tallies
GET    ``/graph``               served-graph metadata
POST   ``/jobs``                submit ``{"algorithm": ..., "params": {}}``
                                → 202 with the job id
GET    ``/jobs``                all jobs, submission order
GET    ``/jobs/<id>``           one job's status
GET    ``/jobs/<id>/result``    200 payload when done, 409 while pending /
                                running, 500 with the error when failed
GET    ``/telemetry``           schema-versioned telemetry report
                                (+ service block with cache hit/miss)
GET    ``/trace``               Chrome trace-event JSON of the session
POST   ``/shutdown``            202, then graceful drain and exit
====== ======================== ===========================================

Error bodies are always ``{"error": "..."}``; malformed JSON is a 400,
unknown routes 404, wrong methods 405.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler

__all__ = ["ServiceRequestHandler"]

#: Request bodies above this are rejected (parameters are tiny).
_MAX_BODY_BYTES = 1 << 20


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request against the service (threaded by the server)."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self):
        return self.server.service

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("ascii")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json_body(self) -> dict | None:
        """Parse the request body; None (after a 400/413) when invalid."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(body, dict):
            self._error(400, "JSON body must be an object")
            return None
        return body

    # -- GET routes ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/") or "/"
        if path == "/health":
            self._send_json(200, self.service.status())
        elif path == "/graph":
            self._send_json(200, self.service.graph_info())
        elif path == "/jobs":
            self._send_json(
                200,
                {"jobs": [j.to_dict() for j in self.service.jobs.list_jobs()]},
            )
        elif path == "/telemetry":
            self._send_json(200, self.service.telemetry_report())
        elif path == "/trace":
            self._send_json(200, self.service.chrome_trace())
        elif path.startswith("/jobs/"):
            self._get_job(path)
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _get_job(self, path: str) -> None:
        parts = path.split("/")[2:]  # after "/jobs/"
        job = self.service.jobs.get(parts[0])
        if job is None:
            self._error(404, f"unknown job {parts[0]!r}")
            return
        if len(parts) == 1:
            self._send_json(200, job.to_dict())
        elif len(parts) == 2 and parts[1] == "result":
            if job.status == "done":
                self._send_json(
                    200,
                    {
                        "job_id": job.job_id,
                        "status": job.status,
                        "cached": job.cached,
                        "result": job.result,
                    },
                )
            elif job.status == "failed":
                self._send_json(
                    500,
                    {
                        "job_id": job.job_id,
                        "status": job.status,
                        "error": job.error,
                    },
                )
            else:
                self._send_json(
                    409,
                    {
                        "job_id": job.job_id,
                        "status": job.status,
                        "error": "job has not finished; poll "
                                 f"/jobs/{job.job_id}",
                    },
                )
        else:
            self._error(404, f"unknown path {self.path!r}")

    # -- POST routes -----------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/")
        if path == "/jobs":
            self._submit_job()
        elif path == "/shutdown":
            self._send_json(202, {"status": "shutting-down"})
            self.server.initiate_shutdown()
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _submit_job(self) -> None:
        body = self._read_json_body()
        if body is None:
            return
        algorithm = body.get("algorithm")
        if not isinstance(algorithm, str):
            self._error(400, "body must name an 'algorithm' string")
            return
        params = body.get("params") or {}
        if not isinstance(params, dict):
            self._error(400, "'params' must be an object")
            return
        try:
            job = self.service.submit(algorithm, params)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        except RuntimeError as exc:
            self._error(503, str(exc))
            return
        self._send_json(
            202,
            {
                "job_id": job.job_id,
                "status": job.status,
                "algorithm": job.algorithm,
                "params": job.params,
            },
        )

    # Reject everything else explicitly so clients get JSON, not HTML.
    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._error(405, "method not allowed")

    do_DELETE = do_PATCH = do_PUT  # noqa: N815 - http.server API
