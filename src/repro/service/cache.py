"""LRU result cache for the graph-analytics service.

Served graphs are read-only (the paper's contract), so a finished
algorithm result is valid for as long as the graph is loaded — the only
correct cache key is the *content* of the computation: the graph's CSR
fingerprint, the algorithm name, and the canonicalized parameters.
Canonicalization (defaults filled, keys sorted) happens at submit time
in :mod:`repro.service.runner`, so ``{"damping": 0.85}`` and ``{}``
share one entry.

Hit/miss/eviction counts are kept here and additionally surfaced as
telemetry counters by the service app, so a Chrome trace of a serving
session shows which jobs were recomputes.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any

from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU map from cache key to JSON-safe result payload.

    ``capacity`` bounds the entry count; 0 disables caching entirely
    (every lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits: int = 0
        self.misses: int = 0
        self.evictions: int = 0

    @staticmethod
    def make_key(
        fingerprint: str, algorithm: str, params: dict[str, Any]
    ) -> str:
        """Deterministic key for (graph, algorithm, canonical params)."""
        blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
        return f"{fingerprint}/{algorithm}/{blob}"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload (refreshing recency), or None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, value: dict[str, Any]) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the telemetry report."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def publish_metrics(
        self, registry: MetricsRegistry | NullMetricsRegistry
    ) -> None:
        """Mirror the cache tallies into ``registry`` (collection-time).

        The cache keeps its own authoritative counts (they predate the
        metrics layer and feed :meth:`stats`), so the registry series
        are bridged rather than incremented per event:
        ``Counter.set_total`` raises each counter to the current tally —
        monotone even if two scrapes race — and the entry-count gauge is
        set outright.  Called by the service app before rendering
        ``GET /metrics``.
        """
        stats = self.stats()
        registry.counter(
            "repro_cache_hits_total", "Result-cache lookups served."
        ).set_total(stats["hits"])
        registry.counter(
            "repro_cache_misses_total", "Result-cache lookups that missed."
        ).set_total(stats["misses"])
        registry.counter(
            "repro_cache_evictions_total", "LRU entries evicted."
        ).set_total(stats["evictions"])
        registry.gauge(
            "repro_cache_entries", "Entries currently cached."
        ).set(stats["size"])
        registry.gauge(
            "repro_cache_capacity", "Configured cache capacity."
        ).set(stats["capacity"])
