"""Long-lived graph-analytics service over the BSP engines.

The paper's model system "serves read-only graphs to analysis
applications"; this package is that service tier.  One graph is frozen
into the sharded engine's shared-memory CSR at startup and every request
reuses the same warm worker pool — the request-handling / warm-state /
result-delivery layer that dominates end-to-end cost in served graph
systems.

Three tiers, separately testable:

* :mod:`~repro.service.handlers` — HTTP routing (stdlib
  ``ThreadingHTTPServer``, JSON bodies), nothing else;
* :mod:`~repro.service.app` — the orchestrator:
  :class:`~repro.service.app.GraphAnalyticsService` owning the warm
  engine, the job manager, the result cache, and session telemetry;
* :mod:`~repro.service.jobs` / :mod:`~repro.service.cache` /
  :mod:`~repro.service.runner` — persistence and execution: the
  thread-safe job table, the LRU result cache keyed on
  ``(graph fingerprint, algorithm, canonical params)``, and the
  parameter-validated dispatch onto :mod:`repro.bsp_algorithms`.

Entry point: ``python -m repro.cli serve`` (see
:mod:`repro.service.cli`); docs in ``docs/SERVICE.md``.
"""

from repro.service.app import (
    GraphAnalyticsService,
    GraphServiceHTTPServer,
    build_server,
    new_trace_id,
)
from repro.service.cache import ResultCache
from repro.service.jobs import JOB_STATES, Job, JobManager
from repro.service.runner import (
    ALGORITHMS,
    canonicalize_params,
    run_algorithm,
)

__all__ = [
    "ALGORITHMS",
    "JOB_STATES",
    "GraphAnalyticsService",
    "GraphServiceHTTPServer",
    "Job",
    "JobManager",
    "ResultCache",
    "build_server",
    "canonicalize_params",
    "new_trace_id",
    "run_algorithm",
]
