"""Job lifecycle for the graph-analytics service.

A job is one algorithm request against the served graph.  Jobs move
through ``submitted → running → done`` (or ``failed``); clients submit,
poll status, then fetch the result.  Execution happens on a small pool
of daemon worker threads feeding from a FIFO queue — the HTTP handler
threads never run algorithms themselves, so slow jobs cannot starve
status polls.

Shutdown drains: :meth:`JobManager.shutdown` stops accepting new jobs,
lets every already-queued job execute, and joins the workers.  A
sentinel per worker rides the same FIFO queue behind the pending jobs,
so "drain" needs no separate bookkeeping.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["JOB_STATES", "Job", "JobManager"]

#: Legal :attr:`Job.status` values, in lifecycle order.
JOB_STATES = ("submitted", "running", "done", "failed")

#: Queue entry that tells a worker thread to exit.
_STOP = None


@dataclass
class Job:
    """One algorithm request and its lifecycle state.

    Mutable fields are only written by the owning
    :class:`JobManager` (under its lock); handler threads read
    snapshots via :meth:`to_dict`.
    """

    job_id: str
    algorithm: str
    #: Canonicalized parameters (defaults filled, keys validated).
    params: dict
    status: str = "submitted"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: True when the result came from the cache without recompute.
    cached: bool = False
    error: str | None = None
    #: JSON-safe result payload once ``status == "done"``.
    result: dict | None = None

    def to_dict(self, *, include_result: bool = False) -> dict:
        """JSON-safe status view (the ``GET /jobs/<id>`` body)."""
        out = {
            "job_id": self.job_id,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cached": self.cached,
            "error": self.error,
        }
        if include_result:
            out["result"] = self.result
        return out


class JobManager:
    """Thread-safe FIFO job queue with worker-thread execution.

    Parameters
    ----------
    execute:
        ``execute(job) -> (result_dict, cached)``; raising marks the
        job ``failed`` with the exception text as :attr:`Job.error`.
    num_threads:
        Worker thread count.  More than one only helps jobs that do not
        contend on the single warm engine (the engine serializes runs
        internally), e.g. cache hits and the triangles closure scan.
    """

    def __init__(
        self,
        execute: Callable[[Job], tuple[dict, bool]],
        *,
        num_threads: int = 2,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self._execute = execute
        self._queue: queue.Queue[Any] = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(num_threads)
        ]
        for t in self._threads:
            t.start()

    # -- client surface --------------------------------------------------
    def submit(self, algorithm: str, params: dict) -> Job:
        """Enqueue a job (already-canonicalized params); returns it."""
        with self._lock:
            if self._closed:
                raise RuntimeError("job manager is shut down")
            job = Job(
                job_id=f"job-{next(self._ids):06d}",
                algorithm=algorithm,
                params=params,
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        """The job with ``job_id``, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        """All jobs in submission order."""
        with self._lock:
            return [self._jobs[jid] for jid in self._order]

    def counts(self) -> dict[str, int]:
        """Job tallies by status (every state present, zeros included)."""
        out = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                out[job.status] += 1
        return out

    def wait(self, job_id: str, timeout: float = 30.0) -> Job:
        """Poll until the job reaches a terminal state (test helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job is not None and job.status in ("done", "failed"):
                return job
            time.sleep(0.005)
        raise TimeoutError(f"job {job_id} did not finish in {timeout}s")

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(self, *, timeout: float | None = None) -> None:
        """Stop accepting jobs, drain the queue, join the workers.

        Every job submitted before the call still executes; the
        per-worker stop sentinels enter the FIFO queue behind them.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_STOP)
        for t in self._threads:
            t.join(timeout=timeout)

    # -- worker loop -----------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            with self._lock:
                job.status = "running"
                job.started_at = time.time()
            try:
                result, cached = self._execute(job)
            except Exception as exc:
                detail = traceback.format_exc(limit=8)
                with self._lock:
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.result = {"traceback": detail}
                    job.finished_at = time.time()
            else:
                with self._lock:
                    job.status = "done"
                    job.result = result
                    job.cached = bool(cached)
                    job.finished_at = time.time()
