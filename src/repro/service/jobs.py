"""Job lifecycle for the graph-analytics service.

A job is one algorithm request against the served graph.  Jobs move
through ``submitted → running → done`` (or ``failed``); clients submit,
poll status, then fetch the result.  Execution happens on a small pool
of daemon worker threads feeding from a FIFO queue — the HTTP handler
threads never run algorithms themselves, so slow jobs cannot starve
status polls.

Shutdown drains: :meth:`JobManager.shutdown` stops accepting new jobs,
lets every already-queued job execute, and joins the workers.  A
sentinel per worker rides the same FIFO queue behind the pending jobs,
so "drain" needs no separate bookkeeping.

Observability: each job records monotonic ``submitted``/``started``/
``finished`` stamps alongside the wall-clock ones, so queue wait and run
duration are measured on a clock that cannot step backwards; both are
surfaced in ``GET /jobs/<id>`` and observed into the manager's
:class:`~repro.telemetry.metrics.MetricsRegistry` histograms
(``repro_job_queue_wait_seconds``, ``repro_job_duration_seconds``),
with submission/completion counters and a per-state gauge riding along.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.telemetry.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
)

__all__ = ["JOB_STATES", "Job", "JobManager"]

#: Legal :attr:`Job.status` values, in lifecycle order.
JOB_STATES = ("submitted", "running", "done", "failed")

#: Queue entry that tells a worker thread to exit.
_STOP = None

#: Bounded exception-type → reason mapping for the
#: ``repro_jobs_failed_total{reason=...}`` label.  Matched by walking
#: the exception's MRO by class *name* (so the engine's exception types
#: classify without importing them here), falling back to ``"error"``
#: — the label set can never grow beyond these values.
_FAILURE_REASONS = {
    "WorkerStallError": "stall",
    "ShardedWriteRaceError": "write_race",
    "ShardedWorkerError": "worker_crash",
    "ValueError": "invalid_params",
    "KeyError": "invalid_params",
    "TimeoutError": "timeout",
    "MemoryError": "oom",
}


def _failure_reason(exc: BaseException) -> str:
    """Classify an exception into the bounded failure-reason label set."""
    for klass in type(exc).__mro__:
        reason = _FAILURE_REASONS.get(klass.__name__)
        if reason is not None:
            return reason
    return "error"


@dataclass
class Job:
    """One algorithm request and its lifecycle state.

    Mutable fields are only written by the owning
    :class:`JobManager` (under its lock); handler threads read
    snapshots via :meth:`to_dict`.
    """

    job_id: str
    algorithm: str
    #: Canonicalized parameters (defaults filled, keys validated).
    params: dict
    status: str = "submitted"
    #: Trace id of the HTTP request that submitted the job — the one
    #: correlation key across the request log line, this record, and
    #: the job's span in the Chrome-trace export.
    trace_id: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: Monotonic twins of the wall-clock stamps: durations derived from
    #: these cannot go negative when the host clock steps.
    submitted_at_monotonic: float = field(default_factory=time.monotonic)
    started_at_monotonic: float | None = None
    finished_at_monotonic: float | None = None
    #: True when the result came from the cache without recompute.
    cached: bool = False
    error: str | None = None
    #: Verbatim traceback text once ``status == "failed"`` — the full
    #: ``traceback.format_exc()`` of the job thread, which for engine
    #: failures embeds the shard worker's own traceback (the engine
    #: propagates worker tracebacks verbatim in the exception message).
    traceback: str | None = None
    #: Bounded failure classification (see ``_FAILURE_REASONS``); also
    #: the ``reason`` label on ``repro_jobs_failed_total``.
    failure_reason: str | None = None
    #: Flight-recorder postmortem bundle id for engine failures (fetch
    #: via ``GET /debug/postmortem/<id>``), None otherwise.
    postmortem_id: str | None = None
    #: JSON-safe result payload once ``status == "done"``.
    result: dict | None = None
    #: Telemetry-clock interval covering the job's execution, set by the
    #: service app; ``GET /jobs/<id>/trace`` slices the session spans on it.
    trace_window: tuple[int, int] | None = None

    @property
    def queue_wait_seconds(self) -> float | None:
        """Time from submission to execution start (None while queued)."""
        if self.started_at_monotonic is None:
            return None
        return self.started_at_monotonic - self.submitted_at_monotonic

    @property
    def run_seconds(self) -> float | None:
        """Execution duration (None until the job is terminal)."""
        if (
            self.started_at_monotonic is None
            or self.finished_at_monotonic is None
        ):
            return None
        return self.finished_at_monotonic - self.started_at_monotonic

    def to_dict(self, *, include_result: bool = False) -> dict:
        """JSON-safe status view (the ``GET /jobs/<id>`` body)."""
        out = {
            "job_id": self.job_id,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "status": self.status,
            "trace_id": self.trace_id,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_seconds": self.queue_wait_seconds,
            "run_seconds": self.run_seconds,
            "cached": self.cached,
            "error": self.error,
            "failure_reason": self.failure_reason,
            "traceback": self.traceback,
            "postmortem_id": self.postmortem_id,
        }
        if include_result:
            out["result"] = self.result
        return out


class JobManager:
    """Thread-safe FIFO job queue with worker-thread execution.

    Parameters
    ----------
    execute:
        ``execute(job) -> (result_dict, cached)``; raising marks the
        job ``failed`` with the exception text as :attr:`Job.error`.
    num_threads:
        Worker thread count.  More than one only helps jobs that do not
        contend on the single warm engine (the engine serializes runs
        internally), e.g. cache hits and the triangles closure scan.
    metrics:
        Registry receiving the job metrics (submission/completion
        counters, queue-wait and duration histograms, per-state gauge,
        queue depth).  Defaults to the no-op registry.
    """

    def __init__(
        self,
        execute: Callable[[Job], tuple[dict, bool]],
        *,
        num_threads: int = 2,
        metrics: MetricsRegistry | NullMetricsRegistry = NULL_METRICS,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self._execute = execute
        self._queue: queue.Queue[Any] = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self.metrics = metrics
        self._m_queue_depth = metrics.gauge(
            "repro_job_queue_depth",
            "Jobs submitted but not yet picked up by a worker thread.",
        )
        self._m_state = {
            state: metrics.gauge(
                "repro_jobs_by_state",
                "Jobs currently in each lifecycle state.",
                {"state": state},
            )
            for state in JOB_STATES
        }
        self._m_queue_wait = metrics.histogram(
            "repro_job_queue_wait_seconds",
            "Time a job waited in the queue before execution started.",
        )
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(num_threads)
        ]
        for t in self._threads:
            t.start()

    # -- client surface --------------------------------------------------
    def submit(
        self, algorithm: str, params: dict, *, trace_id: str | None = None
    ) -> Job:
        """Enqueue a job (already-canonicalized params); returns it."""
        with self._lock:
            if self._closed:
                raise RuntimeError("job manager is shut down")
            job = Job(
                job_id=f"job-{next(self._ids):06d}",
                algorithm=algorithm,
                params=params,
                trace_id=trace_id,
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        self.metrics.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted for execution.",
            {"algorithm": algorithm},
        ).inc()
        self._m_state["submitted"].inc()
        self._m_queue_depth.inc()
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        """The job with ``job_id``, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        """All jobs in submission order."""
        with self._lock:
            return [self._jobs[jid] for jid in self._order]

    def counts(self) -> dict[str, int]:
        """Job tallies by status (every state present, zeros included)."""
        out = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                out[job.status] += 1
        return out

    def queue_depth(self) -> int:
        """Jobs submitted but not yet picked up by a worker thread."""
        return self.counts()["submitted"]

    def wait(self, job_id: str, timeout: float = 30.0) -> Job:
        """Poll until the job reaches a terminal state (test helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job is not None and job.status in ("done", "failed"):
                return job
            time.sleep(0.005)
        raise TimeoutError(f"job {job_id} did not finish in {timeout}s")

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(self, *, timeout: float | None = None) -> None:
        """Stop accepting jobs, drain the queue, join the workers.

        Every job submitted before the call still executes; the
        per-worker stop sentinels enter the FIFO queue behind them.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_STOP)
        for t in self._threads:
            t.join(timeout=timeout)

    # -- worker loop -----------------------------------------------------
    def _finish(self, job: Job) -> None:
        """Metrics for one terminal job (runs after the state flip)."""
        self._m_state["running"].dec()
        self._m_state[job.status].inc()
        self.metrics.counter(
            "repro_jobs_completed_total",
            "Jobs that reached a terminal state.",
            {"algorithm": job.algorithm, "status": job.status},
        ).inc()
        if job.status == "failed":
            self.metrics.counter(
                "repro_jobs_failed_total",
                "Jobs that failed, by bounded failure classification.",
                {"reason": job.failure_reason or "error"},
            ).inc()
        run = job.run_seconds
        if run is not None:
            self.metrics.histogram(
                "repro_job_duration_seconds",
                "Job execution time (queue wait excluded).",
                {"algorithm": job.algorithm},
            ).observe(run)

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            with self._lock:
                job.status = "running"
                job.started_at = time.time()
                job.started_at_monotonic = time.monotonic()
            self._m_queue_depth.dec()
            self._m_state["submitted"].dec()
            self._m_state["running"].inc()
            wait = job.queue_wait_seconds
            if wait is not None:
                self._m_queue_wait.observe(wait)
            try:
                result, cached = self._execute(job)
            except Exception as exc:
                # Verbatim, unlimited: for engine failures this embeds
                # the shard worker's own traceback text end to end.
                detail = traceback.format_exc()
                with self._lock:
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.traceback = detail
                    job.failure_reason = _failure_reason(exc)
                    job.postmortem_id = getattr(exc, "postmortem_id", None)
                    job.result = {"traceback": detail}
                    job.finished_at = time.time()
                    job.finished_at_monotonic = time.monotonic()
                self._finish(job)
            else:
                with self._lock:
                    job.status = "done"
                    job.result = result
                    job.cached = bool(cached)
                    job.finished_at = time.time()
                    job.finished_at_monotonic = time.monotonic()
                self._finish(job)
