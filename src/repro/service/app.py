"""The graph-analytics service: warm engine, jobs, cache, telemetry.

This is the orchestrator tier: it owns the served graph (frozen once
into the sharded engine's shared-memory CSR at startup), the persistent
:class:`~repro.bsp.parallel.ShardedBSPEngine` worker pool reused by
every request, the :class:`~repro.service.jobs.JobManager`, the
:class:`~repro.service.cache.ResultCache`, and one
:class:`~repro.telemetry.core.Telemetry` collecting spans and counters
across the whole serving session.  The HTTP tier
(:mod:`repro.service.handlers`) only translates requests onto this
object, so everything here is exercisable without a socket.

Shutdown is graceful by construction: :meth:`GraphAnalyticsService.close`
first drains the job queue (in-flight and already-queued jobs finish),
then closes the engine — worker processes exit and shared memory is
unlinked, nothing is orphaned.
"""

from __future__ import annotations

import threading
import time
from http.server import ThreadingHTTPServer

import uuid

from repro.bsp.parallel import ShardedBSPEngine
from repro.graph.csr import CSRGraph
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobManager
from repro.service.runner import ALGORITHMS, canonicalize_params, run_algorithm
from repro.telemetry.core import Telemetry
from repro.telemetry.flightrec import (
    PHASE_NAMES,
    list_postmortems,
    load_postmortem,
)
from repro.telemetry.export import chrome_trace, telemetry_report
from repro.telemetry.logs import NULL_LOGGER
from repro.telemetry.metrics import (
    MetricsRegistry,
    metrics_snapshot,
    render_prometheus,
)

__all__ = [
    "GraphAnalyticsService",
    "GraphServiceHTTPServer",
    "build_server",
    "new_trace_id",
]


def new_trace_id() -> str:
    """A fresh request/job correlation id (16 hex chars, uuid4-derived)."""
    return uuid.uuid4().hex[:16]


class GraphAnalyticsService:
    """Serve algorithm jobs against one read-only graph.

    Parameters
    ----------
    graph:
        The graph to serve; its CSR is copied into shared memory once,
        at construction, and every job reads that copy.
    num_workers:
        Shard worker processes for the warm engine (and the triangle
        closure-scan pool).
    partition:
        Vertex placement policy for the warm engine.
    job_threads:
        Job-executor threads.  Engine-backed jobs serialize on the
        engine's internal lock; extra threads let cache hits and
        triangle jobs proceed alongside an engine run.
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    telemetry:
        Optional externally-owned :class:`Telemetry`; one is created
        when omitted.  Cache hits/misses, job spans, and every engine
        span of the session land here.
    metrics:
        Optional externally-owned
        :class:`~repro.telemetry.metrics.MetricsRegistry`; one is
        created when omitted.  Pass :data:`~repro.telemetry.metrics.NULL_METRICS`
        to disable aggregation entirely (``repro serve --no-metrics``).
    logger:
        Structured event logger for job lifecycle and HTTP request
        records; defaults to the silent
        :data:`~repro.telemetry.logs.NULL_LOGGER` so in-process
        embedding produces no output.
    flight_recorder, stall_timeout:
        Passed through to :class:`~repro.bsp.parallel.ShardedBSPEngine`
        — the flight recorder is default-on, and ``stall_timeout``
        bounds how long a barrier waits on a silent worker before the
        job fails with a stall error (and a postmortem bundle, served
        via ``GET /debug/postmortem/<id>``).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        num_workers: int = 2,
        partition: str = "hash",
        job_threads: int = 2,
        cache_capacity: int = 128,
        telemetry: Telemetry | None = None,
        metrics=None,
        logger=None,
        flight_recorder=None,
        stall_timeout: float | None = None,
    ) -> None:
        self.graph = graph
        self.fingerprint = graph.fingerprint()
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(label="serve")
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.num_workers = int(num_workers)
        self.cache = ResultCache(cache_capacity)
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._closed = False
        self._close_lock = threading.Lock()
        self.engine = ShardedBSPEngine(
            graph,
            num_workers=self.num_workers,
            partition=partition,
            telemetry=self.telemetry,
            flight_recorder=flight_recorder,
            stall_timeout=stall_timeout,
        )
        # Jobs last: workers must never observe a half-built service.
        self.jobs = JobManager(
            self._execute, num_threads=job_threads, metrics=self.metrics
        )

    # -- request surface -------------------------------------------------
    def submit(
        self,
        algorithm: str,
        params: dict | None,
        *,
        trace_id: str | None = None,
    ) -> Job:
        """Validate and enqueue one job.

        Raises :class:`ValueError` on a bad algorithm/params (HTTP 400)
        and :class:`RuntimeError` once shutdown began (HTTP 503).
        ``trace_id`` correlates the job with the submitting HTTP request;
        one is generated when omitted (direct in-process submission).
        """
        canonical = canonicalize_params(algorithm, params, self.graph)
        if self._closed:
            raise RuntimeError("service is shutting down")
        job = self.jobs.submit(
            algorithm,
            canonical,
            trace_id=trace_id if trace_id is not None else new_trace_id(),
        )
        self.logger.info(
            "job.submitted",
            job_id=job.job_id,
            trace_id=job.trace_id,
            algorithm=algorithm,
        )
        return job

    def _execute(self, job: Job) -> tuple[dict, bool]:
        """Job-thread entry: serve from cache or compute on the warm engine."""
        tel = self.telemetry
        key = ResultCache.make_key(self.fingerprint, job.algorithm, job.params)
        hit = self.cache.get(key)
        if hit is not None:
            tel.counter("service_cache_hit", 1)
            self.logger.info(
                "job.done",
                job_id=job.job_id,
                trace_id=job.trace_id,
                algorithm=job.algorithm,
                cached=True,
            )
            return hit, True
        tel.counter("service_cache_miss", 1)
        window_start = tel.now()
        try:
            with tel.span(
                "job", category="service", algorithm=job.algorithm,
                job_id=job.job_id, trace_id=job.trace_id,
            ):
                result = run_algorithm(
                    job.algorithm,
                    job.params,
                    self.graph,
                    engine=self.engine,
                    num_workers=self.num_workers,
                    telemetry=tel,
                    metrics=self.metrics,
                )
        except Exception as exc:
            job.trace_window = (window_start, tel.now())
            self.logger.error(
                "job.failed",
                job_id=job.job_id,
                trace_id=job.trace_id,
                algorithm=job.algorithm,
                error=f"{type(exc).__name__}: {exc}",
                postmortem_id=getattr(exc, "postmortem_id", None),
            )
            raise
        job.trace_window = (window_start, tel.now())
        self.cache.put(key, result)
        self.logger.info(
            "job.done",
            job_id=job.job_id,
            trace_id=job.trace_id,
            algorithm=job.algorithm,
            cached=False,
        )
        return result, False

    # -- reporting -------------------------------------------------------
    def graph_info(self) -> dict:
        """Metadata of the served graph."""
        g = self.graph
        return {
            "fingerprint": self.fingerprint,
            "num_vertices": g.num_vertices,
            "num_edges": g.num_edges,
            "num_arcs": g.num_arcs,
            "directed": g.directed,
            "weighted": g.is_weighted,
            "memory_footprint_bytes": g.memory_footprint_bytes(),
        }

    def status(self) -> dict:
        """The ``GET /health`` body."""
        return {
            "status": "shutting-down" if self._closed else "ok",
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "algorithms": list(ALGORITHMS),
            "num_workers": self.num_workers,
            "workers_alive": self.engine.workers_alive,
            "stall_detected": self.engine.stall_detected,
            "queue_depth": self.jobs.queue_depth(),
            "graph": self.graph_info(),
            "jobs": self.jobs.counts(),
            "cache": self.cache.stats(),
        }

    # -- worker debugging -------------------------------------------------
    def debug_workers(self) -> dict:
        """The ``GET /debug/workers`` body: live flight-recorder view."""
        engine = self.engine
        recorder = engine.flight_recorder
        return {
            "flight_recorder": bool(
                recorder is not None and recorder.is_open
            ),
            "stall_timeout": engine.stall_timeout,
            "stall_detected": engine.stall_detected,
            "stall_events": engine.stall_events,
            "superstep_skew_seconds": engine.superstep_skew_seconds,
            "partition_policy": engine.partition_policy,
            "workers": engine.worker_status(),
        }

    def _postmortem_dir(self):
        recorder = self.engine.flight_recorder
        if recorder is not None:
            return recorder.postmortem_dir
        return "results/postmortem"

    def postmortem_ids(self) -> list[str]:
        """The ``GET /debug/postmortem`` body: bundle ids on disk."""
        return list_postmortems(self._postmortem_dir())

    def postmortem(self, pm_id: str) -> dict | None:
        """One postmortem bundle by id (None: unknown/malformed id)."""
        return load_postmortem(self._postmortem_dir(), pm_id)

    # -- metrics ---------------------------------------------------------
    def collect_metrics(self) -> None:
        """Refresh scrape-time series before rendering ``/metrics``.

        Push-style series (request/job counters, histograms) are already
        current; this bridges the pull-style ones — cache tallies, the
        up/uptime gauges — so a scrape always reflects the moment it
        happened.
        """
        self.cache.publish_metrics(self.metrics)
        self.metrics.gauge(
            "repro_service_up",
            "1 while serving, 0 once shutdown began.",
        ).set(0 if self._closed else 1)
        self.metrics.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the service started.",
        ).set(time.monotonic() - self._started_monotonic)
        self.metrics.gauge(
            "repro_engine_workers_alive",
            "Shard worker processes currently alive.",
        ).set(self.engine.workers_alive)
        engine = self.engine
        recorder = engine.flight_recorder
        if recorder is not None and recorder.is_open:
            # One-hot phase gauges plus a progress ratio per worker —
            # label cardinality is bounded by num_workers x 4 phases.
            for row in engine.worker_status():
                worker = str(row["worker"])
                current = row.get("phase")
                for phase in PHASE_NAMES.values():
                    self.metrics.gauge(
                        "repro_worker_phase",
                        "1 for the worker's current flight-recorder "
                        "phase, 0 for the others.",
                        {"worker": worker, "phase": phase},
                    ).set(1 if phase == current else 0)
                self.metrics.gauge(
                    "repro_worker_progress_ratio",
                    "Fraction of the current phase's arc range the "
                    "worker has processed (1 when idle).",
                    {"worker": worker},
                ).set(float(row.get("progress_ratio", 0.0)))
        skew_hist = self.metrics.histogram(
            "repro_superstep_skew_seconds",
            "Per-barrier slowest-vs-median worker busy-time gap — the "
            "skew the BSP model's balanced-work assumption says is 0.",
            buckets=(
                0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
                0.1, 0.5, 1.0, 5.0,
            ),
        )
        for sample in engine.drain_skew_samples():
            skew_hist.observe(sample)

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition)."""
        self.collect_metrics()
        return render_prometheus(self.metrics)

    def metrics_json(self) -> dict:
        """The ``GET /metrics.json`` body (schema-versioned snapshot)."""
        self.collect_metrics()
        return metrics_snapshot(self.metrics)

    def telemetry_report(self) -> dict:
        """The ``GET /telemetry`` body: session report + service block."""
        report = telemetry_report(self.telemetry)
        report["service"] = {
            "uptime_seconds": time.time() - self.started_at,
            "graph": self.graph_info(),
            "jobs": self.jobs.counts(),
            "cache": self.cache.stats(),
        }
        return report

    def chrome_trace(self) -> dict:
        """The ``GET /trace`` body (load in Perfetto / chrome://tracing)."""
        return chrome_trace(self.telemetry)

    def job_trace(self, job: Job) -> dict:
        """The ``GET /jobs/<id>/trace`` body: this job's slice of the session.

        Spans and counters that fall inside the job's execution window
        on the session telemetry clock, rendered as a Chrome trace whose
        ``otherData`` carries the job's ``trace_id`` — the same id the
        submit response, the job record, and the request log line carry.
        Engine-backed jobs serialize on the warm engine, so the window
        contains exactly their spans; a cached job has no window (nothing
        executed) and exports an empty-but-valid trace.
        """
        start_ns, end_ns = job.trace_window or (0, 0)
        view = Telemetry(label=f"job {job.job_id}")
        view.origin_ns = self.telemetry.origin_ns
        view.spans = [
            s
            for s in self.telemetry.spans
            if start_ns <= s.start_ns and s.end_ns <= end_ns
        ]
        view.counters = [
            c
            for c in self.telemetry.counters
            if start_ns <= c.t_ns <= end_ns
        ]
        trace = chrome_trace(view)
        trace["otherData"].update(
            {"job_id": job.job_id, "trace_id": job.trace_id}
        )
        return trace

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, *, timeout: float | None = None) -> None:
        """Drain in-flight jobs, then release the engine.  Idempotent."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.jobs.shutdown(timeout=timeout)
        self.engine.close()

    def __enter__(self) -> "GraphAnalyticsService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class GraphServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`GraphAnalyticsService`.

    Handler threads are daemonic so a stuck client cannot block process
    exit; job draining is the service's responsibility, not the socket
    layer's.
    """

    daemon_threads = True

    def __init__(self, address, service: GraphAnalyticsService,
                 *, verbose: bool = False) -> None:
        from repro.service.handlers import ServiceRequestHandler

        self.service = service
        #: Retained for back-compat; request logging now flows through
        #: ``service.logger`` (verbosity is the logger's level).
        self.verbose = verbose
        #: Set once a client or signal asked the serve loop to stop.
        self.shutdown_requested = threading.Event()
        super().__init__(address, ServiceRequestHandler)

    def initiate_shutdown(self) -> None:
        """Stop the serve loop from any thread (handler or signal safe).

        ``shutdown()`` blocks until the loop exits, so it runs on a
        helper thread; the caller returns immediately.  Job draining
        happens afterwards in the serving thread's epilogue
        (see :func:`repro.service.cli.main`).
        """
        if self.shutdown_requested.is_set():
            return
        self.shutdown_requested.set()
        threading.Thread(
            target=self.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()


def build_server(
    service: GraphAnalyticsService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
) -> GraphServiceHTTPServer:
    """Bind the HTTP tier to ``service`` (``port=0`` picks a free port)."""
    return GraphServiceHTTPServer((host, port), service, verbose=verbose)
