"""Flat operation counters.

:class:`OpCounter` is the lowest-level accounting unit: a mutable bag of
operation counts that functional primitives (full/empty arrays, atomic
counters, message queues) increment as they are used.  Region recorders
fold these into :class:`~repro.xmt.trace.RegionTrace` records.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OpCounter"]


@dataclass
class OpCounter:
    """Mutable counts of machine-visible operations."""

    instructions: float = 0.0
    reads: float = 0.0
    writes: float = 0.0
    atomics: float = 0.0

    def add(
        self,
        *,
        instructions: float = 0.0,
        reads: float = 0.0,
        writes: float = 0.0,
        atomics: float = 0.0,
    ) -> None:
        if min(instructions, reads, writes, atomics) < 0:
            raise ValueError("operation counts must be non-negative")
        self.instructions += instructions
        self.reads += reads
        self.writes += writes
        self.atomics += atomics

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter into this one."""
        self.instructions += other.instructions
        self.reads += other.reads
        self.writes += other.writes
        self.atomics += other.atomics

    def reset(self) -> None:
        self.instructions = 0.0
        self.reads = 0.0
        self.writes = 0.0
        self.atomics = 0.0

    @property
    def memory_ops(self) -> float:
        return self.reads + self.writes + self.atomics

    @property
    def total(self) -> float:
        return self.instructions + self.memory_ops

    def snapshot(self) -> "OpCounter":
        return OpCounter(
            instructions=self.instructions,
            reads=self.reads,
            writes=self.writes,
            atomics=self.atomics,
        )

    def delta_since(self, earlier: "OpCounter") -> "OpCounter":
        """Counts accumulated since ``earlier`` was snapshotted."""
        return OpCounter(
            instructions=self.instructions - earlier.instructions,
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            atomics=self.atomics - earlier.atomics,
        )
