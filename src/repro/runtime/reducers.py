"""Instrumented parallel reductions.

On the XMT a reduction is a parallel loop whose partial results combine in
a tree; the compiler emits these for ``reduce`` idioms.  These wrappers
compute the reduction with NumPy and record its work (one read per element,
log-depth combine) into an open :class:`~repro.runtime.loops.RegionRecorder`
when one is supplied.
"""

from __future__ import annotations

import math

import numpy as np

from repro.runtime.loops import RegionRecorder

__all__ = ["parallel_sum", "parallel_min", "parallel_max", "parallel_argmax"]


def _account(recorder: RegionRecorder | None, n: int) -> None:
    if recorder is not None and n > 0:
        recorder.count(
            reads=n,
            instructions=n + math.ceil(math.log2(n)) if n > 1 else n,
            writes=1,
        )


def parallel_sum(values: np.ndarray, recorder: RegionRecorder | None = None):
    """Sum reduction."""
    values = np.asarray(values)
    _account(recorder, values.size)
    return values.sum()


def parallel_min(values: np.ndarray, recorder: RegionRecorder | None = None):
    """Min reduction; raises on empty input like ``np.min``."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("min of empty array")
    _account(recorder, values.size)
    return values.min()


def parallel_max(values: np.ndarray, recorder: RegionRecorder | None = None):
    """Max reduction; raises on empty input like ``np.max``."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("max of empty array")
    _account(recorder, values.size)
    return values.max()


def parallel_argmax(values: np.ndarray, recorder: RegionRecorder | None = None) -> int:
    """Index of the maximum (ties broken toward the lowest index)."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("argmax of empty array")
    _account(recorder, values.size)
    return int(values.argmax())
