"""Instrumented parallel runtime abstraction.

The GraphCT and BSP kernels are written against this layer instead of raw
loops so that every parallel construct leaves a :class:`~repro.xmt.trace.
RegionTrace` behind.  :class:`~repro.runtime.loops.Tracer` is the kernel's
handle: ``with tracer.region(...) as r: r.count(...)`` both documents the
parallel structure (what the XMT compiler would parallelize) and feeds the
cost model.
"""

from repro.runtime.counters import OpCounter
from repro.runtime.loops import RegionRecorder, Tracer
from repro.runtime.reducers import (
    parallel_argmax,
    parallel_max,
    parallel_min,
    parallel_sum,
)

__all__ = [
    "OpCounter",
    "RegionRecorder",
    "Tracer",
    "parallel_argmax",
    "parallel_max",
    "parallel_min",
    "parallel_sum",
]
