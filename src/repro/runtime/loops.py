"""Region tracing for instrumented kernels.

Kernels describe their parallel structure through a :class:`Tracer`:

.. code-block:: python

    tracer = Tracer(label="bfs")
    with tracer.region("bfs/level", items=frontier.size, iteration=level) as r:
        ... do the level's work with NumPy ...
        r.count(reads=edges_examined, writes=newly_marked, instructions=...)

On exit the region is appended to ``tracer.trace`` as a
:class:`~repro.xmt.trace.RegionTrace`.  The actual computation is ordinary
vectorized NumPy — the tracer only documents what the equivalent XMT
parallel loop *would* execute, using exact counts derived from the same
arrays the kernel just computed with.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.runtime.counters import OpCounter
from repro.xmt.trace import RegionTrace, WorkTrace

__all__ = ["RegionRecorder", "Tracer"]


class RegionRecorder:
    """Accumulates operation counts for one open region."""

    def __init__(
        self,
        name: str,
        items: int,
        kind: str = "loop",
        iteration: int = -1,
    ) -> None:
        self.name = name
        self.items = int(items)
        self.kind = kind
        self.iteration = iteration
        self._ops = OpCounter()
        self._atomic_max_site = 0.0

    def count(
        self,
        *,
        instructions: float = 0.0,
        reads: float = 0.0,
        writes: float = 0.0,
        atomics: float = 0.0,
    ) -> None:
        """Add operation counts (totals across all items of the region)."""
        self._ops.add(
            instructions=instructions, reads=reads, writes=writes, atomics=atomics
        )

    def count_ops(self, ops: OpCounter) -> None:
        """Fold a functional primitive's counter into the region."""
        self._ops.merge(ops)

    def atomics_per_site(self, site_counts: np.ndarray | list | int) -> None:
        """Account atomics with their per-location distribution.

        ``site_counts[i]`` is the number of fetch-and-adds that hit
        location ``i``; the hotspot bound uses the maximum.  Passing an
        ``int`` means that many atomics hit one single location.
        """
        if isinstance(site_counts, (int, np.integer)):
            total = float(site_counts)
            worst = float(site_counts)
        else:
            arr = np.asarray(site_counts, dtype=np.float64)
            if arr.size == 0:
                return
            if arr.min() < 0:
                raise ValueError("site counts must be non-negative")
            total = float(arr.sum())
            worst = float(arr.max())
        self._ops.add(atomics=total)
        self._atomic_max_site = max(self._atomic_max_site, worst)

    def finish(self) -> RegionTrace:
        return RegionTrace(
            name=self.name,
            parallel_items=self.items,
            instructions=self._ops.instructions,
            reads=self._ops.reads,
            writes=self._ops.writes,
            atomics=self._ops.atomics,
            atomic_max_site=min(self._atomic_max_site, self._ops.atomics),
            kind=self.kind,
            iteration=self.iteration,
        )


class Tracer:
    """Collects the regions of one algorithm execution."""

    def __init__(self, label: str = "") -> None:
        self.trace = WorkTrace(label=label)
        self._depth = 0

    @contextmanager
    def region(
        self,
        name: str,
        *,
        items: int,
        kind: str = "loop",
        iteration: int = -1,
    ) -> Iterator[RegionRecorder]:
        """Open a parallel region; on exit its counts join the trace.

        Nested regions are rejected: the XMT compiler flattens loop nests
        into one level of parallelism, and allowing nesting here would
        double-count work.
        """
        if self._depth:
            raise RuntimeError(
                f"region {name!r} opened inside another region; "
                "parallel regions must not nest"
            )
        recorder = RegionRecorder(name, items, kind=kind, iteration=iteration)
        self._depth += 1
        try:
            yield recorder
        finally:
            self._depth -= 1
        self.trace.add(recorder.finish())

    def serial(self, name: str, ops: OpCounter, iteration: int = -1) -> None:
        """Record a sequential section directly from a counter."""
        self.trace.add(
            RegionTrace(
                name=name,
                parallel_items=1,
                instructions=ops.instructions,
                reads=ops.reads,
                writes=ops.writes,
                atomics=ops.atomics,
                atomic_max_site=ops.atomics,
                kind="serial",
                iteration=iteration,
            )
        )
