"""Static analysis and contract auditing for BSP programs.

The engine-equivalence guarantee — reference, dense, and sharded
engines produce bit-identical values, message counts, and traces — only
holds for *eligible* programs: deterministic compute, a commutative/
associative combine path, no mutable state shared across shard
boundaries.  This package verifies eligibility from three angles:

* :mod:`repro.check.linter` — an AST pass over
  :class:`~repro.bsp.vertex.VertexProgram` /
  :class:`~repro.bsp.dense.DenseVertexProgram` subclasses flagging
  determinism hazards (rule catalog: :mod:`repro.check.rules`;
  suppression: ``# repro: noqa[RULE]``).
* :mod:`repro.check.contracts` — static discovery of
  :class:`~repro.bsp.combiners.Combiner` subclasses plus a
  hypothesis-driven property harness for the combiner algebra the
  shard-merge bit-identity rests on.
* the runtime write-race detector on
  :class:`~repro.bsp.parallel.ShardedBSPEngine` (``check=True`` /
  ``REPRO_SHARDED_CHECK=1``), which records per-worker write-sets over
  the shared state array each superstep and reports conflicting writes
  at the barrier.

Surfaced as the ``repro check`` CLI subcommand
(:mod:`repro.check.cli`); the rule catalog and race-detector semantics
are documented in ``docs/ANALYSIS.md``.
"""

from repro.check.contracts import (
    CombinerContract,
    DiscoveredCombiner,
    audit_combiner,
    audit_instance,
    audit_paths,
    discover_combiners,
)
from repro.check.linter import (
    LintResult,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.check.rules import RULES, Diagnostic, Rule

__all__ = [
    "RULES",
    "CombinerContract",
    "Diagnostic",
    "DiscoveredCombiner",
    "LintResult",
    "Rule",
    "audit_combiner",
    "audit_instance",
    "audit_paths",
    "discover_combiners",
    "lint_file",
    "lint_paths",
    "lint_source",
]
