"""AST-based determinism linter for BSP vertex programs.

Scans Python sources for :class:`~repro.bsp.vertex.VertexProgram` /
:class:`~repro.bsp.dense.DenseVertexProgram` subclasses (direct bases,
or transitive within one file) and checks their method bodies against
the rule catalog in :mod:`repro.check.rules`.  Pure static analysis: no
file is imported or executed, so the linter is safe to point at
arbitrary user code (``repro check path/to/programs.py``).

Scope: only methods of vertex-program classes are checked.  The rules
encode the *eligibility contract* for the engine-equivalence guarantee;
a wall-clock read in, say, the telemetry layer is legitimate, the same
read inside ``compute`` is not.

Suppression: ``# repro: noqa[REP101]`` (comma-separated ids) on the
flagged line; a bare ``# repro: noqa`` suppresses all rules on the line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.check.rules import Diagnostic

__all__ = [
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Base-class names that mark a class as a reference vertex program.
_REFERENCE_BASES = frozenset({"VertexProgram"})
#: Base-class names that mark a class as a dense vertex program.
_DENSE_BASES = frozenset({"DenseVertexProgram"})

#: Fully-resolved call paths that read a clock (REP102).
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: numpy.random entry points that are deterministic when given a seed.
_SEEDABLE_RNG_CALLS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
})

#: Call paths that are nondeterministic regardless of arguments.
_ENTROPY_CALLS = frozenset({
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.SystemRandom",
})

#: Order-sensitive accumulators flagged in arc_payload (REP106).
_ORDER_SENSITIVE_CALLS = frozenset({
    "numpy.cumsum",
    "numpy.add.accumulate",
    "numpy.multiply.accumulate",
    "numpy.cumprod",
    "itertools.accumulate",
})

#: Method names whose call mutates the receiver in place (REP103).
_MUTATING_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "fill", "put", "resize",
})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclass
class LintResult:
    """Findings plus bookkeeping from one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Files that could not be parsed, as (path, reason).
    errors: list[tuple[str, str]] = field(default_factory=list)
    #: Number of files scanned (parsed or not).
    files_scanned: int = 0
    #: Number of vertex-program classes inspected.
    programs_checked: int = 0
    #: Diagnostics dropped by ``# repro: noqa`` comments.
    suppressed: int = 0

    @property
    def error_count(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity == "error"
        ) + len(self.errors)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "warning")

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.errors.extend(other.errors)
        self.files_scanned += other.files_scanned
        self.programs_checked += other.programs_checked
        self.suppressed += other.suppressed


# ---------------------------------------------------------------------------
# Source-level helpers
# ---------------------------------------------------------------------------


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def _noqa_map(source: str) -> dict[int, frozenset[str] | None]:
    """Line -> suppressed rule ids (``None`` = all rules) from comments."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
    return out


def _attach_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_repro_parent", None)


def _base_name(node: ast.expr) -> str | None:
    """Tail identifier of a base-class expression (``bsp.X`` -> ``X``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] style bases
        return _base_name(node.value)
    return None


class _ImportIndex:
    """Maps local names to dotted module paths for call resolution."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else name
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"
        # Conventional numpy alias even without an import in this file
        # (fixture snippets); a real `import numpy as np` overrides it
        # with the same mapping.
        self.aliases.setdefault("np", "numpy")

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of a Name/Attribute chain, import-aliases applied."""
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self.aliases.get(cur.id, cur.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _module_level_names(tree: ast.Module) -> frozenset[str]:
    """Names bound by assignments at module scope."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return frozenset(names)


def _local_names(func: ast.FunctionDef) -> frozenset[str]:
    """Parameter names plus names bound by plain assignment in ``func``."""
    args = func.args
    names = {
        a.arg
        for a in (
            args.posonlyargs + args.args + args.kwonlyargs
        )
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return frozenset(names)


# ---------------------------------------------------------------------------
# Per-file linter
# ---------------------------------------------------------------------------


class _FileLinter:
    def __init__(self, source: str, path: str) -> None:
        self.path = path
        self.tree = ast.parse(source, filename=path)
        _attach_parents(self.tree)
        self.imports = _ImportIndex(self.tree)
        self.module_names = _module_level_names(self.tree)
        self.noqa = _noqa_map(source)
        self.result = LintResult(files_scanned=1)

    # -- program-class discovery ----------------------------------------
    def _program_classes(self) -> list[tuple[ast.ClassDef, bool]]:
        """All vertex-program classes as ``(node, is_dense)``.

        A class is a program if any base's tail name is VertexProgram /
        DenseVertexProgram, or (transitively) names another program
        class defined in this file.
        """
        classes = [
            node for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        ]
        kind: dict[str, str] = {}  # class name -> "ref" | "dense"
        changed = True
        while changed:
            changed = False
            for node in classes:
                if node.name in kind:
                    continue
                for base in node.bases:
                    tail = _base_name(base)
                    if tail is None:
                        continue
                    if tail in _DENSE_BASES or kind.get(tail) == "dense":
                        kind[node.name] = "dense"
                        changed = True
                        break
                    if tail in _REFERENCE_BASES or kind.get(tail) == "ref":
                        kind[node.name] = "ref"
                        changed = True
                        break
        return [
            (node, kind[node.name] == "dense")
            for node in classes
            if node.name in kind
        ]

    # -- reporting -------------------------------------------------------
    def _report(
        self, rule: str, node: ast.AST, message: str, detail: str = ""
    ) -> None:
        line = getattr(node, "lineno", 0)
        suppressed = self.noqa.get(line)
        if suppressed is not None or line in self.noqa:
            if suppressed is None or rule in suppressed:
                self.result.suppressed += 1
                return
        self.result.diagnostics.append(
            Diagnostic(
                rule=rule,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                detail=detail,
            )
        )

    # -- entry point -----------------------------------------------------
    def run(self) -> LintResult:
        for classdef, is_dense in self._program_classes():
            self.result.programs_checked += 1
            for item in classdef.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                self._check_method(classdef, item, is_dense)
        return self.result

    def _check_method(
        self,
        classdef: ast.ClassDef,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        is_dense: bool,
    ) -> None:
        self._check_randomness(func)
        self._check_wall_clock(func)
        self._check_shared_state(classdef, func)
        self._check_set_iteration(func)
        if func.name == "arc_payload":
            self._check_arc_payload(func)
        if is_dense and func.name == "compute":
            self._check_messages_after_mutation(func)

    # -- REP101 ----------------------------------------------------------
    def _check_randomness(self, func: ast.AST) -> None:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            path = self.imports.resolve(node.func)
            if path is None:
                continue
            if path in _ENTROPY_CALLS:
                self._report(
                    "REP101", node,
                    f"{path}() is nondeterministic OS entropy; derive "
                    "values from a seeded RNG or a hash of "
                    "(vertex, superstep, seed)",
                )
            elif path in _SEEDABLE_RNG_CALLS:
                seeded = bool(node.args) and not (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                seeded = seeded or any(
                    kw.arg == "seed" and not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is None
                    )
                    for kw in node.keywords
                )
                if not seeded:
                    self._report(
                        "REP101", node,
                        f"{path}() without a seed draws a fresh entropy "
                        "stream per run/worker; pass an explicit seed",
                    )
            elif path.startswith("numpy.random."):
                self._report(
                    "REP101", node,
                    f"{path}() uses numpy's global RNG state; use a "
                    "seeded np.random.default_rng(seed) instead",
                )
            elif path.startswith("random.") and path.count(".") == 1:
                self._report(
                    "REP101", node,
                    f"{path}() uses the random module's global RNG "
                    "state (shared, unseeded per worker); use a seeded "
                    "random.Random(seed) instance",
                )

    # -- REP102 ----------------------------------------------------------
    def _check_wall_clock(self, func: ast.AST) -> None:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            path = self.imports.resolve(node.func)
            if path in _WALL_CLOCK_CALLS:
                self._report(
                    "REP102", node,
                    f"{path}() reads the clock inside a vertex program; "
                    "results depending on it cannot be bit-identical "
                    "across runs or engines",
                )

    # -- REP103 ----------------------------------------------------------
    def _check_shared_state(
        self, classdef: ast.ClassDef, func: ast.FunctionDef
    ) -> None:
        locals_ = _local_names(func)
        in_arc_payload = func.name == "arc_payload"
        args = func.args.posonlyargs + func.args.args
        values_param = (
            args[2].arg if in_arc_payload and len(args) >= 3 else None
        )

        def is_class_ref(node: ast.expr) -> bool:
            # self.__class__ / type(self) / EnclosingClass
            if isinstance(node, ast.Attribute) and node.attr == "__class__":
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "type"
                and len(node.args) == 1
            ):
                return True
            return (
                isinstance(node, ast.Name) and node.id == classdef.name
            )

        def root_name(node: ast.expr) -> ast.expr:
            while isinstance(node, (ast.Attribute, ast.Subscript)):
                node = node.value
            return node

        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                self._report(
                    "REP103", node,
                    f"`{type(node).__name__.lower()}` statement in a "
                    "vertex program mutates state shared across "
                    "supersteps/workers",
                )
                continue

            # Stores: plain assignment targets and augmented assignment.
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                base = target
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    inner = base.value
                    if is_class_ref(inner):
                        self._report(
                            "REP103", node,
                            "assignment to class-level state inside a "
                            "vertex program; class attributes are "
                            "shared by every instance and diverge "
                            "across shard workers",
                        )
                        break
                    base = inner
                root = root_name(target)
                if (
                    isinstance(root, ast.Name)
                    and root is not target  # subscript/attr store only
                    and root.id in self.module_names
                    and root.id not in locals_
                ):
                    self._report(
                        "REP103", node,
                        f"mutation of module-level `{root.id}` inside a "
                        "vertex program; module state is per-process "
                        "and diverges across shard workers",
                    )
                if in_arc_payload:
                    self._flag_arc_payload_store(node, target, values_param)

            # In-place mutation through method calls.
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in _MUTATING_METHODS:
                    continue
                recv_root = root_name(node.func.value)
                if (
                    isinstance(recv_root, ast.Name)
                    and recv_root.id in self.module_names
                    and recv_root.id not in locals_
                ):
                    self._report(
                        "REP103", node,
                        f"`.{node.func.attr}()` mutates module-level "
                        f"`{recv_root.id}` inside a vertex program",
                    )
                elif in_arc_payload and (
                    (
                        isinstance(recv_root, ast.Name)
                        and recv_root.id in ("self", values_param)
                    )
                ):
                    self._report(
                        "REP103", node,
                        f"`.{node.func.attr}()` mutates "
                        f"`{recv_root.id}` state inside arc_payload, "
                        "which executes in shard workers (writes are "
                        "lost or race across shards)",
                    )

    def _flag_arc_payload_store(
        self,
        stmt: ast.AST,
        target: ast.expr,
        values_param: str | None,
    ) -> None:
        """arc_payload-only stores: self state and the values array."""
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            inner = base.value
            if isinstance(inner, ast.Name):
                if inner.id == "self":
                    self._report(
                        "REP103", stmt,
                        "assignment to instance state inside "
                        "arc_payload; it executes in shard workers, so "
                        "the write is lost on the parent and applied "
                        "once per worker",
                    )
                    return
                if values_param is not None and inner.id == values_param:
                    self._report(
                        "REP103", stmt,
                        f"write to the shared `{values_param}` array "
                        "inside arc_payload races across shard workers "
                        "(run the sharded engine with check=True to "
                        "catch this at runtime)",
                    )
                    return
            base = inner

    # -- REP104 ----------------------------------------------------------
    def _check_messages_after_mutation(self, func: ast.FunctionDef) -> None:
        """Flag the *first* ``ctx.messages`` read reachable after a
        ``ctx.values`` mutation.

        Statement-order analysis, not line numbers: a branch that ends
        in ``return``/``raise`` does not leak its mutations past the
        branch, and the RHS of an assignment evaluates before the store
        (so ``values[:] = f(ctx.messages)`` is safe).  ``ctx.messages``
        caches after the first access, so only the first read matters.
        """
        args = func.args.posonlyargs + func.args.args
        if len(args) < 2:
            return
        ctx = args[1].arg
        alias_names: set[str] = set()
        messages_read = False  # first read already seen (cache warm)

        def expr_is_values(node: ast.expr) -> bool:
            if isinstance(node, ast.Name):
                return node.id in alias_names
            return (
                isinstance(node, ast.Attribute)
                and node.attr == "values"
                and isinstance(node.value, ast.Name)
                and node.value.id == ctx
            )

        def check_reads(node: ast.AST, mutated: int | None) -> None:
            nonlocal messages_read
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "messages"
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == ctx
                    and isinstance(sub.ctx, ast.Load)
                ):
                    if mutated is not None and not messages_read:
                        self._report(
                            "REP104", sub,
                            "ctx.messages first read after ctx.values "
                            f"was mutated on line {mutated}; lazy "
                            "delivery evaluates payloads from the "
                            "current values, so read messages before "
                            "writing state",
                        )
                    messages_read = True

        def stmt_mutations(stmt: ast.stmt) -> bool:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                if expr_is_values(base) and target is not base:
                    return True
            return False

        def track_aliases(stmt: ast.stmt) -> None:
            if not isinstance(stmt, ast.Assign):
                return
            pairs: list[tuple[ast.expr, ast.expr]] = []
            for target in stmt.targets:
                if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                    stmt.value, (ast.Tuple, ast.List)
                ) and len(target.elts) == len(stmt.value.elts):
                    pairs.extend(zip(target.elts, stmt.value.elts))
                else:
                    pairs.append((target, stmt.value))
            for target, value in pairs:
                if isinstance(target, ast.Name) and expr_is_values(value):
                    alias_names.add(target.id)

        def ends_in_jump(stmts: list[ast.stmt]) -> bool:
            return bool(stmts) and isinstance(
                stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
            )

        def collect_mutates(stmts: list[ast.stmt]) -> int | None:
            """Any mutation line in a subtree (loop-carried pre-pass)."""
            for stmt in stmts:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.stmt) and stmt_mutations(sub):
                        return sub.lineno
            return None

        def scan(
            stmts: list[ast.stmt], mutated: int | None
        ) -> int | None:
            for stmt in stmts:
                if isinstance(stmt, ast.If):
                    check_reads(stmt.test, mutated)
                    m_body = scan(stmt.body, mutated)
                    m_else = scan(stmt.orelse, mutated)
                    if not ends_in_jump(stmt.body):
                        mutated = mutated or m_body
                    if not ends_in_jump(stmt.orelse):
                        mutated = mutated or m_else
                elif isinstance(stmt, (ast.For, ast.While)):
                    head = (
                        stmt.iter if isinstance(stmt, ast.For)
                        else stmt.test
                    )
                    check_reads(head, mutated)
                    # A mutation anywhere in the body precedes reads in
                    # later iterations: pre-collect, then scan.
                    loop_mut = mutated or collect_mutates(stmt.body)
                    scan(stmt.body, loop_mut)
                    mutated = loop_mut
                    mutated = mutated or scan(stmt.orelse, mutated)
                elif isinstance(stmt, ast.Try):
                    mutated = scan(stmt.body, mutated)
                    for handler in stmt.handlers:
                        mutated = mutated or scan(handler.body, mutated)
                    mutated = scan(stmt.orelse, mutated)
                    mutated = scan(stmt.finalbody, mutated)
                elif isinstance(stmt, ast.With):
                    for item in stmt.items:
                        check_reads(item.context_expr, mutated)
                    mutated = scan(stmt.body, mutated)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)
                ):
                    continue  # deferred execution: out of scope
                else:
                    # Simple statement: RHS/expression reads evaluate
                    # before any store this statement performs.
                    check_reads(stmt, mutated)
                    track_aliases(stmt)
                    if stmt_mutations(stmt):
                        mutated = mutated or stmt.lineno
            return mutated

        scan(func.body, None)

    # -- REP105 ----------------------------------------------------------
    def _check_set_iteration(self, func: ast.AST) -> None:
        def is_set_expr(node: ast.expr) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                return node.func.id in ("set", "frozenset")
            return False

        iters: list[ast.expr] = []
        for node in ast.walk(func):
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if is_set_expr(it):
                self._report(
                    "REP105", it,
                    "iteration over a set has no deterministic order; "
                    "iterate sorted(...) or an array instead",
                )

    # -- REP106 ----------------------------------------------------------
    def _check_arc_payload(self, func: ast.FunctionDef) -> None:
        args = func.args.posonlyargs + func.args.args
        if len(args) < 4:
            return
        selname = args[3].arg

        # The blessed use is arr[selection]: the selection must be the
        # *entire* slice expression (or one element of a tuple slice for
        # multi-axis indexing).  Arithmetic on it inside a slice —
        # arr[selection + 1] — is still representation-dependent.
        slice_nodes: set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Subscript):
                slice_nodes.add(id(node.slice))
                if isinstance(node.slice, ast.Tuple):
                    for element in node.slice.elts:
                        slice_nodes.add(id(element))

        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                path = self.imports.resolve(node.func)
                if path in _ORDER_SENSITIVE_CALLS:
                    self._report(
                        "REP106", node,
                        f"{path}() is an order-sensitive accumulation "
                        "over per-arc payloads; the fold across arcs "
                        "must go through the engine's combiner",
                    )
            if not (
                isinstance(node, ast.Name)
                and node.id == selname
                and isinstance(node.ctx, ast.Load)
            ):
                continue
            if id(node) in slice_nodes:
                continue
            parent = _parent(node)
            if isinstance(parent, ast.Call) and node in parent.args:
                path = self.imports.resolve(parent.func) or ""
                if path.endswith("selected_arc_count"):
                    continue
                self._report(
                    "REP106", node,
                    f"`{selname}` passed to "
                    f"{path or 'a function'}(); the selection is a "
                    "mask or an index array depending on the frontier "
                    "decision — use it only as a fancy index or via "
                    "selected_arc_count()",
                )
            else:
                self._report(
                    "REP106", node,
                    f"`{selname}` used as a value (arithmetic, len, "
                    "attribute access); mask and index representations "
                    "disagree under every such use — index with it or "
                    "call selected_arc_count()",
                )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> LintResult:
    """Lint one source string; parse failures land in ``result.errors``."""
    try:
        linter = _FileLinter(source, path)
    except SyntaxError as exc:
        result = LintResult(files_scanned=1)
        result.errors.append((path, f"syntax error: {exc.msg} "
                              f"(line {exc.lineno})"))
        return result
    return linter.run()


def lint_file(path: str | Path) -> LintResult:
    """Lint one file."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        result = LintResult(files_scanned=1)
        result.errors.append((str(path), str(exc)))
        return result
    return lint_source(source, str(path))


def lint_paths(paths: Iterable[str | Path]) -> LintResult:
    """Lint every Python file under ``paths`` (dirs recursed)."""
    total = LintResult()
    for path in iter_python_files(paths):
        total.extend(lint_file(path))
    total.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return total
