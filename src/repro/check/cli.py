"""``repro check`` — static analysis gate for BSP programs.

Usage::

    repro check [PATHS...]              # lint vertex programs (default: src)
    repro check src/ --contracts       # + combiner contract audit
    repro check src/ --format json     # machine-readable report
    repro check --list-rules           # print the rule catalog

Exit status: 0 when clean (warnings do not gate), 1 when any
error-severity diagnostic, unparsable file, or failed combiner contract
was found, 2 on usage errors.  The JSON output is schema-versioned in
the same style as the telemetry report and benchmark ledger payloads,
so downstream tooling can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path

from repro.check.contracts import CombinerContract, audit_paths
from repro.check.linter import LintResult, lint_paths
from repro.check.rules import RULES

__all__ = ["main", "render_report", "report_payload"]

#: Schema version of the ``--format json`` payload.
REPORT_FORMAT_VERSION = 1


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Lint vertex programs for determinism/race hazards and "
            "audit combiner contracts."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to scan (default: src/ if present, "
        "else the current directory)",
    )
    parser.add_argument(
        "--contracts", action="store_true",
        help="also discover Combiner subclasses and property-test "
        "commutativity/associativity/idempotence",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def report_payload(
    lint: LintResult, contracts: list[CombinerContract] | None
) -> dict:
    """Schema-versioned JSON document for ``--format json``."""
    failed_contracts = [
        c for c in (contracts or []) if not c.ok and not c.skipped
    ]
    return {
        "format_version": REPORT_FORMAT_VERSION,
        "tool": "repro check",
        "diagnostics": [d.to_json() for d in lint.diagnostics],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in lint.errors
        ],
        "contracts": (
            None if contracts is None
            else [c.to_json() for c in contracts]
        ),
        "summary": {
            "files_scanned": lint.files_scanned,
            "programs_checked": lint.programs_checked,
            "errors": lint.error_count,
            "warnings": lint.warning_count,
            "suppressed": lint.suppressed,
            "contracts_audited": (
                None if contracts is None else len(contracts)
            ),
            "contracts_failed": (
                None if contracts is None else len(failed_contracts)
            ),
        },
        "ok": lint.error_count == 0 and not failed_contracts,
    }


def render_report(
    lint: LintResult, contracts: list[CombinerContract] | None
) -> str:
    """Human-readable findings block."""
    lines: list[str] = []
    for diag in lint.diagnostics:
        lines.append(diag.format())
    for path, message in lint.errors:
        lines.append(f"{path}:0:0: PARSE [error] {message}")
    for contract in contracts or []:
        where = f"{contract.path}:{contract.line}"
        if contract.skipped:
            lines.append(
                f"{where}: CONTRACT [skipped] {contract.name}: "
                f"{contract.error}"
            )
        elif not contract.ok:
            broken = ", ".join(
                name for name, holds in (
                    ("commutativity", contract.commutative),
                    ("associativity", contract.associative),
                ) if not holds
            )
            detail = "; ".join(contract.counterexamples.values())
            lines.append(
                f"{where}: CONTRACT [error] {contract.name} violates "
                f"{broken} — {detail}"
            )
        else:
            notes = []
            if not contract.idempotent:
                notes.append("not idempotent (redelivery-unsafe)")
            if not contract.float_exact:
                notes.append("float merges ulp-close, not bit-exact")
            if not contract.float_associative:
                notes.append("float-cancellation sensitive")
            suffix = f" ({'; '.join(notes)})" if notes else ""
            lines.append(
                f"{where}: CONTRACT [ok] {contract.name}{suffix}"
            )
    summary = (
        f"checked {lint.files_scanned} file(s), "
        f"{lint.programs_checked} program(s): "
        f"{lint.error_count} error(s), {lint.warning_count} warning(s)"
        + (f", {lint.suppressed} suppressed" if lint.suppressed else "")
    )
    if contracts is not None:
        failed = sum(1 for c in contracts if not c.ok and not c.skipped)
        summary += (
            f"; {len(contracts)} combiner contract(s), {failed} failed"
        )
    lines.append(summary)
    return "\n".join(lines)


def _render_rules() -> str:
    blocks = []
    for rule in RULES.values():
        body = textwrap.fill(
            rule.summary, width=72, initial_indent="    ",
            subsequent_indent="    ",
        )
        blocks.append(
            f"{rule.id} [{rule.severity}] {rule.title}\n{body}"
        )
    blocks.append(
        "Suppress a finding with `# repro: noqa[RULE-ID]` on the "
        "flagged line."
    )
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro check``."""
    args = _parser().parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    paths = args.paths
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(
            f"repro check: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    lint = lint_paths(paths)
    contracts = audit_paths(paths) if args.contracts else None

    if args.format == "json":
        payload = report_payload(lint, contracts)
        print(json.dumps(payload, indent=2, sort_keys=False))
        return 0 if payload["ok"] else 1

    output = render_report(lint, contracts)
    print(output)
    failed_contracts = any(
        not c.ok and not c.skipped for c in (contracts or [])
    )
    return 1 if (lint.error_count or failed_contracts) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
