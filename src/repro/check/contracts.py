"""Combiner contract auditor: commutativity / associativity / idempotence.

Bit-identity across shard merge orders rests on the combiner algebra:
the sharded engine folds per-worker partial reductions in shard order,
the dense engine folds all messages in one arc-order pass, and the
reference engine folds per vertex in delivery order.  The three agree
for every input iff the fold is commutative and associative; idempotent
folds (min/max) additionally tolerate redelivery, which checkpoint
replay exploits.

:func:`discover_combiners` finds :class:`~repro.bsp.combiners.Combiner`
subclasses statically (AST scan — nothing is imported);
:func:`audit_combiner` / :func:`audit_paths` then load the discovered
classes and property-test the algebra, driving the value generation
with `hypothesis <https://hypothesis.readthedocs.io>`_ when it is
installed and falling back to a deterministic sample grid otherwise
(same verdicts for the in-tree combiners either way).

Float semantics: IEEE-754 addition is commutative but *not*
associative — not even within a tolerance band once cancellation is
involved (``(1e300 + -1e300) + 1 != 1e300 + (-1e300 + 1)``) — and the
engines document exactly this slack for float sums across shard
boundaries.  The *gating* contract is therefore exact commutativity
(ints and floats) plus exact associativity on integers; float
associativity is recorded separately as the informational flags
:attr:`CombinerContract.float_associative` (within ``rel_tol=1e-9``)
and :attr:`CombinerContract.float_exact` (bit-exact) — the flags that
tell you whether a combiner's sharded merges are bit-identical,
ulp-close, or cancellation-sensitive.
"""

from __future__ import annotations

import ast
import importlib.util
import itertools
import math
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.check.linter import iter_python_files

__all__ = [
    "CombinerContract",
    "DiscoveredCombiner",
    "audit_combiner",
    "audit_paths",
    "discover_combiners",
]

#: Relative tolerance for float associativity (the engines' documented
#: last-ulp shard-boundary slack, with margin).
FLOAT_REL_TOL = 1e-9

_INT_SAMPLES = (
    -(2**62), -(2**31), -97, -2, -1, 0, 1, 2, 3, 5, 97, 2**31 - 1, 2**62
)
_FLOAT_SAMPLES = (
    -1e300, -1e16, -3.5, -1.0, -1e-9, 0.0, 1e-9, 0.25, 1.0, 3.0,
    1e16, 1e300, math.pi,
)


@dataclass(frozen=True)
class DiscoveredCombiner:
    """A combiner class found by the static scan."""

    path: str
    line: int
    name: str
    #: Dotted module name when the file maps into an importable package
    #: (``src/repro/bsp/combiners.py`` -> ``repro.bsp.combiners``).
    module: str | None = None


@dataclass
class CombinerContract:
    """Audit verdict for one combiner class."""

    name: str
    path: str
    line: int
    #: Exact commutativity over ints and floats (gating).
    commutative: bool = True
    #: Exact associativity over ints (gating).
    associative: bool = True
    #: Whether ``combine(a, a) == a`` (informational: sum-style
    #: combiners are legitimately non-idempotent, but redelivery —
    #: e.g. checkpoint replay — is only safe for idempotent folds).
    idempotent: bool = True
    #: Associativity on floats within ``rel_tol=1e-9`` (informational;
    #: False means cancellation-sensitive — shard merge order can move
    #: the result by more than an ulp band).
    float_associative: bool = True
    #: Bit-exact associativity on floats (informational; False for
    #: float sums: sharded merges are then ulp-close, not
    #: bit-identical).
    float_exact: bool = True
    #: First counterexample per failed property, as readable text.
    counterexamples: dict[str, str] = field(default_factory=dict)
    #: Why the audit could not run (import/instantiation failure or a
    #: non-numeric message domain).  Such combiners are reported as
    #: skipped, not failed.
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Gating contract holds (commutative + int-associative)."""
        return self.error is None and self.commutative and self.associative

    @property
    def skipped(self) -> bool:
        """Audit could not run (reported, but never gates)."""
        return self.error is not None

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "ok": self.ok,
            "skipped": self.skipped,
            "commutative": self.commutative,
            "associative": self.associative,
            "idempotent": self.idempotent,
            "float_associative": self.float_associative,
            "float_exact": self.float_exact,
            "counterexamples": dict(self.counterexamples),
            "error": self.error,
        }


# ---------------------------------------------------------------------------
# Static discovery
# ---------------------------------------------------------------------------


def _module_name_for(path: Path) -> str | None:
    """Dotted module name if ``path`` sits inside a package on sys.path."""
    parts: list[str] = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if len(parts) == 1:
        return None
    return ".".join(reversed(parts))


def discover_combiners(
    paths: Iterable[str | Path],
) -> list[DiscoveredCombiner]:
    """Find ``Combiner`` subclasses under ``paths`` without importing.

    Matches any class whose base list names ``Combiner`` (directly or as
    an attribute tail, e.g. ``combiners.Combiner``), plus transitive
    subclasses within the same file.
    """
    found: list[DiscoveredCombiner] = []
    for file in iter_python_files(paths):
        try:
            tree = ast.parse(
                file.read_text(encoding="utf-8"), filename=str(file)
            )
        except (OSError, SyntaxError, UnicodeDecodeError):
            continue
        classes = [
            node for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        ]
        combiner_names: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in classes:
                if node.name in combiner_names:
                    continue
                for base in node.bases:
                    tail = (
                        base.id if isinstance(base, ast.Name)
                        else base.attr if isinstance(base, ast.Attribute)
                        else None
                    )
                    if tail == "Combiner" or tail in combiner_names:
                        combiner_names.add(node.name)
                        changed = True
                        break
        module = _module_name_for(file) if combiner_names else None
        for node in classes:
            if node.name in combiner_names:
                found.append(
                    DiscoveredCombiner(
                        path=str(file),
                        line=node.lineno,
                        name=node.name,
                        module=module,
                    )
                )
    found.sort(key=lambda c: (c.path, c.line))
    return found


def _load_class(disc: DiscoveredCombiner) -> type:
    """Import the module behind a discovery and fetch the class."""
    if disc.module is not None:
        try:
            mod = importlib.import_module(disc.module)
            return getattr(mod, disc.name)
        except Exception:
            pass  # fall through to path-based loading
    unique = f"_repro_check_{abs(hash(disc.path)):x}"
    mod = sys.modules.get(unique)
    if mod is None:
        spec = importlib.util.spec_from_file_location(unique, disc.path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load {disc.path}")
        mod = importlib.util.module_from_spec(spec)
        sys.modules[unique] = mod
        try:
            spec.loader.exec_module(mod)
        except BaseException:
            sys.modules.pop(unique, None)
            raise
    return getattr(mod, disc.name)


# ---------------------------------------------------------------------------
# Property harness
# ---------------------------------------------------------------------------


def _find_counterexample(
    prop: Callable[..., bool], arity: int, use_floats: bool
) -> tuple | None:
    """First input tuple violating ``prop``, or None.

    Uses hypothesis when available (wider search, shrunk examples);
    otherwise sweeps the deterministic sample grid.
    """
    try:
        from hypothesis import find, settings, strategies as st
        from hypothesis.errors import NoSuchExample
    except ImportError:
        samples = _FLOAT_SAMPLES if use_floats else _INT_SAMPLES
        for combo in itertools.product(samples, repeat=arity):
            if not prop(*combo):
                return combo
        return None
    if use_floats:
        value = st.floats(allow_nan=False, allow_infinity=False)
    else:
        value = st.integers(min_value=-(2**63), max_value=2**63 - 1)
    try:
        combo = find(
            st.tuples(*([value] * arity)),
            lambda t: not prop(*t),
            settings=settings(
                max_examples=200, database=None, deadline=None
            ),
        )
    except NoSuchExample:
        return None
    return tuple(combo)


def _eq_exact(a: Any, b: Any) -> bool:
    return bool(a == b)


def _eq_close(a: Any, b: Any) -> bool:
    try:
        return bool(
            math.isclose(a, b, rel_tol=FLOAT_REL_TOL, abs_tol=0.0)
        )
    except TypeError:
        return bool(a == b)


def audit_combiner(disc: DiscoveredCombiner) -> CombinerContract:
    """Property-test one discovered combiner's algebra."""
    contract = CombinerContract(
        name=disc.name, path=disc.path, line=disc.line
    )
    try:
        cls = _load_class(disc)
    except BaseException as exc:  # noqa: BLE001 - report, don't crash
        contract.error = f"import failed: {exc!r}"
        return contract
    if getattr(cls, "__abstractmethods__", None):
        contract.error = "abstract class (not instantiable)"
        return contract
    try:
        combiner = cls()
    except Exception as exc:
        contract.error = (
            f"not zero-arg constructible ({exc!r}); audit it directly "
            "with repro.check.contracts.audit_instance"
        )
        return contract
    return audit_instance(
        combiner.combine, name=disc.name, path=disc.path, line=disc.line
    )


def audit_instance(
    combine: Callable[[Any, Any], Any],
    *,
    name: str = "<combine>",
    path: str = "<runtime>",
    line: int = 0,
) -> CombinerContract:
    """Property-test a bare ``combine(a, b)`` callable."""
    contract = CombinerContract(name=name, path=path, line=line)

    def guarded(prop: Callable[..., bool]) -> Callable[..., bool]:
        def run(*vals: Any) -> bool:
            try:
                return prop(*vals)
            except Exception:
                return False
        return run

    def commutes(a: Any, b: Any) -> bool:
        return _eq_exact(combine(a, b), combine(b, a))

    def assoc_exact(a: Any, b: Any, c: Any) -> bool:
        return _eq_exact(combine(combine(a, b), c), combine(a, combine(b, c)))

    def assoc_close(a: Any, b: Any, c: Any) -> bool:
        return _eq_close(combine(combine(a, b), c), combine(a, combine(b, c)))

    def idem(a: Any) -> bool:
        return _eq_exact(combine(a, a), a)

    try:
        combine(1, 2)
    except Exception as exc:
        contract.error = f"combine(1, 2) raised {exc!r}"
        return contract

    for use_floats in (False, True):
        domain = "floats" if use_floats else "ints"
        cex = _find_counterexample(guarded(commutes), 2, use_floats)
        if cex is not None:
            contract.commutative = False
            contract.counterexamples.setdefault(
                "commutativity",
                f"{domain}: combine{cex} != combine{tuple(reversed(cex))}",
            )
        cex = _find_counterexample(guarded(idem), 1, use_floats)
        if cex is not None:
            contract.idempotent = False

    cex = _find_counterexample(guarded(assoc_exact), 3, False)
    if cex is not None:
        contract.associative = False
        a, b, c = cex
        contract.counterexamples.setdefault(
            "associativity",
            f"ints: combine(combine({a}, {b}), {c}) != "
            f"combine({a}, combine({b}, {c}))",
        )

    # Float associativity: informational tiers, never gating.
    cex = _find_counterexample(guarded(assoc_close), 3, True)
    contract.float_associative = cex is None
    if contract.float_associative:
        cex = _find_counterexample(guarded(assoc_exact), 3, True)
        contract.float_exact = cex is None
    else:
        contract.float_exact = False
    return contract


def audit_paths(paths: Iterable[str | Path]) -> list[CombinerContract]:
    """Discover and audit every combiner under ``paths``."""
    return [audit_combiner(disc) for disc in discover_combiners(paths)]
