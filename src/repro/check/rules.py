"""Rule catalog and diagnostic records for ``repro check``.

The whole reproduction rests on one invariant: the reference, dense,
and sharded engines produce bit-identical values, message counts, and
traces for any vertex program.  That guarantee only holds for programs
that are *eligible* — deterministic compute, no hidden wall-clock or RNG
inputs, no mutable state shared across shard boundaries, an
order-insensitive combine path.  Each rule below names one way user code
silently forfeits the guarantee; the linter (:mod:`repro.check.linter`)
detects them statically over :class:`~repro.bsp.vertex.VertexProgram` /
:class:`~repro.bsp.dense.DenseVertexProgram` subclasses.

Suppression: append ``# repro: noqa[RULE-ID]`` (comma-separated list
allowed, e.g. ``# repro: noqa[REP101,REP105]``) to the flagged line.  A
bare ``# repro: noqa`` suppresses every rule on the line; prefer the
bracketed form so the justification stays reviewable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RULES",
    "SEVERITIES",
    "Diagnostic",
    "Rule",
]

#: Diagnostic severities, most severe first.  ``error`` findings fail
#: ``repro check``; ``warning`` findings are reported but do not gate.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Rule:
    """One determinism/race hazard the linter knows how to detect."""

    id: str
    title: str
    severity: str
    summary: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")


_RULE_LIST = (
    Rule(
        id="REP101",
        title="unseeded randomness",
        severity="error",
        summary=(
            "Unseeded RNG in a vertex program (random module globals, "
            "numpy legacy np.random.* globals, or default_rng()/"
            "RandomState()/Random() without a seed).  Every run — and "
            "every shard worker — draws a different stream, so results "
            "diverge between engines and across worker counts.  Seed "
            "explicitly (np.random.default_rng(seed)) or derive values "
            "from a deterministic hash of (vertex, superstep, seed)."
        ),
    ),
    Rule(
        id="REP102",
        title="wall-clock read",
        severity="error",
        summary=(
            "Wall-clock or monotonic-clock read inside a vertex program "
            "(time.time, perf_counter, datetime.now, ...).  Clock values "
            "differ per run and per worker process, so any result that "
            "depends on them cannot be bit-identical across engines.  "
            "Timing belongs in the telemetry layer (ctx.counter), not in "
            "program state."
        ),
    ),
    Rule(
        id="REP103",
        title="shared-state mutation",
        severity="error",
        summary=(
            "Mutation of module/class state inside compute/arc_payload, "
            "or of instance/values state inside arc_payload.  "
            "arc_payload executes inside shard workers: writes to self, "
            "to the shared values array, or to module/class globals are "
            "lost, applied once per worker, or race with other shards — "
            "all three break the bit-identity contract.  Keep "
            "arc_payload pure; mutate per-vertex state only through "
            "ctx.values in compute."
        ),
    ),
    Rule(
        id="REP104",
        title="messages read after state mutation",
        severity="error",
        summary=(
            "ctx.messages first read after ctx.values was already "
            "mutated in the same compute.  Delivery is lazy: payloads "
            "are evaluated from the *current* values on first access, "
            "so a read after mutation delivers messages computed from "
            "post-update state — different from the reference engine's "
            "eager delivery.  Read ctx.messages (or alias it) before "
            "writing ctx.values."
        ),
    ),
    Rule(
        id="REP105",
        title="unordered-set iteration",
        severity="warning",
        summary=(
            "Iteration over a set/frozenset inside a vertex program.  "
            "Set iteration order depends on insertion history and hash "
            "randomization, so any order-sensitive fold over it (float "
            "accumulation, first-wins selection) differs between runs "
            "and engines.  Iterate sorted(...) or a NumPy array instead."
        ),
    ),
    Rule(
        id="REP106",
        title="selection misuse / order-sensitive accumulation",
        severity="error",
        summary=(
            "arc_payload treats the opaque `selection` argument as "
            "numbers (arithmetic, len(), .sum(), flatnonzero), or "
            "applies an order-sensitive accumulator (cumsum, "
            "accumulate, builtin sum) to per-arc payloads.  The "
            "selection is a boolean mask or an int64 index array "
            "depending on the per-superstep frontier decision — the two "
            "representations only agree when used as an opaque fancy "
            "index (arr[selection]) or via "
            "repro.bsp.frontier.selected_arc_count; anything else makes "
            "sparse and dense supersteps diverge."
        ),
    ),
)

#: Rule catalog keyed by rule id.
RULES: dict[str, Rule] = {rule.id: rule for rule in _RULE_LIST}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Extra context (e.g. the offending expression), may be empty.
    detail: str = field(default="")

    @property
    def severity(self) -> str:
        return RULES[self.rule].severity

    def format(self) -> str:
        """``path:line:col: REPxxx [severity] message`` (ruff-style)."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        """JSON-safe record for ``repro check --format json``."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "detail": self.detail,
        }
