"""Benchmark history: ledger, statistical baselines, regression gating.

The benchmarks under ``benchmarks/`` emit schema-versioned
``BENCH_<name>.json`` payloads; this package turns those write-only
artifacts into a queryable performance history with automated
regression detection:

* :mod:`~repro.bench.ledger` — append-only JSONL store under
  ``results/history/`` where every record carries run provenance (git
  SHA, branch, UTC timestamp, machine fingerprint, package version);
* :mod:`~repro.bench.baseline` — per-metric rolling baselines (median +
  MAD over the last K comparable runs), with metrics classified as
  noisy wall-clock measurements, deterministic model counters, or
  ungated environment facts;
* :mod:`~repro.bench.gate` — ok/improved/regressed/new verdicts per
  metric, exact-match gating for deterministic counters, noise-aware
  threshold gating for measurements;
* :mod:`~repro.bench.render` — ASCII trend tables, sparklines, gate
  summaries, run diffs;
* :mod:`~repro.bench.cli` — the ``repro bench record|report|compare|
  gate`` subcommands (``gate`` exits nonzero on regression, which is
  what CI enforces).

See ``docs/BENCHMARKS.md`` for the schema, the baseline math, and
usage.
"""

from repro.bench.baseline import (
    Baseline,
    classify_metric,
    comparable_records,
    compute_baseline,
    flatten_metrics,
    higher_is_better,
)
from repro.bench.gate import (
    GateReport,
    MetricVerdict,
    evaluate_record,
    gate_ledger,
)
from repro.bench.ledger import (
    LEDGER_SCHEMA_VERSION,
    Ledger,
    Record,
    collect_provenance,
    fingerprint_of,
    package_version,
    sanitize,
)
from repro.bench.render import (
    compare_table,
    format_gate_reports,
    sparkline,
    trend_table,
)

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "Baseline",
    "GateReport",
    "Ledger",
    "MetricVerdict",
    "Record",
    "classify_metric",
    "collect_provenance",
    "comparable_records",
    "compare_table",
    "compute_baseline",
    "evaluate_record",
    "fingerprint_of",
    "flatten_metrics",
    "format_gate_reports",
    "gate_ledger",
    "higher_is_better",
    "package_version",
    "sanitize",
    "sparkline",
    "trend_table",
]
