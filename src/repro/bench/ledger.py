"""Append-only benchmark history: the JSONL ledger and run provenance.

``benchmarks/_emit.py`` writes one ``BENCH_<name>.json`` per benchmark
run; those files are overwritten on every run and were historically
write-only.  The ledger turns them into a durable, queryable history:
one append-only JSONL file per benchmark under ``results/history/``
(override with ``REPRO_HISTORY_DIR``), where each line is a full BENCH
payload plus **provenance** — git SHA and branch, UTC timestamp, host
fingerprint (hostname / CPU count / platform / Python), and the package
version — so every number in the history can be traced to an exact
source tree and machine.

The fingerprint matters for the statistics downstream
(:mod:`repro.bench.baseline`): wall-clock baselines are only comparable
between runs on the same machine, while deterministic model counters
(modeled cycles, message counts, superstep counts) must match across
*all* machines.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import socket
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "Record",
    "collect_provenance",
    "fingerprint_of",
    "history_dir",
    "package_version",
    "sanitize",
]

#: Version of the ledger record layout (a superset of the BENCH payload).
LEDGER_SCHEMA_VERSION = 2

#: Default ledger location, relative to the working directory.
DEFAULT_HISTORY_DIR = os.path.join("results", "history")


def history_dir(path: str | None = None) -> str:
    """Resolve the ledger directory: explicit arg, env var, default."""
    return path or os.environ.get("REPRO_HISTORY_DIR", DEFAULT_HISTORY_DIR)


def package_version() -> str:
    """The installed ``repro`` version (falls back to the source tree)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


def _git(args: list[str], cwd: str | None) -> str | None:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def fingerprint_of(
    hostname: str, cpu_count: int, machine: str, python: str
) -> str:
    """Stable short hash identifying a measurement environment."""
    key = f"{hostname}|{cpu_count}|{machine}|{python}"
    return hashlib.sha256(key.encode()).hexdigest()[:12]


def collect_provenance(repo_dir: str | None = None) -> dict:
    """Describe where and when a benchmark run happened.

    Returns git SHA/branch/dirty flag (``None`` outside a checkout), a
    UTC timestamp, the host identity, and the derived ``fingerprint``
    used to group statistically comparable runs.
    """
    hostname = socket.gethostname()
    cpu_count = os.cpu_count() or 1
    machine = platform.machine()
    python = platform.python_version()
    dirty = _git(["status", "--porcelain"], repo_dir)
    return {
        "git_sha": _git(["rev-parse", "HEAD"], repo_dir),
        "git_branch": _git(["rev-parse", "--abbrev-ref", "HEAD"], repo_dir),
        "git_dirty": bool(dirty),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(),
        "hostname": hostname,
        "cpu_count": cpu_count,
        "machine": machine,
        "python": python,
        "repro_version": package_version(),
        "fingerprint": fingerprint_of(hostname, cpu_count, machine, python),
    }


def sanitize(obj):
    """Strict-JSON copy of ``obj``: non-finite floats become ``None``.

    ``json.dump`` happily writes ``NaN``/``Infinity`` tokens that no
    strict parser accepts; the ledger must never contain them.
    """
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, dict):
        return {str(k): sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize(v) for v in obj]
    return obj


@dataclass(frozen=True)
class Record:
    """One ledger line: a BENCH payload with provenance attached."""

    benchmark: str
    config: dict
    data: dict
    provenance: dict
    schema_version: int = LEDGER_SCHEMA_VERSION

    @property
    def fingerprint(self) -> str | None:
        """Machine fingerprint the run was measured on."""
        return self.provenance.get("fingerprint")

    @property
    def git_sha(self) -> str | None:
        """Commit the run was measured at."""
        return self.provenance.get("git_sha")

    def to_json(self) -> dict:
        """JSON-serializable dictionary form (sanitized)."""
        return sanitize(
            {
                "schema_version": self.schema_version,
                "benchmark": self.benchmark,
                "config": self.config,
                "data": self.data,
                "provenance": self.provenance,
            }
        )

    @classmethod
    def from_json(cls, doc: dict) -> "Record":
        """Build a record from a parsed ledger line or BENCH payload.

        A v2 payload's top-level ``memory`` block (peak RSS of the
        emitting process) folds into ``data`` under the ``"memory"``
        key, so memory regressions are baselined and gated alongside
        every other metric.
        """
        data = dict(doc.get("data") or {})
        memory = doc.get("memory")
        if memory and "memory" not in data:
            data["memory"] = dict(memory)
        return cls(
            benchmark=str(doc.get("benchmark", "")),
            config=dict(doc.get("config") or {}),
            data=data,
            provenance=dict(doc.get("provenance") or {}),
            schema_version=int(
                doc.get("schema_version", LEDGER_SCHEMA_VERSION)
            ),
        )


class Ledger:
    """Append-only JSONL store of benchmark runs, one file per benchmark.

    ``results/history/<benchmark>.jsonl`` holds that benchmark's runs in
    recording order; reading never mutates, writing only appends — the
    ledger is the durable record the overwritten ``BENCH_*.json``
    artifacts feed into.
    """

    def __init__(self, root: str | None = None) -> None:
        self.root = history_dir(root)

    def path(self, benchmark: str) -> str:
        """Ledger file for one benchmark."""
        safe = benchmark.replace(os.sep, "_")
        return os.path.join(self.root, f"{safe}.jsonl")

    def benchmarks(self) -> list[str]:
        """Sorted benchmark names with at least one recorded run."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".jsonl")]
            for name in os.listdir(self.root)
            if name.endswith(".jsonl")
        )

    def records(self, benchmark: str) -> list[Record]:
        """All runs of one benchmark, oldest first."""
        path = self.path(benchmark)
        if not os.path.exists(path):
            return []
        out = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(Record.from_json(json.loads(line)))
        return out

    def append(self, record: Record | dict) -> Record:
        """Append one run; stamps provenance when the payload has none."""
        if isinstance(record, dict):
            record = Record.from_json(record)
        if not record.benchmark:
            raise ValueError("record must carry a benchmark name")
        if not record.provenance:
            record = Record(
                benchmark=record.benchmark,
                config=record.config,
                data=record.data,
                provenance=collect_provenance(),
                schema_version=record.schema_version,
            )
        path = self.path(record.benchmark)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            json.dump(
                record.to_json(),
                fh,
                separators=(",", ":"),
                allow_nan=False,
            )
            fh.write("\n")
        return record

    def record_payload(self, payload: dict) -> Record:
        """Ingest one parsed ``BENCH_<name>.json`` payload."""
        return self.append(Record.from_json(payload))

    def record_file(self, path: str) -> Record:
        """Ingest one ``BENCH_<name>.json`` file."""
        with open(path, "r", encoding="utf-8") as fh:
            return self.record_payload(json.load(fh))
