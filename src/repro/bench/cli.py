"""The ``repro bench`` subcommand family: record, report, compare, gate.

Routed from :mod:`repro.cli`::

    python -m repro.cli bench record            # ingest BENCH_*.json
    python -m repro.cli bench report            # per-benchmark trends
    python -m repro.cli bench compare engine_modes
    python -m repro.cli bench gate              # exit 1 on regression

``record`` ingests the latest ``results/bench/BENCH_<name>.json``
artifacts (or explicit paths) into the append-only history ledger,
stamping provenance when a payload predates schema v2.  ``report``
renders per-benchmark trend tables with sparklines.  ``compare`` diffs
two recorded runs of one benchmark.  ``gate`` judges the newest run of
every benchmark against its rolling baseline and exits nonzero when any
metric regressed — wall-clock metrics by a noise-aware median+MAD band,
deterministic model counters by exact match.  See
``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import argparse
import glob
import os

from repro.bench.gate import (
    DEFAULT_MIN_RUNS,
    DEFAULT_REL_MARGIN,
    DEFAULT_SIGMAS,
    DEFAULT_WINDOW,
    gate_ledger,
)
from repro.bench.ledger import Ledger, history_dir
from repro.bench.render import (
    compare_table,
    format_gate_reports,
    trend_table,
)

__all__ = ["main"]


def _add_history_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history", default=None, metavar="DIR",
        help=(
            "ledger directory (default $REPRO_HISTORY_DIR or "
            "results/history)"
        ),
    )


def _add_gate_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help="rolling baseline window in runs",
    )
    parser.add_argument(
        "--min-runs", type=int, default=DEFAULT_MIN_RUNS,
        help="same-machine runs required before gating a noisy metric",
    )
    parser.add_argument(
        "--sigmas", type=float, default=DEFAULT_SIGMAS,
        help="noise band half-width in MAD-derived standard deviations",
    )
    parser.add_argument(
        "--rel-margin", type=float, default=DEFAULT_REL_MARGIN,
        help="minimum fractional deviation from the median to flag",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Benchmark history ledger: record runs, render trends, "
            "diff runs, gate regressions."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser(
        "record", help="append BENCH_*.json payloads to the ledger"
    )
    p_record.add_argument(
        "paths", nargs="*",
        help=(
            "payload files to ingest (default: every BENCH_*.json under "
            "--from-dir)"
        ),
    )
    p_record.add_argument(
        "--from-dir", default=None, metavar="DIR",
        help=(
            "directory scanned for BENCH_*.json when no paths are given "
            "(default $REPRO_BENCH_OUT or results/bench)"
        ),
    )
    _add_history_arg(p_record)

    p_report = sub.add_parser(
        "report", help="per-benchmark trend tables with sparklines"
    )
    p_report.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names (default: every benchmark in the ledger)",
    )
    p_report.add_argument(
        "--width", type=int, default=24, help="sparkline width in runs"
    )
    _add_history_arg(p_report)

    p_compare = sub.add_parser(
        "compare", help="diff two recorded runs of one benchmark"
    )
    p_compare.add_argument("benchmark")
    p_compare.add_argument(
        "--a", type=int, default=-2, metavar="INDEX",
        help="reference run index into the history (default -2)",
    )
    p_compare.add_argument(
        "--b", type=int, default=-1, metavar="INDEX",
        help="candidate run index into the history (default -1, latest)",
    )
    _add_history_arg(p_compare)

    p_gate = sub.add_parser(
        "gate",
        help="judge the newest runs against baselines; exit 1 on regression",
    )
    p_gate.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names (default: every benchmark in the ledger)",
    )
    p_gate.add_argument(
        "--verbose", action="store_true",
        help="also print passing metrics",
    )
    _add_history_arg(p_gate)
    _add_gate_args(p_gate)
    return parser


def _cmd_record(args) -> int:
    ledger = Ledger(args.history)
    paths = list(args.paths)
    if not paths:
        src = args.from_dir or os.environ.get(
            "REPRO_BENCH_OUT", os.path.join("results", "bench")
        )
        paths = sorted(glob.glob(os.path.join(src, "BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json payloads found; nothing recorded")
        return 1
    for path in paths:
        rec = ledger.record_file(path)
        sha = str(rec.git_sha or "?")[:12]
        print(
            f"recorded {rec.benchmark} @ {sha} "
            f"[{rec.fingerprint}] -> {ledger.path(rec.benchmark)}"
        )
    return 0


def _cmd_report(args) -> int:
    ledger = Ledger(args.history)
    names = args.benchmarks or ledger.benchmarks()
    if not names:
        print(f"no benchmarks recorded under {ledger.root}")
        return 1
    tables = [
        trend_table(name, ledger.records(name), width=args.width)
        for name in names
    ]
    print("\n\n".join(tables))
    return 0


def _cmd_compare(args) -> int:
    ledger = Ledger(args.history)
    records = ledger.records(args.benchmark)
    if len(records) < 2:
        print(
            f"{args.benchmark}: need at least 2 recorded runs to compare, "
            f"have {len(records)}"
        )
        return 1
    try:
        a, b = records[args.a], records[args.b]
    except IndexError:
        print(
            f"{args.benchmark}: run index out of range "
            f"(history holds {len(records)} run(s))"
        )
        return 1
    print(compare_table(a, b))
    return 0


def _cmd_gate(args) -> int:
    ledger = Ledger(args.history)
    reports = gate_ledger(
        ledger,
        args.benchmarks or None,
        window=args.window,
        min_runs=args.min_runs,
        sigmas=args.sigmas,
        rel_margin=args.rel_margin,
    )
    print(format_gate_reports(reports, verbose=args.verbose))
    return 0 if all(r.ok for r in reports) else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli bench ...``."""
    args = _build_parser().parse_args(argv)
    handler = {
        "record": _cmd_record,
        "report": _cmd_report,
        "compare": _cmd_compare,
        "gate": _cmd_gate,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # ``bench report | head`` closes stdout early; exit quietly
        # (and point stdout at devnull so interpreter shutdown doesn't
        # trip over the closed pipe again).
        import sys

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
