"""Rolling statistical baselines over the benchmark history.

Every ledger record's ``data`` block flattens into dotted metric paths
(``timing.mean_s``, ``seconds.dense``, ``supersteps``...).  Each metric
is classified into one of three kinds, because they fail differently:

* ``"noisy"`` — wall-clock and memory measurements.  These scatter from
  run to run, so the baseline is a **median + MAD** (median absolute
  deviation) over the last *K* runs **on the same machine fingerprint
  and workload config**, and the gate only flags values outside a
  noise-scaled band.
* ``"exact"`` — deterministic model counters: modeled XMT cycles,
  message counts, superstep counts, triangle totals.  These are
  machine-independent (any same-config run must reproduce them bit for
  bit), so the baseline is simply the most recent prior value and *any*
  drift is a correctness bug, not noise.
* ``"info"`` — machine facts (core counts, worker lists) that describe
  the environment rather than measure the code; never gated.

Classification is by name first (``timing.``, ``*_s``, ``*_ns``,
``rss``, ``speedup``... are noisy; ``host_cores``... are info) and by
value second: remaining metrics are exact only when every observed
value is integral, so an unrecognized float measurement degrades to the
noise-tolerant path instead of a hair-trigger exact gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.bench.ledger import Record

__all__ = [
    "MAD_TO_SIGMA",
    "Baseline",
    "classify_metric",
    "comparable_records",
    "compute_baseline",
    "flatten_metrics",
    "higher_is_better",
]

#: Scale factor making the MAD a consistent estimator of a normal
#: distribution's standard deviation.
MAD_TO_SIGMA = 1.4826

#: Name fragments that mark a measured (noisy, threshold-gated) metric.
_NOISY = re.compile(
    r"(^|[._])(timing|seconds|speedup|elapsed|wall)([._]|$)"
    r"|_s$|_ns$|_seconds$|_ms$"
    r"|rss|tracemalloc|memory"
)

#: Name fragments for environment facts that are never gated.
_INFO = re.compile(
    r"(^|[._])(host_cores|cpu_count|cores|worker_counts|hostname|rounds)"
    r"([._]|$)"
)

#: Metrics where larger is better (speedups, rates); everything else
#: noisy is treated as a cost where larger is worse.
_HIGHER_IS_BETTER = re.compile(r"speedup|teps|throughput")


def flatten_metrics(data: dict, prefix: str = "") -> dict[str, float]:
    """Flatten a BENCH ``data`` block into dotted numeric metric paths.

    Nested dictionaries contribute their keys as path segments; lists
    contribute element indices.  Strings, booleans, and ``None`` leaves
    are dropped — only numbers are metrics.
    """
    out: dict[str, float] = {}
    if isinstance(data, dict):
        items = ((str(k), v) for k, v in data.items())
    elif isinstance(data, (list, tuple)):
        items = ((str(i), v) for i, v in enumerate(data))
    else:
        return out
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, bool) or value is None:
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, (dict, list, tuple)):
            out.update(flatten_metrics(value, path))
    return out


def classify_metric(path: str, values: list[float]) -> str:
    """``"noisy"``, ``"exact"``, or ``"info"`` for one metric path."""
    if _INFO.search(path):
        return "info"
    if _NOISY.search(path):
        return "noisy"
    if all(float(v).is_integer() for v in values):
        return "exact"
    return "noisy"


def higher_is_better(path: str) -> bool:
    """True when a larger value of this noisy metric is the good side."""
    return bool(_HIGHER_IS_BETTER.search(path))


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class Baseline:
    """Rolling statistics of one metric over comparable history runs."""

    metric: str
    kind: str
    #: Historical values, oldest first (already windowed to K).
    values: tuple = field(default_factory=tuple)

    @property
    def count(self) -> int:
        """Number of baseline observations."""
        return len(self.values)

    @property
    def median(self) -> float | None:
        """Median of the baseline window, ``None`` when empty."""
        return _median(list(self.values)) if self.values else None

    @property
    def mad(self) -> float | None:
        """Median absolute deviation around the median."""
        if not self.values:
            return None
        med = self.median
        return _median([abs(v - med) for v in self.values])

    @property
    def sigma(self) -> float | None:
        """MAD scaled to a normal-equivalent standard deviation."""
        mad = self.mad
        return None if mad is None else mad * MAD_TO_SIGMA

    @property
    def last(self) -> float | None:
        """Most recent baseline value (the exact-gate reference)."""
        return self.values[-1] if self.values else None


def comparable_records(
    history: list[Record],
    config: dict,
    *,
    fingerprint: str | None = None,
) -> list[Record]:
    """History runs statistically comparable to a new run.

    Always requires an equal workload ``config`` (a scale-10 run says
    nothing about a scale-14 baseline); additionally requires the same
    machine ``fingerprint`` when one is given (wall-clock comparisons).
    """
    out = []
    for rec in history:
        if rec.config != config:
            continue
        if fingerprint is not None and rec.fingerprint != fingerprint:
            continue
        out.append(rec)
    return out


def compute_baseline(
    metric: str,
    kind: str,
    records: list[Record],
    *,
    window: int = 8,
) -> Baseline:
    """Baseline for one metric over the last ``window`` comparable runs."""
    values = []
    for rec in records:
        flat = flatten_metrics(rec.data)
        if metric in flat:
            values.append(flat[metric])
    return Baseline(metric=metric, kind=kind, values=tuple(values[-window:]))
