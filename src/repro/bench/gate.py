"""Regression gating: judge each new benchmark run against its history.

For every metric of the newest ledger record the gate produces one
:class:`MetricVerdict`:

* ``ok`` — within the baseline's noise band (noisy) or bit-identical to
  the prior value (exact);
* ``improved`` — outside the band on the good side;
* ``regressed`` — outside the band on the bad side, or *any* drift of a
  deterministic model counter (modeled cycles, message counts,
  superstep counts — those cannot move without a code-behavior change);
* ``new`` — not enough comparable history to gate yet (fewer than
  ``min_runs`` same-fingerprint runs for noisy metrics, no prior
  same-config run for exact metrics);
* ``skipped`` — environment facts (``info`` kind) that are never gated.

The noisy threshold is noise-aware: a run regresses only when it lands
more than ``sigmas`` MAD-derived standard deviations *and* more than
``rel_margin`` (fractional) away from the rolling median, so a
dead-stable series doesn't flag on scheduler jitter and a noisy series
doesn't flag inside its own historical scatter.

:func:`gate_ledger` applies this to every benchmark in a ledger and is
what ``repro bench gate`` (and CI) calls; any ``regressed`` verdict
makes the overall gate fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.baseline import (
    Baseline,
    classify_metric,
    comparable_records,
    compute_baseline,
    flatten_metrics,
    higher_is_better,
)
from repro.bench.ledger import Ledger, Record

__all__ = [
    "GateReport",
    "MetricVerdict",
    "evaluate_record",
    "gate_ledger",
]

#: Default rolling-window length (runs) for noisy baselines.
DEFAULT_WINDOW = 8

#: Same-fingerprint runs required before a noisy metric is gated.
DEFAULT_MIN_RUNS = 3

#: Band half-width in MAD-derived standard deviations.
DEFAULT_SIGMAS = 4.0

#: Minimum fractional deviation from the median to flag at all.
DEFAULT_REL_MARGIN = 0.10


@dataclass(frozen=True)
class MetricVerdict:
    """Gate outcome for one metric of one run."""

    metric: str
    kind: str
    status: str
    value: float
    baseline: Baseline
    #: Human-readable one-liner explaining the status.
    detail: str = ""

    @property
    def regressed(self) -> bool:
        """True when this metric fails the gate."""
        return self.status == "regressed"


@dataclass
class GateReport:
    """All verdicts for one gated run (or one whole ledger)."""

    benchmark: str
    verdicts: list[MetricVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no metric regressed."""
        return not any(v.regressed for v in self.verdicts)

    @property
    def regressions(self) -> list[MetricVerdict]:
        """The failing verdicts."""
        return [v for v in self.verdicts if v.regressed]

    def counts(self) -> dict[str, int]:
        """Status histogram (``{"ok": 12, "regressed": 1, ...}``)."""
        out: dict[str, int] = {}
        for v in self.verdicts:
            out[v.status] = out.get(v.status, 0) + 1
        return out


def _noisy_verdict(
    metric: str,
    value: float,
    baseline: Baseline,
    *,
    min_runs: int,
    sigmas: float,
    rel_margin: float,
) -> MetricVerdict:
    if baseline.count < min_runs:
        return MetricVerdict(
            metric, "noisy", "new", value, baseline,
            f"only {baseline.count} comparable run(s), need {min_runs}",
        )
    median = baseline.median
    band = max(sigmas * baseline.sigma, rel_margin * abs(median))
    delta = value - median
    if abs(delta) <= band or median == value:
        status, detail = "ok", ""
    else:
        worse = delta > 0
        if higher_is_better(metric):
            worse = not worse
        status = "regressed" if worse else "improved"
        pct = (delta / median * 100.0) if median else float("inf")
        detail = (
            f"{value:g} vs median {median:g} "
            f"({pct:+.1f}%, band +/-{band:g})"
        )
    return MetricVerdict(metric, "noisy", status, value, baseline, detail)


def _exact_verdict(
    metric: str, value: float, baseline: Baseline
) -> MetricVerdict:
    if baseline.count == 0:
        return MetricVerdict(
            metric, "exact", "new", value, baseline, "no prior run"
        )
    prior = baseline.last
    if value == prior:
        return MetricVerdict(metric, "exact", "ok", value, baseline)
    return MetricVerdict(
        metric, "exact", "regressed", value, baseline,
        f"deterministic counter drifted: {prior:g} -> {value:g} "
        f"(drift here is a correctness bug, not noise)",
    )


def evaluate_record(
    record: Record,
    history: list[Record],
    *,
    window: int = DEFAULT_WINDOW,
    min_runs: int = DEFAULT_MIN_RUNS,
    sigmas: float = DEFAULT_SIGMAS,
    rel_margin: float = DEFAULT_REL_MARGIN,
) -> GateReport:
    """Judge one run against its prior history (newest run excluded).

    ``history`` is the benchmark's prior record list; an entry that *is*
    ``record`` is ignored so the run under test never baselines itself.
    """
    prior = [rec for rec in history if rec is not record]
    metrics = flatten_metrics(record.data)
    same_machine = comparable_records(
        prior, record.config, fingerprint=record.fingerprint
    )
    same_config = comparable_records(prior, record.config)

    report = GateReport(benchmark=record.benchmark)
    for metric in sorted(metrics):
        value = metrics[metric]
        observed = [value] + [
            flatten_metrics(r.data)[metric]
            for r in same_config
            if metric in flatten_metrics(r.data)
        ]
        kind = classify_metric(metric, observed)
        if kind == "info":
            report.verdicts.append(
                MetricVerdict(
                    metric, "info", "skipped", value,
                    Baseline(metric, "info"), "environment fact",
                )
            )
        elif kind == "exact":
            baseline = compute_baseline(
                metric, kind, same_config, window=window
            )
            report.verdicts.append(_exact_verdict(metric, value, baseline))
        else:
            baseline = compute_baseline(
                metric, kind, same_machine, window=window
            )
            report.verdicts.append(
                _noisy_verdict(
                    metric, value, baseline,
                    min_runs=min_runs, sigmas=sigmas, rel_margin=rel_margin,
                )
            )
    return report


def gate_ledger(
    ledger: Ledger,
    benchmarks: list[str] | None = None,
    *,
    window: int = DEFAULT_WINDOW,
    min_runs: int = DEFAULT_MIN_RUNS,
    sigmas: float = DEFAULT_SIGMAS,
    rel_margin: float = DEFAULT_REL_MARGIN,
) -> list[GateReport]:
    """Gate the newest run of each benchmark in the ledger."""
    names = benchmarks if benchmarks else ledger.benchmarks()
    reports = []
    for name in names:
        records = ledger.records(name)
        if not records:
            continue
        reports.append(
            evaluate_record(
                records[-1],
                records[:-1],
                window=window,
                min_runs=min_runs,
                sigmas=sigmas,
                rel_margin=rel_margin,
            )
        )
    return reports
