"""ASCII rendering of the benchmark history: trends, gates, diffs.

Everything here returns plain strings — same convention as
:mod:`repro.analysis.report` — so the ``repro bench`` subcommands can
print to any terminal and tests can assert on substrings.  Sparklines
use a pure-ASCII ramp (``_.:-=+*#%@``) rather than Unicode blocks, to
match the rest of the repository's ASCII-only output.
"""

from __future__ import annotations

from repro.bench.baseline import classify_metric, flatten_metrics
from repro.bench.gate import GateReport
from repro.bench.ledger import Record

__all__ = [
    "compare_table",
    "format_gate_reports",
    "sparkline",
    "trend_table",
]

#: Low-to-high ASCII luminance ramp for sparklines.
SPARK_RAMP = "_.:-=+*#%@"


def sparkline(values: list[float], width: int = 24) -> str:
    """Render a numeric series as a fixed-ramp ASCII sparkline.

    The last ``width`` values are scaled into the ramp between the
    series minimum and maximum; a flat series renders as a flat line of
    midpoints.  Non-finite values render as ``?``.
    """
    tail = list(values)[-width:]
    if not tail:
        return ""
    finite = [v for v in tail if v == v and abs(v) != float("inf")]
    if not finite:
        return "?" * len(tail)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in tail:
        if v != v or abs(v) == float("inf"):
            out.append("?")
        elif span == 0:
            out.append(SPARK_RAMP[len(SPARK_RAMP) // 2])
        else:
            idx = int((v - lo) / span * (len(SPARK_RAMP) - 1))
            out.append(SPARK_RAMP[idx])
    return "".join(out)


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if float(value).is_integer() and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.4g}"


def trend_table(
    benchmark: str, records: list[Record], *, width: int = 24
) -> str:
    """Per-metric trend of one benchmark over its recorded history.

    One row per metric: kind, latest value, rolling median, the delta
    of the latest run against that median, and a sparkline of the
    series (oldest to newest, last ``width`` runs).
    """
    if not records:
        return f"{benchmark}: no recorded runs"
    series: dict[str, list[float]] = {}
    for rec in records:
        for path, value in flatten_metrics(rec.data).items():
            series.setdefault(path, []).append(value)
    latest = flatten_metrics(records[-1].data)

    sha = records[-1].provenance.get("git_sha") or "?"
    head = (
        f"{benchmark}: {len(records)} run(s), latest "
        f"{records[-1].provenance.get('timestamp_utc', '?')} "
        f"@ {str(sha)[:12]}"
    )
    name_w = max(len("metric"), *(len(p) for p in series))
    header = (
        f"{'metric':<{name_w}} {'kind':<5} {'latest':>12} "
        f"{'median':>12} {'delta':>8}  trend"
    )
    lines = [head, header, "-" * len(header)]
    for path in sorted(series):
        values = series[path]
        kind = classify_metric(path, values)
        med = sorted(values)[len(values) // 2]
        value = latest.get(path)
        if value is None or med == 0:
            delta = "-"
        else:
            delta = f"{(value - med) / abs(med) * 100.0:+.1f}%"
        lines.append(
            f"{path:<{name_w}} {kind:<5} {_fmt(value):>12} "
            f"{_fmt(med):>12} {delta:>8}  {sparkline(values, width)}"
        )
    return "\n".join(lines)


_STATUS_TAG = {
    "ok": "OK ",
    "improved": "IMP",
    "regressed": "REG",
    "new": "NEW",
    "skipped": "-- ",
}


def format_gate_reports(
    reports: list[GateReport], *, verbose: bool = False
) -> str:
    """Render gate verdicts: summary per benchmark, detail on failures.

    Non-``ok`` verdicts always print; passing metrics print only with
    ``verbose``.  Ends with an overall PASS/FAIL line.
    """
    lines = []
    failed = False
    for report in reports:
        counts = report.counts()
        summary = ", ".join(
            f"{counts[k]} {k}" for k in sorted(counts) if counts[k]
        )
        lines.append(f"{report.benchmark}: {summary}")
        for v in report.verdicts:
            if v.status == "ok" and not verbose:
                continue
            if v.status == "skipped" and not verbose:
                continue
            tag = _STATUS_TAG.get(v.status, "?  ")
            detail = f"  ({v.detail})" if v.detail else ""
            lines.append(
                f"  [{tag}] {v.metric} = {_fmt(v.value)} [{v.kind}]{detail}"
            )
        failed = failed or not report.ok
    if not reports:
        lines.append("no benchmarks recorded; nothing to gate")
    lines.append(f"gate: {'FAIL' if failed else 'PASS'}")
    return "\n".join(lines)


def compare_table(a: Record, b: Record) -> str:
    """Metric-by-metric diff of two runs of the same benchmark.

    ``a`` is the reference (older) run, ``b`` the candidate; rows show
    both values and the relative change.  Metrics present in only one
    run render with a ``-`` on the missing side.
    """
    fa, fb = flatten_metrics(a.data), flatten_metrics(b.data)
    paths = sorted(set(fa) | set(fb))
    name_w = max(len("metric"), *(len(p) for p in paths)) if paths else 6

    def _sha(rec: Record) -> str:
        return str(rec.provenance.get("git_sha") or "?")[:12]

    head = (
        f"{a.benchmark}: {_sha(a)} ({a.provenance.get('timestamp_utc', '?')})"
        f" -> {_sha(b)} ({b.provenance.get('timestamp_utc', '?')})"
    )
    header = f"{'metric':<{name_w}} {'a':>14} {'b':>14} {'change':>9}"
    lines = [head, header, "-" * len(header)]
    for path in paths:
        va, vb = fa.get(path), fb.get(path)
        if va is None or vb is None or va == 0:
            change = "-"
        else:
            change = f"{(vb - va) / abs(va) * 100.0:+.1f}%"
        lines.append(
            f"{path:<{name_w}} {_fmt(va):>14} {_fmt(vb):>14} {change:>9}"
        )
    return "\n".join(lines)
