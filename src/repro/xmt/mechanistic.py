"""Mechanistic region pricing: the stream scheduler as a cost model.

The analytic model (:mod:`repro.xmt.cost_model`) prices a region with
three closed-form bounds.  This module prices the *same* region by
construction: it converts the region's operation counts into a synthetic
per-stream workload, schedules it on the cycle-level
:class:`~repro.xmt.streams.StreamSimulator` for one processor, and
scales by the processor count (processors share no structural state in
this workload model — the machine's hashed memory removes locality — so
per-processor simulation composes multiplicatively until the region runs
out of parallel items).

Purpose: **cross-validation**.  The test suite asserts the analytic and
mechanistic prices agree within a small factor across the regions the
experiments actually produce, which is what licenses using the (much
cheaper) analytic model everywhere else.  Two scoped differences:

* hotspot serialization has no mechanistic counterpart here (it lives in
  the memory controller, not the issue pipeline), so comparisons exclude
  hotspot-bound regions;
* on perfectly *regular* synthetic chains the mechanistic price runs
  ~1.5x below the analytic one — the analytic ``stream_utilization`` of
  0.5 models the dependence stalls and degree variance of irregular
  graph workloads, which uniform chains do not exhibit.  Real experiment
  regions agree within ~±25%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmt.machine import XMTMachine
from repro.xmt.streams import StreamSimulator, StreamWorkload
from repro.xmt.trace import RegionTrace

__all__ = ["MechanisticPrice", "price_region_mechanistically"]

#: Cap on simulated instructions per region (the simulator is
#: O(instructions); large regions are scaled down and re-scaled after).
_MAX_SIMULATED_INSTRUCTIONS = 400_000


@dataclass(frozen=True)
class MechanisticPrice:
    """Outcome of mechanistically pricing one region."""

    region: RegionTrace
    cycles: float
    seconds: float
    utilization: float
    #: Work scale-down applied before simulation (1.0 = exact).
    sampling_factor: float


def price_region_mechanistically(
    region: RegionTrace, machine: XMTMachine
) -> MechanisticPrice:
    """Price ``region`` by scheduling it on the stream simulator.

    The region's items are spread across processors; each processor
    receives ``items / P`` independent chains whose instruction mix
    matches the region's memory-operation ratio.  Overheads (loop
    startup, barriers, superstep costs) are added exactly as in the
    analytic model so the comparison isolates the compute term.
    """
    total_instr = region.total_instructions
    mem = region.memory_ops
    if total_instr <= 0 or region.parallel_items <= 0:
        overhead = _overhead_cycles(region, machine)
        return MechanisticPrice(
            region=region, cycles=overhead,
            seconds=machine.seconds(overhead), utilization=0.0,
            sampling_factor=1.0,
        )

    items_per_proc = max(region.parallel_items / machine.num_processors, 1.0)
    instr_per_proc = total_instr / machine.num_processors

    # Scale the per-processor workload down to keep simulation cheap.
    sampling = min(1.0, _MAX_SIMULATED_INSTRUCTIONS / instr_per_proc)
    sim_items = max(int(round(items_per_proc * sampling)), 1)
    sim_instr_per_item = max(
        int(round(total_instr / max(region.parallel_items, 1))), 1
    )
    # Memory period from the region's own instruction mix (floor, so the
    # simulated workload never under-represents memory traffic).
    mem_fraction = mem / total_instr if total_instr else 0.0
    period = max(int(1.0 / mem_fraction), 1) if mem_fraction > 0 else (
        sim_instr_per_item + 1
    )

    # Streams available on one processor, capped by the work items.
    streams = min(
        machine.streams_per_processor,
        max(sim_items, 1),
    )
    simulator = StreamSimulator(
        num_streams=streams,
        memory_latency_cycles=max(int(machine.memory_latency_cycles), 1),
    )
    # Each stream runs its share of the items back to back.
    chains_per_stream = max(int(round(sim_items / streams)), 1)
    workload = StreamWorkload(
        instructions=sim_instr_per_item * chains_per_stream,
        memory_period=period,
    )
    result = simulator.run(workload)

    compute_cycles = result.cycles / sampling
    overhead = _overhead_cycles(region, machine)
    total = compute_cycles + overhead
    return MechanisticPrice(
        region=region,
        cycles=total,
        seconds=machine.seconds(total),
        utilization=result.utilization,
        sampling_factor=sampling,
    )


def _overhead_cycles(region: RegionTrace, machine: XMTMachine) -> float:
    if region.kind == "serial":
        return 0.0
    overhead = machine.loop_startup_cycles + machine.barrier_cycles()
    if region.kind == "superstep":
        overhead += machine.superstep_overhead_cycles
    return overhead
