"""Per-operation instruction costs shared by all instrumented kernels.

These constants translate algorithmic events ("visited an edge",
"enqueued a message") into the instruction/memory-operation mix the cost
model prices.  They are *machine-independent kernel accounting*, fixed
once for the whole suite — no benchmark gets its own fudge factor.  Each
value notes its rationale; none is calibrated against the paper's absolute
seconds (the reproduction targets shape and ratios, per DESIGN.md §4).

Rationale sketch for the common case, an edge relaxation in compiled
XMT-C: load neighbour id, load its state, compare, conditionally store —
2-3 memory references plus address arithmetic, bounds, and branch
instructions.  The XMT counts every issue slot, so bookkeeping
instructions matter as much as ALU work.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCosts", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class KernelCosts:
    """Instruction-count coefficients for kernel events."""

    #: Plain instructions accompanying each edge examination in a
    #: shared-memory kernel (index arithmetic, compare, branch).
    edge_visit_instructions: float = 8.0

    #: Plain instructions per vertex touch (loop iteration setup, state
    #: load address computation).
    vertex_touch_instructions: float = 6.0

    #: Instructions to construct and enqueue one BSP message beyond its
    #: memory traffic: envelope fill, target queue lookup, block index
    #: arithmetic, overflow checks.  Messages are the BSP model's currency
    #: and its overhead (paper §VII: the Cray XMT has no native
    #: enqueue/dequeue support, so the runtime synthesizes queues in
    #: software — expensive per message).
    message_enqueue_instructions: float = 48.0

    #: Instructions to receive/dispatch one message in the next superstep
    #: (dequeue, type dispatch, loop bookkeeping).
    message_receive_instructions: float = 24.0

    #: Memory writes per enqueued message: payload, sender id, queue slot
    #: link, and amortized block allocation.
    message_enqueue_writes: float = 4.0

    #: Memory reads per received message: payload + slot + queue head.
    message_receive_reads: float = 3.0

    #: Atomic fetch-and-adds per enqueued message (queue tail reservation).
    message_enqueue_atomics: float = 1.0

    #: Messages sharing one queue-tail counter word.  The runtime shards
    #: the tail across this many vertices' worth of queues; smaller means
    #: more counters and less contention.  1024 reflects a block-allocated
    #: queue like the paper's GraphCT-hosted BSP runtime, where the
    #: fetch-and-add "is possible, inhibiting scalability" (§VII).
    message_queue_shard: int = 1024

    #: Instructions per binary-search / merge step in neighbourhood
    #: intersection (triangle counting).
    intersection_step_instructions: float = 6.0

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.message_queue_shard < 1:
            raise ValueError("message_queue_shard must be >= 1")


#: The one shared accounting used by every kernel and benchmark.
DEFAULT_COSTS = KernelCosts()
