"""The analytic cost model: work trace + machine → simulated time.

Each region's time is the maximum of three bounds, plus fixed overheads —
exactly the regimes the paper reasons about in §III–§VI:

``issue bound``
    The XMT retires at most one instruction per processor per cycle when
    enough streams are ready.  Regions with abundant parallelism are
    priced here and therefore scale linearly in P (Fig. 1 "even vertical
    spacing", Fig. 4 linear triangle-counting scaling).

``latency bound``
    When a region exposes fewer work items than the machine has effective
    streams, memory latency can no longer be hidden; time degenerates to
    (serial chain length) x (latency) / (items in flight) and stops
    depending on P.  This reproduces the flat scaling of the small early /
    late BFS levels and the BSP tail supersteps (Figs. 1 and 3).

``hotspot bound``
    Atomic fetch-and-adds to one word are serviced serially by its memory
    controller.  A region whose atomics pile onto few locations (message
    queue counters!) is bounded below by ``atomic_max_site x service
    time`` regardless of P — the contention the paper blames for reduced
    BSP message-queue scalability (§IV, §VII).

Overheads: every parallel region pays a loop-startup plus a barrier that
grows with log2(P); BSP supersteps additionally pay the runtime's
queue-swap/active-set overhead, which dominates near-empty supersteps
(§IV: "the overhead of the early and late iterations is two orders of
magnitude larger").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmt.machine import XMTMachine
from repro.xmt.trace import RegionTrace, WorkTrace

__all__ = ["SimulatedRegion", "SimulatedRun", "simulate", "simulate_region"]


@dataclass(frozen=True)
class SimulatedRegion:
    """Priced execution of one region on one machine configuration."""

    region: RegionTrace
    issue_cycles: float
    latency_cycles: float
    hotspot_cycles: float
    overhead_cycles: float
    total_cycles: float
    seconds: float

    @property
    def bound(self) -> str:
        """Which bound determined this region's time (ignoring overhead)."""
        best = max(self.issue_cycles, self.latency_cycles, self.hotspot_cycles)
        if best <= 0:
            return "overhead"
        if best == self.hotspot_cycles:
            return "hotspot"
        if best == self.latency_cycles:
            return "latency"
        return "issue"


@dataclass
class SimulatedRun:
    """Priced execution of a whole trace."""

    machine: XMTMachine
    regions: list[SimulatedRegion] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.regions)

    @property
    def total_cycles(self) -> float:
        return sum(r.total_cycles for r in self.regions)

    def seconds_by_iteration(self) -> dict[int, float]:
        """Per-iteration totals — the series Figures 1 and 3 plot."""
        out: dict[int, float] = {}
        for r in self.regions:
            it = r.region.iteration
            if it >= 0:
                out[it] = out.get(it, 0.0) + r.seconds
        return dict(sorted(out.items()))

    def seconds_by_name(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self.regions:
            out[r.region.name] = out.get(r.region.name, 0.0) + r.seconds
        return out


def simulate_region(region: RegionTrace, machine: XMTMachine) -> SimulatedRegion:
    """Price one region on one machine configuration."""
    mem = region.memory_ops
    instr = region.total_instructions

    if region.kind == "serial" or region.parallel_items <= 1:
        # Serial section: one stream, full latency on every reference.
        issue = 0.0
        latency = region.instructions + mem * (machine.memory_latency_cycles + 1.0)
        concurrency = 1.0
    else:
        concurrency = machine.concurrency(region.parallel_items)
        # Throughput bound: every instruction occupies one issue slot.
        issue = instr / machine.issue_bandwidth
        # Latency bound: each item is a serial dependence chain of its
        # share of instructions and memory round trips; `concurrency`
        # chains run in flight simultaneously.
        per_chain = (
            region.instructions + mem * (machine.memory_latency_cycles + 1.0)
        ) / max(region.parallel_items, 1)
        latency = per_chain * region.parallel_items / concurrency

    hotspot = region.atomic_max_site * machine.atomic_service_cycles

    overhead = 0.0
    if region.kind != "serial":
        overhead = machine.loop_startup_cycles + machine.barrier_cycles()
    if region.kind == "superstep":
        overhead += machine.superstep_overhead_cycles

    total = max(issue, latency, hotspot) + overhead
    return SimulatedRegion(
        region=region,
        issue_cycles=issue,
        latency_cycles=latency,
        hotspot_cycles=hotspot,
        overhead_cycles=overhead,
        total_cycles=total,
        seconds=machine.seconds(total),
    )


def simulate(trace: WorkTrace, machine: XMTMachine) -> SimulatedRun:
    """Price a whole trace; regions execute back to back (the kernels'
    parallel regions are separated by barriers on the real machine)."""
    run = SimulatedRun(machine=machine)
    for region in trace:
        run.regions.append(simulate_region(region, machine))
    return run
