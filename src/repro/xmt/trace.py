"""Work traces: what an instrumented kernel did, region by region.

A *region* is one parallel construct — a parallel loop in the GraphCT
kernels, or one phase of a BSP superstep.  The instrumented kernels record,
per region, the operation counts the cost model needs: independent work
items (available parallelism), instructions, memory reads/writes, atomic
fetch-and-adds and the worst per-location atomic count (hotspot pressure).

Traces are machine-independent: one algorithm execution yields one trace,
which the cost model can then price for any processor count.  This is what
makes the paper's processor sweeps affordable — the algorithm runs once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

__all__ = ["RegionTrace", "WorkTrace"]


@dataclass(frozen=True)
class RegionTrace:
    """Operation counts for one parallel region.

    Parameters
    ----------
    name:
        Region identifier, e.g. ``"bfs/level"`` or ``"cc/superstep"``.
    parallel_items:
        Number of independent work items the region exposes — the
        parallelism available to the machine (frontier size, active-vertex
        count, edge count...).  This is the quantity the paper's
        scalability analysis revolves around.
    instructions:
        Non-memory instructions executed across all items.
    reads / writes:
        Memory references (each costs a round trip unless hidden).
    atomics:
        Atomic fetch-and-add operations (counted separately because they
        also serialize per location).
    atomic_max_site:
        Largest number of atomics aimed at a single memory word — the
        hotspot depth.  0 when the region performs no atomics.
    kind:
        ``"loop"`` for plain parallel loops, ``"superstep"`` for BSP
        supersteps (which carry extra runtime overhead), ``"serial"`` for
        sequential sections.
    iteration:
        Iteration / superstep / BFS-level index the region belongs to, or
        -1 when not applicable.  Figures 1-3 group regions by this.
    """

    name: str
    parallel_items: int
    instructions: float = 0.0
    reads: float = 0.0
    writes: float = 0.0
    atomics: float = 0.0
    atomic_max_site: float = 0.0
    kind: str = "loop"
    iteration: int = -1

    _KINDS = ("loop", "superstep", "serial")

    def __post_init__(self) -> None:
        if self.parallel_items < 0:
            raise ValueError("parallel_items must be non-negative")
        for f in ("instructions", "reads", "writes", "atomics", "atomic_max_site"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be non-negative")
        if self.atomic_max_site > self.atomics:
            raise ValueError("atomic_max_site cannot exceed total atomics")
        if self.kind not in self._KINDS:
            raise ValueError(f"kind must be one of {self._KINDS}")

    @property
    def memory_ops(self) -> float:
        """All memory references (reads + writes + atomics)."""
        return self.reads + self.writes + self.atomics

    @property
    def total_instructions(self) -> float:
        """Everything that occupies an issue slot."""
        return self.instructions + self.memory_ops

    def scaled(self, factor: float) -> "RegionTrace":
        """Multiply all operation counts (and parallelism) by ``factor``.

        Used to extrapolate measured miniature-scale work to the paper's
        graph size; self-similarity of RMAT makes per-iteration work scale
        approximately linearly in edge count.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            parallel_items=max(int(round(self.parallel_items * factor)), 1)
            if self.parallel_items
            else 0,
            instructions=self.instructions * factor,
            reads=self.reads * factor,
            writes=self.writes * factor,
            atomics=self.atomics * factor,
            atomic_max_site=self.atomic_max_site * factor,
        )


@dataclass
class WorkTrace:
    """An ordered list of region traces for one algorithm execution."""

    regions: list[RegionTrace] = field(default_factory=list)
    label: str = ""

    def add(self, region: RegionTrace) -> None:
        self.regions.append(region)

    def extend(self, regions: Iterable[RegionTrace]) -> None:
        self.regions.extend(regions)

    def __iter__(self) -> Iterator[RegionTrace]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    # ------------------------------------------------------------------
    # Aggregations used by experiments and EXPERIMENTS.md accounting
    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> float:
        return sum(r.reads for r in self.regions)

    @property
    def total_writes(self) -> float:
        return sum(r.writes for r in self.regions)

    @property
    def total_atomics(self) -> float:
        return sum(r.atomics for r in self.regions)

    @property
    def total_instructions(self) -> float:
        return sum(r.total_instructions for r in self.regions)

    def iterations(self) -> list[int]:
        """Sorted distinct iteration indices present in the trace."""
        return sorted({r.iteration for r in self.regions if r.iteration >= 0})

    def for_iteration(self, iteration: int) -> "WorkTrace":
        """Sub-trace of regions belonging to one iteration/superstep."""
        return WorkTrace(
            regions=[r for r in self.regions if r.iteration == iteration],
            label=self.label,
        )

    def by_name(self, name: str) -> "WorkTrace":
        """Sub-trace of regions with a given name."""
        return WorkTrace(
            regions=[r for r in self.regions if r.name == name],
            label=self.label,
        )

    def scaled(self, factor: float) -> "WorkTrace":
        """Extrapolate every region (see :meth:`RegionTrace.scaled`)."""
        return WorkTrace(
            regions=[r.scaled(factor) for r in self.regions], label=self.label
        )

    # ------------------------------------------------------------------
    # Serialization — traces are the interface between one algorithm
    # execution and any number of machine sweeps, so they persist.
    # ------------------------------------------------------------------
    _FORMAT_VERSION = 1

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "format_version": self._FORMAT_VERSION,
            "label": self.label,
            "regions": [
                {
                    "name": r.name,
                    "parallel_items": r.parallel_items,
                    "instructions": r.instructions,
                    "reads": r.reads,
                    "writes": r.writes,
                    "atomics": r.atomics,
                    "atomic_max_site": r.atomic_max_site,
                    "kind": r.kind,
                    "iteration": r.iteration,
                }
                for r in self.regions
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkTrace":
        """Inverse of :meth:`to_dict`; validates the format version."""
        version = data.get("format_version")
        if version != cls._FORMAT_VERSION:
            raise ValueError(f"unsupported trace version {version!r}")
        return cls(
            regions=[RegionTrace(**r) for r in data["regions"]],
            label=data.get("label", ""),
        )

    def save(self, path) -> None:
        """Write the trace as JSON."""
        import json

        with open(path, "w", encoding="ascii") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    @classmethod
    def load(cls, path) -> "WorkTrace":
        """Read a trace written by :meth:`save`."""
        import json

        with open(path, "r", encoding="ascii") as fh:
            return cls.from_dict(json.load(fh))
