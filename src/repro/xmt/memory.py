"""Functional simulation of Cray XMT memory semantics.

The XMT's defining synchronization features (paper §II) are:

* **full/empty bits** — every 64-bit word carries a tag bit; ``readfe``
  blocks until the word is *full*, returns it and marks it *empty*, while
  ``writeef`` blocks until *empty*, stores and marks *full*.  These give
  fine-grained producer/consumer synchronization without locks.
* **atomic fetch-and-add** — ``int_fetch_add`` returns the old value and
  adds atomically; it is the idiom for parallel queue tails and counters.
* **hashed global memory** — addresses are scrambled across memory modules
  to spread hot blocks, though a *single word* still lives in one module
  (which is why single-counter hotspots serialize).

This module reproduces those semantics *functionally* for the reference
(non-vectorized) kernels and the BSP runtime, with instrumentation hooks
so the cost model can see the operation mix.  Execution here is sequential
Python, so "blocking" on an unavailable full/empty state is a programming
error (it would deadlock a sequential schedule) and raises
:class:`MemoryDeadlockError` — which is itself faithful: the same access
pattern deadlocks on real hardware when no other thread can run.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.counters import OpCounter

__all__ = [
    "MemoryDeadlockError",
    "FullEmptyArray",
    "AtomicCounter",
    "HashedMemory",
]


class MemoryDeadlockError(RuntimeError):
    """A full/empty access blocked forever under a sequential schedule."""


class FullEmptyArray:
    """An array of words with full/empty tag bits.

    Implements the XMT generic operations the paper's kernels rely on:
    ``readff`` (read when full, leave full), ``readfe`` (read when full,
    set empty), ``writeef`` (write when empty, set full), and the
    unconditional ``purge`` / ``write_xf``.
    """

    def __init__(
        self,
        size: int,
        fill: float | int = 0,
        *,
        initially_full: bool = True,
        counter: OpCounter | None = None,
        dtype=np.int64,
    ) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._values = np.full(size, fill, dtype=dtype)
        self._full = np.full(size, initially_full, dtype=bool)
        self.counter = counter if counter is not None else OpCounter()

    def __len__(self) -> int:
        return self._values.size

    def _check(self, index: int) -> None:
        if not 0 <= index < self._values.size:
            raise IndexError(f"index {index} out of range")

    def is_full(self, index: int) -> bool:
        self._check(index)
        return bool(self._full[index])

    def readff(self, index: int):
        """Read when full; leaves the bit full (ordinary synchronized load)."""
        self._check(index)
        self.counter.reads += 1
        if not self._full[index]:
            raise MemoryDeadlockError(
                f"readff on empty word {index}: no producer can run"
            )
        return self._values[index].item()

    def readfe(self, index: int):
        """Read when full; sets the bit empty (consume)."""
        self._check(index)
        self.counter.reads += 1
        if not self._full[index]:
            raise MemoryDeadlockError(
                f"readfe on empty word {index}: no producer can run"
            )
        self._full[index] = False
        return self._values[index].item()

    def writeef(self, index: int, value) -> None:
        """Write when empty; sets the bit full (produce)."""
        self._check(index)
        self.counter.writes += 1
        if self._full[index]:
            raise MemoryDeadlockError(
                f"writeef on full word {index}: no consumer can run"
            )
        self._values[index] = value
        self._full[index] = True

    def write_xf(self, index: int, value) -> None:
        """Unconditional write; sets the bit full."""
        self._check(index)
        self.counter.writes += 1
        self._values[index] = value
        self._full[index] = True

    def purge(self, index: int) -> None:
        """Set the bit empty without reading (XMT ``purge``)."""
        self._check(index)
        self.counter.writes += 1
        self._full[index] = False

    def snapshot(self) -> np.ndarray:
        """Copy of the current values (test/debug helper)."""
        return self._values.copy()


class AtomicCounter:
    """An ``int_fetch_add`` word, instrumented for hotspot accounting."""

    def __init__(self, initial: int = 0, *, counter: OpCounter | None = None):
        self._value = int(initial)
        self.counter = counter if counter is not None else OpCounter()
        #: number of fetch-and-adds served — by definition all on one
        #: location, so this *is* the hotspot depth of this counter.
        self.contended_ops = 0

    @property
    def value(self) -> int:
        return self._value

    def fetch_add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; returns the previous value."""
        old = self._value
        self._value += int(delta)
        self.counter.atomics += 1
        self.contended_ops += 1
        return old

    def reset(self, value: int = 0) -> None:
        self._value = int(value)
        self.contended_ops = 0


class HashedMemory:
    """Model of the XMT's address scrambling across memory modules.

    The machine hashes physical addresses so consecutive words land in
    different modules, destroying locality on purpose (paper §II: "memory
    addresses are hashed globally to break up locality and reduce
    hot-spotting").  This class exposes that mapping and per-module load
    accounting, used by tests and the ablation bench to show why scattered
    traffic balances while a single hot word still serializes.
    """

    #: Multiplier of a 64-bit multiplicative hash (splitmix64 finalizer).
    _MIX = 0x9E3779B97F4A7C15

    def __init__(self, num_modules: int = 128, *, seed: int = 0):
        if num_modules < 1:
            raise ValueError("num_modules must be >= 1")
        self.num_modules = num_modules
        self._seed = np.uint64(seed)
        self.module_loads = np.zeros(num_modules, dtype=np.int64)

    def module_of(self, address: int | np.ndarray) -> np.ndarray | int:
        """Memory module serving ``address`` (vectorized)."""
        a = np.asarray(address, dtype=np.uint64)
        with np.errstate(over="ignore"):
            x = (a + self._seed) * np.uint64(self._MIX)
            x ^= x >> np.uint64(31)
            x *= np.uint64(0xBF58476D1CE4E5B9)
            x ^= x >> np.uint64(27)
        mod = (x % np.uint64(self.num_modules)).astype(np.int64)
        return int(mod) if np.isscalar(address) or mod.ndim == 0 else mod

    def record_accesses(self, addresses: np.ndarray) -> None:
        """Account a batch of word accesses to their modules."""
        modules = np.atleast_1d(self.module_of(addresses))
        self.module_loads += np.bincount(
            modules, minlength=self.module_loads.size
        )

    def load_imbalance(self) -> float:
        """max/mean module load; 1.0 is perfectly balanced."""
        total = self.module_loads.sum()
        if total == 0:
            return 1.0
        mean = total / self.num_modules
        return float(self.module_loads.max() / mean)

    def reset(self) -> None:
        self.module_loads[:] = 0
