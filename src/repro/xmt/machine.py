"""Architectural parameters of the simulated Cray XMT.

Values follow the machine the paper used — the 128-processor Cray XMT at
Pacific Northwest National Laboratory: Threadstorm processors at 500 MHz
with 128 hardware streams each (over 12 thousand thread contexts at full
configuration), a 1 TiB globally shared memory whose addresses are hashed
across memory modules, full/empty-bit synchronization and atomic
fetch-and-add.  See Konecny, "Introducing the Cray XMT" (CUG 2007) and the
paper's §II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["XMTMachine", "PNNL_XMT"]


@dataclass(frozen=True)
class XMTMachine:
    """A Cray XMT configuration for the analytic cost model.

    Parameters
    ----------
    num_processors:
        Threadstorm processor count (the paper sweeps 8..128).
    streams_per_processor:
        Hardware thread contexts per processor; the XMT's latency tolerance
        comes entirely from switching among these each cycle.
    clock_hz:
        500 MHz Threadstorm clock.
    memory_latency_cycles:
        Round-trip latency of a memory reference through the hashed global
        memory (network + DRAM).  ~600 cycles at 500 MHz is the commonly
        cited ballpark for the XMT's remote reference latency (~1.2 us).
    stream_utilization:
        Fraction of streams that hold *ready* instructions on an irregular
        workload.  Loop scheduling, trap handling, and dependence stalls
        keep this well below 1; 0.5 reproduces the paper's observation that
        saturation needs active sets several times ``P * streams``.
    atomic_service_cycles:
        Serialization delay between two atomic fetch-and-adds targeting the
        *same word*: the memory controller retires them one at a time.
        This is the paper's hotspot hazard (§VII: serialization around a
        single fetch-and-add inhibits scalability).
    loop_startup_cycles:
        Fixed cost to launch a parallel loop region (compiler runtime
        spawns/joins stream teams).
    barrier_cycles_per_log2p:
        Barrier cost grows with the log of the processor count (tree
        barrier through the hashed memory).
    superstep_overhead_cycles:
        Extra per-superstep cost charged to BSP regions: queue swap,
        active-set rebuild and the full runtime barrier.  The paper finds
        near-empty BSP supersteps cost two orders of magnitude more than
        their useful work — this constant is that floor.
    """

    num_processors: int = 128
    streams_per_processor: int = 128
    clock_hz: float = 500e6
    memory_latency_cycles: float = 600.0
    stream_utilization: float = 0.5
    atomic_service_cycles: float = 24.0
    loop_startup_cycles: float = 3_000.0
    barrier_cycles_per_log2p: float = 2_000.0
    superstep_overhead_cycles: float = 250_000.0

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if self.streams_per_processor < 1:
            raise ValueError("streams_per_processor must be >= 1")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if not 0.0 < self.stream_utilization <= 1.0:
            raise ValueError("stream_utilization must be in (0, 1]")
        for field_name in (
            "memory_latency_cycles",
            "atomic_service_cycles",
            "loop_startup_cycles",
            "barrier_cycles_per_log2p",
            "superstep_overhead_cycles",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    # ------------------------------------------------------------------
    @property
    def total_streams(self) -> int:
        """Hardware thread contexts across the machine."""
        return self.num_processors * self.streams_per_processor

    @property
    def effective_streams(self) -> float:
        """Streams expected to hold ready instructions at any cycle."""
        return self.total_streams * self.stream_utilization

    @property
    def issue_bandwidth(self) -> float:
        """Machine-wide instruction issue rate (instructions / cycle):
        one instruction per processor per cycle, the XMT's headline
        property when enough streams are ready."""
        return float(self.num_processors)

    def concurrency(self, parallel_items: float) -> float:
        """Work items that can be in flight simultaneously."""
        if parallel_items <= 0:
            return 1.0
        return min(float(parallel_items), max(self.effective_streams, 1.0))

    def barrier_cycles(self) -> float:
        """Cost of one full-machine barrier."""
        return self.barrier_cycles_per_log2p * math.log2(
            max(self.num_processors, 2)
        )

    def with_processors(self, num_processors: int) -> "XMTMachine":
        """Same machine at a different processor count (for P sweeps)."""
        return replace(self, num_processors=num_processors)

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / self.clock_hz


#: The machine in the paper: the 128-processor, 1 TiB Cray XMT at PNNL.
PNNL_XMT = XMTMachine(num_processors=128)
