"""Cray XMT machine simulator.

We have no Cray XMT (the paper's 128-processor machine at PNNL was
decommissioned), so this subpackage substitutes an **analytic machine
model** of the Threadstorm architecture:

* :mod:`repro.xmt.machine` — the architectural parameters (processors,
  128 hardware streams per processor, 500 MHz clock, memory latency,
  hotspot serialization, barrier costs);
* :mod:`repro.xmt.trace` — work traces: per-parallel-region operation
  counts recorded by the instrumented kernels;
* :mod:`repro.xmt.cost_model` — converts a work trace into simulated
  execution time for any processor count by applying the three bounds the
  paper reasons with (issue throughput, latency-hiding saturation, and
  fetch-and-add hotspot serialization);
* :mod:`repro.xmt.memory` — *functional* simulations of the XMT's
  synchronization primitives (full/empty bits, atomic fetch-and-add,
  hashed memory modules) used by reference implementations and tests;
* :mod:`repro.xmt.calibration` — per-operation instruction-cost constants
  shared by every kernel, with the rationale for each value.

The kernels execute for real (producing exact per-iteration work counts on
the actual input graph); only the mapping from work to *time* is modelled.
This preserves what the paper's evaluation is about — how per-iteration
parallelism and message overheads interact with a latency-tolerant
shared-memory machine — without owning the hardware.
"""

from repro.xmt.cost_model import SimulatedRegion, SimulatedRun, simulate
from repro.xmt.machine import PNNL_XMT, XMTMachine
from repro.xmt.mechanistic import (
    MechanisticPrice,
    price_region_mechanistically,
)
from repro.xmt.memory import (
    AtomicCounter,
    FullEmptyArray,
    HashedMemory,
    MemoryDeadlockError,
)
from repro.xmt.streams import StreamSimulator, StreamWorkload
from repro.xmt.trace import RegionTrace, WorkTrace

__all__ = [
    "AtomicCounter",
    "FullEmptyArray",
    "HashedMemory",
    "MechanisticPrice",
    "MemoryDeadlockError",
    "PNNL_XMT",
    "RegionTrace",
    "SimulatedRegion",
    "SimulatedRun",
    "StreamSimulator",
    "StreamWorkload",
    "WorkTrace",
    "XMTMachine",
    "price_region_mechanistically",
    "simulate",
]
