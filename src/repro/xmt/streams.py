"""Cycle-level simulation of one Threadstorm processor's streams.

The XMT's defining mechanism (paper §II): each processor holds 128
hardware **streams**; a stream that issues a memory reference blocks for
the full memory round trip, and "the processor will execute one
instruction per cycle from hardware streams that have instructions ready
to execute".  Latency is tolerated *entirely* by switching streams.

The analytic cost model (:mod:`repro.xmt.cost_model`) summarizes this as
a saturation law — full issue rate once enough independent work items
are in flight, a latency-dominated regime below that.  This module
simulates the mechanism directly (instruction by instruction, exact
issue cycles) so the test suite can *validate* the law instead of
assuming it: utilization measured here saturates at exactly the
stream-count the model predicts, and the latency-bound regime matches
the ``(instructions + mem x latency) / concurrency`` formula.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["StreamWorkload", "StreamSimResult", "StreamSimulator"]


@dataclass(frozen=True)
class StreamWorkload:
    """Per-stream instruction mix.

    Every stream executes ``instructions`` instructions; one in
    ``memory_period`` is a memory reference (blocking the stream for the
    memory latency), the rest are single-cycle ALU operations.  A
    ``memory_period`` of 1 makes every instruction a memory reference.
    """

    instructions: int
    memory_period: int = 3

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError("instructions must be non-negative")
        if self.memory_period < 1:
            raise ValueError("memory_period must be >= 1")

    def is_memory(self, index: int) -> bool:
        """Whether instruction ``index`` (0-based) references memory."""
        return index % self.memory_period == self.memory_period - 1

    @property
    def memory_references(self) -> int:
        """Memory instructions per stream."""
        return self.instructions // self.memory_period


@dataclass(frozen=True)
class StreamSimResult:
    """Outcome of a stream-scheduler simulation."""

    cycles: int
    instructions_issued: int
    num_streams: int

    @property
    def utilization(self) -> float:
        """Fraction of cycles with an instruction issued (<= 1)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions_issued / self.cycles

    @property
    def effective_ipc(self) -> float:
        return self.utilization


class StreamSimulator:
    """One Threadstorm processor: N streams, one issue slot per cycle."""

    def __init__(self, num_streams: int = 128,
                 memory_latency_cycles: int = 600):
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        if memory_latency_cycles < 1:
            raise ValueError("memory_latency_cycles must be >= 1")
        self.num_streams = num_streams
        self.memory_latency_cycles = memory_latency_cycles

    def run(self, workload: StreamWorkload) -> StreamSimResult:
        """Simulate all streams executing ``workload`` to completion.

        Issue policy: each cycle, the ready stream that became ready
        earliest issues (ties by stream id) — the fair round-robin-like
        behaviour of the hardware.  Event-driven: cost is O(total
        instructions x log streams), not O(cycles).
        """
        total = workload.instructions * self.num_streams
        if total == 0:
            return StreamSimResult(
                cycles=0, instructions_issued=0,
                num_streams=self.num_streams,
            )
        # Heap of (ready_cycle, stream_id, next_instruction_index).
        heap: list[tuple[int, int, int]] = [
            (0, s, 0) for s in range(self.num_streams)
        ]
        heapq.heapify(heap)
        clock = -1  # last issue cycle
        issued = 0
        last_completion = 0
        while heap:
            ready, stream, pc = heapq.heappop(heap)
            issue_at = max(clock + 1, ready)
            clock = issue_at
            issued += 1
            cost = (
                self.memory_latency_cycles
                if workload.is_memory(pc)
                else 1
            )
            completion = issue_at + cost
            last_completion = max(last_completion, completion)
            if pc + 1 < workload.instructions:
                heapq.heappush(heap, (completion, stream, pc + 1))
        return StreamSimResult(
            cycles=last_completion,
            instructions_issued=issued,
            num_streams=self.num_streams,
        )

    def utilization_curve(
        self, workload: StreamWorkload, stream_counts: list[int]
    ) -> dict[int, float]:
        """Measured utilization for a sweep of stream counts."""
        out: dict[int, float] = {}
        for count in stream_counts:
            sim = StreamSimulator(
                num_streams=count,
                memory_latency_cycles=self.memory_latency_cycles,
            )
            out[count] = sim.run(workload).utilization
        return out

    def saturation_streams(self, workload: StreamWorkload) -> float:
        """Streams needed for full issue rate, per the analytic law.

        A stream is blocked for ``memory_latency`` cycles out of every
        ``memory_period`` issued instructions, so it occupies the issue
        slot a fraction ``memory_period / (memory_period - 1 +
        latency)`` of the time; the reciprocal is the stream count that
        saturates the processor.
        """
        p = workload.memory_period
        return (p - 1 + self.memory_latency_cycles) / p
