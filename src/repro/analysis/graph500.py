"""Graph500-style BFS harness and result validation.

The paper motivates BFS with the Graph500 benchmark (§IV).  This module
implements the benchmark's shape: generate an RMAT graph, run a batch of
BFS searches from random keys, **validate** each result with the
specification's checks, and report harmonic-mean TEPS (traversed edges
per second) — here using the simulated XMT time, for both programming
models.

Validation follows Graph500's result-verification rules for a BFS tree:

1. the tree spans exactly the vertices reachable from the root;
2. every tree edge exists in the graph;
3. a child's depth is its parent's depth plus one;
4. the root is its own tree's depth-0 vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsp_algorithms.bfs import bsp_breadth_first_search
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graphct.bfs import BFSResult, breadth_first_search
from repro.xmt.cost_model import simulate
from repro.xmt.machine import XMTMachine

__all__ = [
    "BFSValidationError",
    "Graph500Result",
    "run_graph500",
    "validate_bfs_result",
]


class BFSValidationError(AssertionError):
    """A BFS result failed Graph500 verification."""


def validate_bfs_result(graph: CSRGraph, result: BFSResult) -> None:
    """Apply the Graph500 verification rules; raises on violation."""
    dist = result.distances
    parents = result.parents
    n = graph.num_vertices

    if not 0 <= result.source < n:
        raise BFSValidationError("source out of range")
    if dist[result.source] != 0 or parents[result.source] != -1:
        raise BFSValidationError("root must have depth 0 and no parent")

    reached = dist >= 0
    # Rule 1: spanning exactly the reachable set — every arc connects
    # two reached or two unreached vertices.
    src, dst = graph.arc_sources(), graph.col_idx
    if np.any(reached[src] != reached[dst]):
        raise BFSValidationError(
            "an edge crosses the reached/unreached boundary"
        )

    children = np.flatnonzero(reached)
    children = children[children != result.source]
    if np.any(parents[children] < 0):
        raise BFSValidationError("reached vertex without a parent")
    # Rule 2: tree edges exist.
    for v in children.tolist():
        if not graph.has_edge(int(parents[v]), v):
            raise BFSValidationError(
                f"tree edge {int(parents[v])}->{v} not in graph"
            )
    # Rule 3: depths increase by exactly one along tree edges.
    if np.any(dist[children] != dist[parents[children]] + 1):
        raise BFSValidationError("child depth != parent depth + 1")
    # Unreached vertices carry no tree state.
    if np.any(parents[~reached] != -1):
        raise BFSValidationError("unreached vertex with a parent")


@dataclass
class Graph500Result:
    """Outcome of a Graph500-style run."""

    scale: int
    edge_factor: int
    num_searches: int
    #: Simulated-XMT TEPS per search, per model.
    teps: dict[str, list[float]] = field(default_factory=dict)
    #: Edges traversed per search.
    edges_traversed: list[int] = field(default_factory=list)

    def harmonic_mean_teps(self, model: str) -> float:
        values = self.teps[model]
        return len(values) / sum(1.0 / v for v in values)


def run_graph500(
    scale: int = 12,
    edge_factor: int = 16,
    *,
    num_searches: int = 8,
    seed: int = 1,
    machine: XMTMachine | None = None,
) -> Graph500Result:
    """Run the benchmark shape: generate, search, validate, score."""
    if num_searches < 1:
        raise ValueError("num_searches must be >= 1")
    machine = machine or XMTMachine()
    graph = rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    rng = np.random.default_rng(seed + 1)
    candidates = np.flatnonzero(graph.degrees() > 0)
    if candidates.size == 0:
        raise ValueError("graph has no non-isolated vertices")
    sources = rng.choice(
        candidates, size=min(num_searches, candidates.size), replace=False
    )

    result = Graph500Result(
        scale=scale,
        edge_factor=edge_factor,
        num_searches=int(sources.size),
        teps={"graphct": [], "bsp": []},
    )
    for source in sources.tolist():
        shm = breadth_first_search(graph, source)
        validate_bfs_result(graph, shm)
        bsp = bsp_breadth_first_search(graph, source)
        if not np.array_equal(shm.distances, bsp.distances):
            raise BFSValidationError("models disagree on distances")
        edges = int(sum(shm.edges_examined))
        result.edges_traversed.append(edges)
        for model, trace in (("graphct", shm.trace), ("bsp", bsp.trace)):
            seconds = simulate(trace, machine).total_seconds
            result.teps[model].append(edges / seconds)
    return result
