"""ASCII rendering of experiment results.

The paper's figures are log-scale line plots; the CLI and benchmarks
render the same data as aligned text tables (one column per processor
count, one row per iteration/level) plus the headline totals, so a
terminal diff against the paper's claims is possible without matplotlib.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "format_seconds",
    "format_series",
    "format_scaling_table",
    "format_table1",
]


def format_seconds(seconds: float) -> str:
    """Human scale: 1.23s / 45.6ms / 789us."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.1f}us"
    return f"{seconds * 1e9:.0f}ns"


def format_series(
    title: str,
    labels: Sequence,
    *columns: tuple[str, Sequence],
) -> str:
    """Render parallel series as an aligned table.

    ``labels`` names the rows; each ``(header, values)`` pair adds a
    column (shorter columns are padded with '-').
    """
    headers = ["" ] + [h for h, _ in columns]
    rows = []
    for i, label in enumerate(labels):
        row = [str(label)]
        for _, values in columns:
            row.append(str(values[i]) if i < len(values) else "-")
        rows.append(row)
    return _render(title, headers, rows)


def format_scaling_table(
    title: str,
    processor_counts: Sequence[int],
    series: Mapping[str, Mapping[int, float]],
) -> str:
    """Rows = series names, columns = processor counts, cells = times."""
    headers = [""] + [f"P={p}" for p in processor_counts]
    rows = []
    for name, times in series.items():
        rows.append(
            [name] + [format_seconds(times[p]) for p in processor_counts]
        )
    return _render(title, headers, rows)


def format_table1(
    rows: Mapping[str, Mapping[str, float]],
    *,
    title: str = "Table I: execution times at full machine size",
    paper_rows: Mapping[str, Mapping[str, float]] | None = None,
) -> str:
    """Render the Table I layout (+ the paper's values when given)."""
    headers = ["Algorithm", "BSP", "GraphCT", "Ratio"]
    if paper_rows is not None:
        headers += ["Paper BSP", "Paper GraphCT", "Paper ratio"]
    body = []
    for name, vals in rows.items():
        row = [
            name.replace("_", " "),
            format_seconds(vals["bsp"]),
            format_seconds(vals["graphct"]),
            f"{vals['ratio']:.1f}:1",
        ]
        if paper_rows is not None:
            p = paper_rows[name]
            row += [
                format_seconds(p["bsp"]),
                format_seconds(p["graphct"]),
                f"{p['ratio']:.1f}:1",
            ]
        body.append(row)
    return _render(title, headers, body)


def _render(title: str, headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else
        len(headers[c])
        for c in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(c.rjust(w) if i else c.ljust(w)
                      for i, (c, w) in enumerate(zip(row, widths))).rstrip()
        )
    return "\n".join(lines)
