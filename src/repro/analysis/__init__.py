"""Experiment harness: the paper's figures and table as runnable code.

Each ``run_figN`` / ``run_table1`` function builds the workload, executes
both programming models, prices the resulting work traces on the XMT
machine model across the processor sweep, and returns a result object
that both the benchmarks and the CLI render.  See DESIGN.md §4 for the
experiment-to-module index.
"""

from repro.analysis.experiments import (
    ClusterAnecdotesResult,
    Fig1Result,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Table1Result,
    run_cluster_anecdotes,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
)
from repro.analysis.report import (
    format_scaling_table,
    format_series,
    format_table1,
)
from repro.analysis.verification import VerificationReport, verify_all
from repro.analysis.workload import (
    DEFAULT_PROCESSOR_COUNTS,
    ExperimentConfig,
    Workload,
    build_workload,
)

__all__ = [
    "ClusterAnecdotesResult",
    "DEFAULT_PROCESSOR_COUNTS",
    "ExperimentConfig",
    "run_cluster_anecdotes",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Table1Result",
    "VerificationReport",
    "Workload",
    "build_workload",
    "format_scaling_table",
    "format_series",
    "format_table1",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_table1",
    "verify_all",
]
