"""Reproductions of the paper's figures and table.

Every function executes the real algorithms once per programming model
(producing exact work traces on the actual input graph) and prices the
traces on the XMT machine model at each processor count.  Results carry
both the simulated series and the raw counts, plus the paper's reference
values for EXPERIMENTS.md's paper-vs-measured tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.workload import ExperimentConfig, build_workload
from repro.bsp_algorithms.bfs import BSPBFSResult, bsp_breadth_first_search
from repro.bsp_algorithms.connected_components import (
    BSPComponentsResult,
    bsp_connected_components,
)
from repro.bsp_algorithms.triangles import (
    BSPTriangleResult,
    bsp_count_triangles,
)
from repro.graphct.bfs import BFSResult, breadth_first_search
from repro.graphct.connected_components import (
    ComponentsResult,
    connected_components,
)
from repro.graphct.triangles import TriangleResult, count_triangles
from repro.xmt.cost_model import simulate
from repro.xmt.trace import WorkTrace

__all__ = [
    "ClusterAnecdotesResult",
    "run_cluster_anecdotes",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Table1Result",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_table1",
]

#: Reference values from the paper (128-processor Cray XMT, scale-24 RMAT).
PAPER_TABLE1 = {
    "connected_components": {"bsp": 5.40, "graphct": 1.31, "ratio": 4.1},
    "breadth_first_search": {"bsp": 3.12, "graphct": 0.310, "ratio": 10.1},
    "triangle_counting": {"bsp": 444.0, "graphct": 47.4, "ratio": 9.4},
}
#: §V: 5.5e9 wedge messages, 30.9e6 triangles, 181x the writes.
PAPER_TRIANGLE_COUNTS = {
    "possible_triangles": 5.5e9,
    "actual_triangles": 30.9e6,
    "write_ratio": 181.0,
}


def _sweep(
    trace: WorkTrace, config: ExperimentConfig, *, extrapolate: bool = False
) -> dict[int, dict]:
    """Price ``trace`` at every processor count.

    ``extrapolate`` scales per-region work to the paper's graph size
    first (the miniature's active sets are too small to saturate 128
    simulated processors; the paper-scale sweep restores the regime the
    paper's scaling plots live in).

    Returns ``{P: {"total": seconds, "by_iteration": {i: seconds}}}``.
    """
    if extrapolate:
        trace = trace.scaled(config.extrapolation_factor)
    out: dict[int, dict] = {}
    for p in config.processor_counts:
        run = simulate(trace, config.machine(p))
        out[p] = {
            "total": run.total_seconds,
            "by_iteration": run.seconds_by_iteration(),
        }
    return out


# ----------------------------------------------------------------------
# Figure 1 — connected components time per superstep/iteration
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    """Connected-components execution time by iteration (paper Fig. 1)."""

    config: ExperimentConfig
    bsp: BSPComponentsResult
    graphct: ComponentsResult
    #: {P: {"total": s, "by_iteration": {i: s}}} for each model.
    bsp_times: dict[int, dict] = field(default_factory=dict)
    graphct_times: dict[int, dict] = field(default_factory=dict)
    #: The same sweeps with work extrapolated to the paper's scale-24
    #: input (the regime of the published figure).
    bsp_times_paper_scale: dict[int, dict] = field(default_factory=dict)
    graphct_times_paper_scale: dict[int, dict] = field(default_factory=dict)

    @property
    def superstep_inflation(self) -> float:
        """BSP supersteps / shared-memory iterations.

        Paper: 13 vs 6 (2.2x) at scale 24; the gap narrows at miniature
        scale because both counts track graph eccentricity.  >= 1.4x is
        the miniature-scale acceptance bar (see EXPERIMENTS.md).
        """
        return self.bsp.num_supersteps / self.graphct.num_iterations

    def totals_at(self, processors: int) -> tuple[float, float]:
        return (
            self.bsp_times[processors]["total"],
            self.graphct_times[processors]["total"],
        )


def run_fig1(config: ExperimentConfig | None = None) -> Fig1Result:
    """Reproduce Figure 1 on the configured workload."""
    wl = build_workload(config)
    bsp = bsp_connected_components(wl.graph)
    shm = connected_components(wl.graph)
    return Fig1Result(
        config=wl.config,
        bsp=bsp,
        graphct=shm,
        bsp_times=_sweep(bsp.trace, wl.config),
        graphct_times=_sweep(shm.trace, wl.config),
        bsp_times_paper_scale=_sweep(bsp.trace, wl.config, extrapolate=True),
        graphct_times_paper_scale=_sweep(
            shm.trace, wl.config, extrapolate=True
        ),
    )


# ----------------------------------------------------------------------
# Figure 2 — BFS frontier size vs messages generated
# ----------------------------------------------------------------------
@dataclass
class Fig2Result:
    """Frontier size (GraphCT) vs message count (BSP) per level."""

    config: ExperimentConfig
    source: int
    #: GraphCT's true frontier per level — the red series.
    frontier_sizes: list[int]
    #: BSP messages generated per superstep — the green series.
    bsp_messages: list[int]
    bsp_result: BSPBFSResult = None
    graphct_result: BFSResult = None

    @property
    def peak_message_to_frontier_ratio(self) -> float:
        """Messages *delivered* at a level vs. that level's true frontier,
        maximized over post-apex levels.

        Messages sent during superstep s-1 arrive at superstep s, where
        only ``frontier_sizes[s]`` vertices are genuinely new — the rest
        of the deliveries are discarded (paper: "an order of magnitude
        larger than the real frontier").
        """
        apex = int(np.argmax(self.frontier_sizes))
        best = 0.0
        for level in range(apex + 1, len(self.frontier_sizes)):
            f = self.frontier_sizes[level]
            if f > 0 and level - 1 < len(self.bsp_messages):
                best = max(best, self.bsp_messages[level - 1] / f)
        return best


def run_fig2(config: ExperimentConfig | None = None) -> Fig2Result:
    """Reproduce Figure 2 on the configured workload."""
    wl = build_workload(config)
    shm = breadth_first_search(wl.graph, wl.bfs_source)
    bsp = bsp_breadth_first_search(wl.graph, wl.bfs_source)
    return Fig2Result(
        config=wl.config,
        source=wl.bfs_source,
        frontier_sizes=list(shm.frontier_sizes),
        bsp_messages=list(bsp.messages_per_superstep),
        bsp_result=bsp,
        graphct_result=shm,
    )


# ----------------------------------------------------------------------
# Figure 3 — BFS per-level scalability
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    """Per-level time vs processor count for the middle BFS levels."""

    config: ExperimentConfig
    source: int
    #: Levels plotted (the paper uses 3..8 on a 10-level BFS at scale 24;
    #: the miniature plots its own middle band).
    levels: list[int]
    #: {model: {level: {P: seconds}}} at miniature scale.
    series: dict[str, dict[int, dict[int, float]]]
    #: Same series with work extrapolated to the paper's scale.
    series_paper_scale: dict[str, dict[int, dict[int, float]]]
    bsp_total: dict[int, float]
    graphct_total: dict[int, float]

    def speedup(self, model: str, level: int, *, paper_scale: bool = False) -> float:
        """time(P_min) / time(P_max) for one level's series."""
        source = self.series_paper_scale if paper_scale else self.series
        s = source[model][level]
        pmin, pmax = min(s), max(s)
        return s[pmin] / s[pmax] if s[pmax] > 0 else float("inf")


def run_fig3(config: ExperimentConfig | None = None) -> Fig3Result:
    """Reproduce Figure 3 on the configured workload."""
    wl = build_workload(config)
    shm = breadth_first_search(wl.graph, wl.bfs_source)
    bsp = bsp_breadth_first_search(wl.graph, wl.bfs_source)

    sweeps = {
        False: (_sweep(shm.trace, wl.config), _sweep(bsp.trace, wl.config)),
        True: (
            _sweep(shm.trace, wl.config, extrapolate=True),
            _sweep(bsp.trace, wl.config, extrapolate=True),
        ),
    }

    num_levels = shm.num_levels
    # The paper's levels 3-8 are the middle band of a ~10-level BFS;
    # take the analogous interior band here (skip first and last level).
    levels = list(range(1, max(num_levels - 1, 2)))
    all_series = {}
    for extrapolated, (shm_sweep, bsp_sweep) in sweeps.items():
        series: dict[str, dict[int, dict[int, float]]] = {
            "bsp": {}, "graphct": {}
        }
        for level in levels:
            series["graphct"][level] = {
                p: shm_sweep[p]["by_iteration"].get(level, 0.0)
                for p in wl.config.processor_counts
            }
            series["bsp"][level] = {
                p: bsp_sweep[p]["by_iteration"].get(level, 0.0)
                for p in wl.config.processor_counts
            }
        all_series[extrapolated] = series

    shm_sweep, bsp_sweep = sweeps[False]
    return Fig3Result(
        config=wl.config,
        source=wl.bfs_source,
        levels=levels,
        series=all_series[False],
        series_paper_scale=all_series[True],
        bsp_total={p: bsp_sweep[p]["total"] for p in wl.config.processor_counts},
        graphct_total={
            p: shm_sweep[p]["total"] for p in wl.config.processor_counts
        },
    )


# ----------------------------------------------------------------------
# Figure 4 — triangle counting scalability + message accounting
# ----------------------------------------------------------------------
@dataclass
class Fig4Result:
    """Triangle-counting time vs processor count (paper Fig. 4)."""

    config: ExperimentConfig
    bsp: BSPTriangleResult
    graphct: TriangleResult
    bsp_times: dict[int, float] = field(default_factory=dict)
    graphct_times: dict[int, float] = field(default_factory=dict)
    bsp_times_paper_scale: dict[int, float] = field(default_factory=dict)
    graphct_times_paper_scale: dict[int, float] = field(default_factory=dict)

    @property
    def write_ratio(self) -> float:
        """BSP writes / shared-memory writes.

        Paper: 181x at scale 24.  The ratio tracks wedges/triangles,
        which shrinks at miniature scale (RMAT miniatures are relatively
        triangle-dense); >= 5x is the miniature acceptance bar.
        """
        shm_writes = self.graphct.trace.total_writes
        return self.bsp.trace.total_writes / max(shm_writes, 1.0)

    def speedup(self, model: str, *, paper_scale: bool = False) -> float:
        if paper_scale:
            times = (
                self.bsp_times_paper_scale
                if model == "bsp"
                else self.graphct_times_paper_scale
            )
        else:
            times = self.bsp_times if model == "bsp" else self.graphct_times
        pmin, pmax = min(times), max(times)
        return times[pmin] / times[pmax]


def run_fig4(config: ExperimentConfig | None = None) -> Fig4Result:
    """Reproduce Figure 4 on the configured workload."""
    wl = build_workload(config)
    bsp = bsp_count_triangles(wl.graph)
    shm = count_triangles(wl.graph)
    bsp_sweep = _sweep(bsp.trace, wl.config)
    shm_sweep = _sweep(shm.trace, wl.config)
    bsp_sweep_x = _sweep(bsp.trace, wl.config, extrapolate=True)
    shm_sweep_x = _sweep(shm.trace, wl.config, extrapolate=True)
    counts = wl.config.processor_counts
    return Fig4Result(
        config=wl.config,
        bsp=bsp,
        graphct=shm,
        bsp_times={p: bsp_sweep[p]["total"] for p in counts},
        graphct_times={p: shm_sweep[p]["total"] for p in counts},
        bsp_times_paper_scale={p: bsp_sweep_x[p]["total"] for p in counts},
        graphct_times_paper_scale={
            p: shm_sweep_x[p]["total"] for p in counts
        },
    )


# ----------------------------------------------------------------------
# Table I — total execution times at full machine size
# ----------------------------------------------------------------------
@dataclass
class Table1Result:
    """Total times on the full machine for all three algorithms."""

    config: ExperimentConfig
    #: {algorithm: {"bsp": s, "graphct": s, "ratio": x}} at max P.
    rows: dict[str, dict[str, float]]
    #: Same rows with per-iteration work extrapolated to the paper's
    #: scale-24 input (see ExperimentConfig.extrapolation_factor).
    extrapolated_rows: dict[str, dict[str, float]]
    #: The paper's values for side-by-side reporting.
    paper_rows: dict[str, dict[str, float]] = field(
        default_factory=lambda: {k: dict(v) for k, v in PAPER_TABLE1.items()}
    )

    @property
    def max_ratio(self) -> float:
        return max(r["ratio"] for r in self.rows.values())


def run_table1(config: ExperimentConfig | None = None) -> Table1Result:
    """Reproduce Table I on the configured workload."""
    wl = build_workload(config)
    full_p = max(wl.config.processor_counts)
    machine = wl.config.machine(full_p)
    factor = wl.config.extrapolation_factor

    traces = {
        "connected_components": (
            bsp_connected_components(wl.graph).trace,
            connected_components(wl.graph).trace,
        ),
        "breadth_first_search": (
            bsp_breadth_first_search(wl.graph, wl.bfs_source).trace,
            breadth_first_search(wl.graph, wl.bfs_source).trace,
        ),
        "triangle_counting": (
            bsp_count_triangles(wl.graph).trace,
            count_triangles(wl.graph).trace,
        ),
    }

    rows: dict[str, dict[str, float]] = {}
    extrapolated: dict[str, dict[str, float]] = {}
    for name, (bsp_trace, shm_trace) in traces.items():
        bsp_s = simulate(bsp_trace, machine).total_seconds
        shm_s = simulate(shm_trace, machine).total_seconds
        rows[name] = {
            "bsp": bsp_s, "graphct": shm_s, "ratio": bsp_s / shm_s
        }
        bsp_x = simulate(bsp_trace.scaled(factor), machine).total_seconds
        shm_x = simulate(shm_trace.scaled(factor), machine).total_seconds
        extrapolated[name] = {
            "bsp": bsp_x, "graphct": shm_x, "ratio": bsp_x / shm_x
        }

    return Table1Result(
        config=wl.config, rows=rows, extrapolated_rows=extrapolated
    )


# ----------------------------------------------------------------------
# Cluster anecdotes (§III–§IV narrative comparisons)
# ----------------------------------------------------------------------
@dataclass
class ClusterAnecdotesResult:
    """Order-of-magnitude checks against the cited distributed systems."""

    #: {name: {"simulated": s, "paper": s, "machines": M}}.
    rows: dict[str, dict[str, float]]
    #: Machine counts at which Giraph-SSSP scaling went flat.
    sssp_flat_counts: list[int]

    def within_order_of_magnitude(self, name: str) -> bool:
        row = self.rows[name]
        ratio = row["simulated"] / row["paper"]
        return 0.1 <= ratio <= 10.0


def run_cluster_anecdotes(
    config: ExperimentConfig | None = None,
) -> ClusterAnecdotesResult:
    """Reproduce the paper's three distributed-BSP anecdotes.

    Each anecdote's workload is a miniature with the same shape, whose
    BSP trace is extrapolated to the cited graph size and priced on the
    cited cluster:

    * Giraph connected components, Wikipedia-scale (6M vertices / 200M
      edges), 6 nodes — "approximately 4 seconds", 12 supersteps;
    * Giraph SSSP, Twitter (43.7M / 688M), 60 machines — ~30 s, flat
      scaling from 30 to 85 machines (Kajdanowicz et al.);
    * Trinity BFS, RMAT 512M / 6.6B, 14 machines — ~400 s.
    """
    from repro.bsp_algorithms.sssp import bsp_sssp
    from repro.cluster.model import (
        ClusterMachine,
        flat_scaling_range,
        simulate_cluster_bsp,
    )

    wl = build_workload(config)
    graph = wl.graph
    arcs = graph.num_arcs

    rows: dict[str, dict[str, float]] = {}

    # Giraph CC on Wikipedia: ~200M edges (400M arcs), 6M vertices,
    # 6 nodes, ~4 s in 12 supersteps.  Giraph's CC job uses a min
    # combiner, so at most (receiving vertices x machines) messages cross
    # the network per superstep.
    cc = bsp_connected_components(graph)
    factor = 400e6 / arcs
    combiner_cap = 6e6 * 6
    msgs = [
        int(min(m * factor, combiner_cap))
        for m in cc.messages_per_superstep
    ]
    sim = simulate_cluster_bsp(
        cc.trace.scaled(factor),
        ClusterMachine(num_machines=6),
        messages_per_superstep=msgs,
    )
    rows["giraph_cc_wikipedia"] = {
        "simulated": sim.total_seconds, "paper": 4.0, "machines": 6
    }

    # Giraph SSSP on Twitter: ~688M edges (1.38B arcs), 60 machines, ~30 s.
    sssp_run = bsp_sssp(graph, wl.bfs_source)
    factor = 1.376e9 / arcs
    scaled = sssp_run.trace.scaled(factor)
    msgs = [int(m * factor) for m in sssp_run.messages_per_superstep]
    cluster60 = ClusterMachine(num_machines=60)
    sim = simulate_cluster_bsp(scaled, cluster60, messages_per_superstep=msgs)
    rows["giraph_sssp_twitter"] = {
        "simulated": sim.total_seconds, "paper": 30.0, "machines": 60
    }
    flat = flat_scaling_range(
        scaled, cluster60, [30, 40, 50, 60, 70, 85]
    )

    # Trinity BFS on RMAT 512M/6.6B (13.2B arcs), 14 machines, ~400 s.
    bfs_run = bsp_breadth_first_search(graph, wl.bfs_source)
    factor = 13.2e9 / arcs
    sim = simulate_cluster_bsp(
        bfs_run.trace.scaled(factor),
        ClusterMachine(num_machines=14),
        messages_per_superstep=[
            int(m * factor) for m in bfs_run.messages_per_superstep
        ],
    )
    rows["trinity_bfs_rmat"] = {
        "simulated": sim.total_seconds, "paper": 400.0, "machines": 14
    }

    return ClusterAnecdotesResult(rows=rows, sssp_flat_counts=flat)
