"""Executable verification of the paper's claims.

EXPERIMENTS.md grades the reproduction against the paper's qualitative
and quantitative claims; this module makes that grading *runnable*:
every claim is a :class:`Criterion` with a check function over the
experiment results, and :func:`verify_all` evaluates the whole list —
``python -m repro.cli verify`` prints the scorecard.  The benchmark
suite asserts the same predicates; this is the one-shot human-readable
version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.experiments import (
    run_cluster_anecdotes,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
)
from repro.analysis.workload import ExperimentConfig

__all__ = ["Criterion", "CriterionResult", "VerificationReport", "verify_all"]


@dataclass(frozen=True)
class Criterion:
    """One checkable claim from the paper."""

    experiment: str
    claim: str
    check: Callable[[dict], tuple[bool, str]]


@dataclass(frozen=True)
class CriterionResult:
    experiment: str
    claim: str
    passed: bool
    detail: str


@dataclass
class VerificationReport:
    """Outcome of a full verification run."""

    config: ExperimentConfig
    results: list[CriterionResult] = field(default_factory=list)

    @property
    def num_passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def all_passed(self) -> bool:
        return self.num_passed == len(self.results)

    def render(self) -> str:
        lines = [
            f"Verification scorecard (RMAT scale {self.config.scale}, "
            f"seed {self.config.seed})",
            "=" * 64,
        ]
        current = None
        for r in self.results:
            if r.experiment != current:
                current = r.experiment
                lines.append(f"\n[{current}]")
            mark = "PASS" if r.passed else "FAIL"
            lines.append(f"  {mark}  {r.claim}")
            lines.append(f"        -> {r.detail}")
        lines.append(
            f"\n{self.num_passed}/{len(self.results)} criteria passed"
        )
        return "\n".join(lines)


def _table1_criteria() -> list[Criterion]:
    def graphct_wins(ctx):
        ratios = {k: v["ratio"] for k, v in ctx["table1"].rows.items()}
        ok = all(r > 1.0 for r in ratios.values())
        return ok, ", ".join(f"{k}={v:.1f}:1" for k, v in ratios.items())

    def within_band(ctx):
        ratios = [v["ratio"] for v in ctx["table1"].rows.values()]
        ok = all(1.0 < r <= 20.0 for r in ratios)
        return ok, (
            f"ratios {', '.join(f'{r:.1f}' for r in ratios)} "
            f"(paper: 4.1/10.1/9.4, 'within a factor of 10')"
        )

    return [
        Criterion("Table I", "GraphCT wins every algorithm", graphct_wins),
        Criterion("Table I", "BSP within the factor-of-~10 band",
                  within_band),
    ]


def _fig1_criteria() -> list[Criterion]:
    def inflation(ctx):
        f1 = ctx["fig1"]
        value = f1.superstep_inflation
        return value >= 1.4, (
            f"{f1.bsp.num_supersteps} supersteps vs "
            f"{f1.graphct.num_iterations} iterations = {value:.2f}x "
            f"(paper: 13/6 = 2.2x; bar 1.4x at miniature scale)"
        )

    def collapse(ctx):
        msgs = ctx["fig1"].bsp.messages_per_superstep
        ok = msgs[0] > 100 * max(msgs[-2], 1)
        return ok, f"messages per superstep {msgs}"

    def constant_iterations(ctx):
        per = list(ctx["fig1"].graphct_times[128]["by_iteration"].values())
        ok = max(per) <= 1.2 * min(per)
        return ok, (
            f"per-iteration spread {max(per) / min(per):.3f}x "
            f"(constant-work claim)"
        )

    def heavy_scales(ctx):
        sweep = ctx["fig1"].bsp_times_paper_scale
        s = sweep[8]["by_iteration"][0] / sweep[128]["by_iteration"][0]
        return s > 8, f"superstep-0 speedup 8->128P = {s:.1f}x (ideal 16x)"

    def tail_flat(ctx):
        sweep = ctx["fig1"].bsp_times
        last = max(sweep[8]["by_iteration"])
        s = sweep[8]["by_iteration"][last] / sweep[128]["by_iteration"][last]
        return s < 1.5, f"last-superstep speedup 8->128P = {s:.2f}x (flat)"

    return [
        Criterion("Figure 1", "BSP superstep count inflated vs shared "
                              "memory", inflation),
        Criterion("Figure 1", "activity collapses after early supersteps",
                  collapse),
        Criterion("Figure 1", "shared-memory iterations constant work",
                  constant_iterations),
        Criterion("Figure 1", "heavy supersteps scale ~linearly",
                  heavy_scales),
        Criterion("Figure 1", "near-empty tail supersteps stop scaling",
                  tail_flat),
    ]


def _fig2_criteria() -> list[Criterion]:
    def apex_interior(ctx):
        f = ctx["fig2"].frontier_sizes
        apex = int(np.argmax(f))
        ok = 0 < apex < len(f) - 1
        return ok, f"frontier {f} (apex at level {apex})"

    def blowup(ctx):
        r = ctx["fig2"].peak_message_to_frontier_ratio
        return r > 10, (
            f"peak delivered/frontier = {r:.0f}x "
            f"(paper: 'an order of magnitude')"
        )

    def tail_decline(ctx):
        msgs = ctx["fig2"].bsp_messages
        apex = int(np.argmax(msgs))
        ok = all(msgs[i] >= msgs[i + 1] for i in range(apex, len(msgs) - 1))
        return ok, f"messages {msgs} decline monotonically past the apex"

    return [
        Criterion("Figure 2", "frontier ramps, peaks, contracts",
                  apex_interior),
        Criterion("Figure 2", "post-apex messages dwarf the true frontier",
                  blowup),
        Criterion("Figure 2", "messages decline exponentially at the tail",
                  tail_decline),
    ]


def _fig3_criteria() -> list[Criterion]:
    def apex_scales(ctx):
        f3 = ctx["fig3"]
        best = max(
            f3.speedup("graphct", lvl, paper_scale=True)
            for lvl in f3.levels
        )
        return best > 8, f"best per-level speedup {best:.1f}x (ideal 16x)"

    def edges_flat(ctx):
        f3 = ctx["fig3"]
        worst = min(
            f3.speedup("graphct", lvl, paper_scale=True)
            for lvl in f3.levels
        )
        return worst < 4, f"flattest per-level speedup {worst:.1f}x"

    def bsp_above(ctx):
        f3 = ctx["fig3"]
        ok = all(
            f3.bsp_total[p] > f3.graphct_total[p]
            for p in f3.config.processor_counts
        )
        return ok, "BSP total above GraphCT at every processor count"

    return [
        Criterion("Figure 3", "frontier-apex levels scale ~linearly",
                  apex_scales),
        Criterion("Figure 3", "early/late levels show flat scaling",
                  edges_flat),
        Criterion("Figure 3", "BSP per-level times above GraphCT's",
                  bsp_above),
    ]


def _fig4_criteria() -> list[Criterion]:
    def both_linear(ctx):
        f4 = ctx["fig4"]
        b = f4.speedup("bsp", paper_scale=True)
        g = f4.speedup("graphct", paper_scale=True)
        return b > 10 and g > 10, (
            f"speedups 8->128P: BSP {b:.1f}x, GraphCT {g:.1f}x"
        )

    def write_blowup(ctx):
        r = ctx["fig4"].write_ratio
        return r > 5, (
            f"BSP/GraphCT write ratio {r:.0f}x "
            f"(paper: 181x at scale 24; grows with scale)"
        )

    def counts_agree(ctx):
        f4 = ctx["fig4"]
        ok = f4.bsp.total_triangles == f4.graphct.total_triangles
        return ok, (
            f"{f4.bsp.possible_triangles:,} possible -> "
            f"{f4.bsp.total_triangles:,} actual triangles (both models)"
        )

    return [
        Criterion("Figure 4", "both models scale linearly", both_linear),
        Criterion("Figure 4", "BSP write volume dwarfs shared memory",
                  write_blowup),
        Criterion("Figure 4", "possible >> actual triangles, counts agree",
                  counts_agree),
    ]


def _anecdote_criteria() -> list[Criterion]:
    def within_oom(ctx):
        an = ctx["anecdotes"]
        ok = all(an.within_order_of_magnitude(k) for k in an.rows)
        detail = ", ".join(
            f"{k}: {v['simulated']:.0f}s vs ~{v['paper']:.0f}s"
            for k, v in an.rows.items()
        )
        return ok, detail

    def sssp_flat(ctx):
        flat = ctx["anecdotes"].sssp_flat_counts
        return 85 in flat, f"flat machine counts {flat} (paper: 30-85)"

    return [
        Criterion("Anecdotes", "cluster systems within an order of "
                               "magnitude", within_oom),
        Criterion("Anecdotes", "Giraph SSSP scaling goes flat", sssp_flat),
    ]


def verify_all(config: ExperimentConfig | None = None) -> VerificationReport:
    """Run every experiment and evaluate every claim."""
    config = config or ExperimentConfig()
    context = {
        "table1": run_table1(config),
        "fig1": run_fig1(config),
        "fig2": run_fig2(config),
        "fig3": run_fig3(config),
        "fig4": run_fig4(config),
        "anecdotes": run_cluster_anecdotes(config),
    }
    criteria = (
        _table1_criteria()
        + _fig1_criteria()
        + _fig2_criteria()
        + _fig3_criteria()
        + _fig4_criteria()
        + _anecdote_criteria()
    )
    report = VerificationReport(config=config)
    for criterion in criteria:
        try:
            passed, detail = criterion.check(context)
        except Exception as exc:  # surface, don't crash the scorecard
            passed, detail = False, f"check raised {exc!r}"
        report.results.append(
            CriterionResult(
                experiment=criterion.experiment,
                claim=criterion.claim,
                passed=passed,
                detail=detail,
            )
        )
    return report
