"""Experiment workload construction.

The paper's single input: an undirected, scale-free RMAT graph with 16M
vertices and 268M edges (scale 24, edge factor 16).  The reproduction
default is the scale-14 miniature of the same recipe; ``paper_scale``
records the original exponent so results can be extrapolated (RMAT is
self-similar, see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.properties import giant_component_vertex, peripheral_vertex
from repro.xmt.machine import XMTMachine

__all__ = [
    "DEFAULT_PROCESSOR_COUNTS",
    "ExperimentConfig",
    "Workload",
    "build_workload",
]

#: The paper sweeps processor counts doubling up to the full machine.
DEFAULT_PROCESSOR_COUNTS = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every experiment."""

    scale: int = 14
    edge_factor: int = 16
    seed: int = 1
    processor_counts: tuple[int, ...] = DEFAULT_PROCESSOR_COUNTS
    #: The paper's graph exponent, for work extrapolation.
    paper_scale: int = 24

    def __post_init__(self) -> None:
        if not self.processor_counts:
            raise ValueError("processor_counts must be non-empty")
        if any(p < 1 for p in self.processor_counts):
            raise ValueError("processor counts must be positive")
        if self.paper_scale < self.scale:
            raise ValueError("paper_scale must be >= scale")

    @property
    def extrapolation_factor(self) -> float:
        """Work multiplier from the miniature to the paper's graph.

        RMAT edge counts scale linearly in 2**scale at fixed edge factor;
        per-iteration work in all three kernels is edge-dominated.
        (Triangle-counting wedge counts grow *superlinearly*, so the
        extrapolated BSP triangle numbers are a lower bound — noted in
        EXPERIMENTS.md.)
        """
        return float(2 ** (self.paper_scale - self.scale))

    def machine(self, processors: int) -> XMTMachine:
        return XMTMachine(num_processors=processors)


@dataclass(frozen=True)
class Workload:
    """A built experiment input."""

    config: ExperimentConfig
    graph: CSRGraph
    #: BFS/SSSP source: a peripheral giant-component vertex, so the
    #: traversal exhibits the full frontier ramp/apex/contraction profile
    #: of the paper's figures.
    bfs_source: int
    #: A giant-component hub (used by ablations).
    hub: int


@lru_cache(maxsize=8)
def _build_cached(
    scale: int, edge_factor: int, seed: int
) -> tuple[CSRGraph, int, int]:
    graph = rmat(scale=scale, edge_factor=edge_factor, seed=seed)
    return graph, peripheral_vertex(graph), giant_component_vertex(graph)


def build_workload(config: ExperimentConfig | None = None) -> Workload:
    """Build (and memoize) the experiment graph and its sources."""
    config = config or ExperimentConfig()
    graph, source, hub = _build_cached(
        config.scale, config.edge_factor, config.seed
    )
    return Workload(config=config, graph=graph, bfs_source=source, hub=hub)
