"""ASCII line charts for terminal figure rendering.

The paper's figures are log-scale line plots; ``python -m repro.cli
<fig> --chart`` renders the same series as unicode-free ASCII charts so
the shapes (even spacing = linear scaling, frontier ramp/apex/collapse)
are visible without matplotlib.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart", "log_ascii_chart"]

_MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    exp = math.floor(math.log10(abs(value)))
    if -2 <= exp <= 3:
        return f"{value:.3g}"
    return f"{value:.1e}"


def ascii_chart(
    title: str,
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    logscale: bool = False,
    x_labels: Sequence | None = None,
) -> str:
    """Render one or more series as an ASCII chart.

    ``series`` maps a name to a list of y-values over a shared integer x
    axis.  Values <= 0 are skipped in log scale.  Each series gets a
    marker from ``oxo+*...``; the legend maps markers back to names.
    """
    if not series:
        raise ValueError("series must be non-empty")
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    points: list[tuple[int, float, int]] = []  # (x, y, series_index)
    max_len = 0
    for s_idx, values in enumerate(series.values()):
        max_len = max(max_len, len(values))
        for x, y in enumerate(values):
            if logscale and y <= 0:
                continue
            points.append((x, float(y), s_idx))
    if not points:
        raise ValueError("no plottable points")

    ys = [p[1] for p in points]
    y_min, y_max = min(ys), max(ys)
    if logscale:
        y_min, y_max = math.log10(y_min), math.log10(y_max)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_max = max(max_len - 1, 1)

    grid = [[" "] * width for _ in range(height)]
    for x, y, s_idx in points:
        col = round(x / x_max * (width - 1))
        y_val = math.log10(y) if logscale else y
        row = round((y_val - y_min) / (y_max - y_min) * (height - 1))
        row = height - 1 - row
        marker = _MARKERS[s_idx % len(_MARKERS)]
        # Overlapping series show the later marker.
        grid[row][col] = marker

    top_tick = _format_tick(10**y_max if logscale else y_max)
    bottom_tick = _format_tick(10**y_min if logscale else y_min)
    gutter = max(len(top_tick), len(bottom_tick)) + 1

    lines = [title, "=" * len(title)]
    for r, row in enumerate(grid):
        if r == 0:
            label = top_tick
        elif r == height - 1:
            label = bottom_tick
        else:
            label = ""
        lines.append(f"{label.rjust(gutter)}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    if x_labels is not None:
        first = str(x_labels[0]) if len(x_labels) else ""
        last = str(x_labels[-1]) if len(x_labels) else ""
        pad = width - len(first) - len(last)
        lines.append(
            " " * (gutter + 1) + first + " " * max(pad, 1) + last
        )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{' ' * gutter} {legend}")
    return "\n".join(lines)


def log_ascii_chart(
    title: str,
    series: Mapping[str, Sequence[float]],
    **kwargs,
) -> str:
    """Shortcut for the paper's log-y-scale figures."""
    return ascii_chart(title, series, logscale=True, **kwargs)
