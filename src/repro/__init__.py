"""repro — reproduction of *Investigating Graph Algorithms in the BSP
Model on the Cray XMT* (Ediger & Bader, IEEE IPDPSW 2013).

The package compares two programming models for static graph analytics —
GraphCT-style loop-parallel shared memory and Pregel-style bulk
synchronous parallel — on a simulated 128-processor Cray XMT.

Quick start::

    from repro import rmat, GraphCT, bsp_connected_components
    from repro.xmt import PNNL_XMT, simulate

    graph = rmat(scale=14, edge_factor=16, seed=1)

    shared = GraphCT(graph).connected_components()
    bsp = bsp_connected_components(graph)
    assert (shared.labels == bsp.labels).all()

    print(simulate(shared.trace, PNNL_XMT).total_seconds)
    print(simulate(bsp.trace, PNNL_XMT).total_seconds)

Subpackages:

* :mod:`repro.graph` — CSR storage, RMAT generation, I/O (S1-S4);
* :mod:`repro.xmt` — the Cray XMT machine model (S5-S7);
* :mod:`repro.runtime` — instrumented parallel runtime (S7-S8);
* :mod:`repro.graphct` — shared-memory baseline kernels (S9);
* :mod:`repro.bsp` — the Pregel-style engine and API (S10-S11);
* :mod:`repro.bsp_algorithms` — the paper's BSP algorithms (S12);
* :mod:`repro.analysis` — figure/table reproduction harness (S13);
* :mod:`repro.cluster` — distributed-cluster cost model (S14);
* :mod:`repro.cli` — ``python -m repro.cli`` (S15).
"""

from repro.bsp import BSPEngine, VertexContext, VertexProgram
from repro.bsp_algorithms import (
    bsp_breadth_first_search,
    bsp_connected_components,
    bsp_count_triangles,
    bsp_pagerank,
    bsp_sssp,
)
from repro.graph import CSRGraph, from_edge_list, rmat
from repro.graphct import GraphCT

__version__ = "1.0.0"

__all__ = [
    "BSPEngine",
    "CSRGraph",
    "GraphCT",
    "VertexContext",
    "VertexProgram",
    "bsp_breadth_first_search",
    "bsp_connected_components",
    "bsp_count_triangles",
    "bsp_pagerank",
    "bsp_sssp",
    "from_edge_list",
    "rmat",
]
