# Convenience targets for the repro library.

.PHONY: install test bench experiments examples clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.cli all

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
