"""End-to-end smoke test for ``repro serve`` as a real subprocess.

Starts the server on a scale-8 RMAT graph, submits ``cc`` and ``bfs``
jobs over HTTP, asserts the served results are bit-identical to direct
library calls on the same graph, exercises one result-cache hit,
scrapes ``/metrics`` and validates the Prometheus exposition (format
and the core metric families), then sends SIGTERM and verifies the
graceful drain (exit code 0, drain log line, no orphaned processes).
This covers the process/signal path that the in-process suite
(``tests/test_service.py``) cannot.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--scale 8]
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

SERVE_ARGS = [
    "--port", "0",          # ephemeral; parsed from the startup banner
    "--edge-factor", "16",
    "--seed", "1",
    "--num-workers", "2",
    "--job-threads", "2",
]


def _request(base: str, path: str, payload: dict | None = None) -> dict:
    if payload is None:
        req = urllib.request.Request(base + path)
    else:
        req = urllib.request.Request(
            base + path, data=json.dumps(payload).encode(), method="POST"
        )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def _request_text(base: str, path: str) -> tuple[str, str]:
    """GET returning (Content-Type header, body text)."""
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.headers.get("Content-Type", ""), resp.read().decode()


#: Families the exposition must carry after one engine-backed job, one
#: cache hit, and a handful of HTTP requests.
METRIC_FAMILIES = (
    "repro_http_requests_total",
    "repro_http_request_latency_seconds",
    "repro_jobs_submitted_total",
    "repro_jobs_completed_total",
    "repro_job_queue_depth",
    "repro_job_queue_wait_seconds",
    "repro_job_duration_seconds",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_evictions_total",
    "repro_engine_runs_total",
    "repro_engine_supersteps_total",
    "repro_service_up",
    "repro_worker_phase",
    "repro_worker_progress_ratio",
    "repro_superstep_skew_seconds",
)


def check_debug_workers(base: str, expected_workers: int) -> None:
    """Probe the flight-recorder debug endpoint (default-on recorder)."""
    body = _request(base, "/debug/workers")
    assert body["flight_recorder"] is True, body
    assert body["stall_detected"] is False, body
    rows = body["workers"]
    assert len(rows) == expected_workers, rows
    for row in rows:
        assert row["alive"], row
        assert row["phase"] in ("idle", "run", "scatter", "gather"), row
    listing = _request(base, "/debug/postmortem")
    assert isinstance(listing["postmortems"], list), listing
    print(f"debug ok: {len(rows)} worker rows, postmortem listing serves")

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(?:\{[^{}]*\})?"
    r" (?:NaN|[+-]Inf|-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)$"
)


def check_metrics(base: str) -> None:
    """Scrape ``/metrics`` and validate format + core families."""
    content_type, text = _request_text(base, "/metrics")
    assert content_type.startswith("text/plain"), content_type
    assert "version=0.0.4" in content_type, content_type
    assert text.endswith("\n"), "exposition must end with a newline"
    typed = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            name, kind = line.split(" ")[2:4]
            assert kind in ("counter", "gauge", "histogram"), line
            typed.add(name)
        elif not line.startswith("#"):
            assert _SAMPLE_LINE.match(line), f"malformed sample: {line!r}"
    missing = [f for f in METRIC_FAMILIES if f not in typed]
    assert not missing, f"families absent from /metrics: {missing}"
    assert "repro_service_up 1" in text.splitlines(), "service not up"
    snapshot = _request(base, "/metrics.json")
    assert snapshot["format_version"] == 1, snapshot.get("format_version")
    print(f"metrics ok: {len(typed)} families, exposition valid")


def _wait_job(base: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = _request(base, f"/jobs/{job_id}")
        if status["status"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} did not finish within {timeout}s")


def _submit_and_fetch(base: str, algorithm: str, params: dict) -> dict:
    sub = _request(base, "/jobs", {"algorithm": algorithm, "params": params})
    status = _wait_job(base, sub["job_id"])
    assert status["status"] == "done", f"{algorithm} failed: {status}"
    return _request(base, f"/jobs/{sub['job_id']}/result")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=8)
    args = parser.parse_args(argv)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--scale", str(args.scale), *SERVE_ARGS],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # Startup is a structured `serve.start` log line carrying the
        # bound address as a url= field.
        banner = proc.stdout.readline()
        print(banner, end="")
        assert "serve.start" in banner, f"unexpected first line: {banner!r}"
        match = re.search(r"url=(http://[\d.]+:\d+)", banner)
        assert match, f"no server address in startup line: {banner!r}"
        base = match.group(1)

        # The same graph the server built, computed directly in-process.
        from repro.bsp_algorithms import (
            bsp_breadth_first_search,
            bsp_connected_components,
        )
        from repro.graph import rmat

        graph = rmat(scale=args.scale, edge_factor=16, seed=1)
        health = _request(base, "/health")
        assert health["status"] == "ok", health
        assert health["graph"]["num_vertices"] == graph.num_vertices

        cc_res = _submit_and_fetch(base, "cc", {})
        cc_lib = bsp_connected_components(graph)
        assert cc_res["result"]["values"] == cc_lib.labels.tolist(), \
            "served cc labels diverge from the library call"
        assert cc_res["result"]["num_components"] == cc_lib.num_components
        print(f"cc ok: {cc_lib.num_components} components, "
              f"{cc_lib.num_supersteps} supersteps")

        bfs_res = _submit_and_fetch(base, "bfs", {"source": 0})
        bfs_lib = bsp_breadth_first_search(graph, 0)
        assert bfs_res["result"]["values"] == bfs_lib.distances.tolist(), \
            "served bfs distances diverge from the library call"
        print(f"bfs ok: {len(bfs_res['result']['frontier_sizes'])} levels")

        # An identical resubmit must be served from the cache.
        cc_again = _submit_and_fetch(base, "cc", {})
        assert cc_again["cached"] is True, "identical cc resubmit not cached"
        assert cc_again["result"] == cc_res["result"]
        cache = _request(base, "/telemetry")["service"]["cache"]
        assert cache["hits"] >= 1, f"no cache hit recorded: {cache}"
        print(f"cache ok: {cache['hits']} hit(s), {cache['misses']} miss(es)")

        check_debug_workers(base, expected_workers=2)
        check_metrics(base)

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
        print(out, end="")
        assert proc.returncode == 0, f"serve exited with {proc.returncode}"
        assert "drained" in out, "no drain banner after SIGTERM"
        print("shutdown ok: drained cleanly on SIGTERM")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
