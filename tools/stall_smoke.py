"""Hang-injection smoke test for the flight recorder + stall watchdog.

Runs the sharded engine on a small RMAT graph with a fixture program
whose ``arc_payload`` hook sleeps far past ``stall_timeout`` whenever
the arc selection touches a vertex owned by shard 1 — a deterministic
stand-in for a wedged worker.  Asserts, end to end:

1. the engine raises :class:`~repro.bsp.parallel.WorkerStallError`
   within a small multiple of ``stall_timeout`` (not after the sleep
   finishes — detection, not patience);
2. the error names a postmortem bundle that exists on disk and decodes:
   format version, stall reason, last barrier state, partition map,
   and per-worker ring events including the stalled worker's open
   gather phase;
3. ``close()`` afterwards is *bounded* — the still-sleeping worker is
   escalated join → terminate → kill instead of hanging shutdown.

Usage::

    PYTHONPATH=src python tools/stall_smoke.py [--stall-timeout 2.0]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.bsp.parallel import ShardedBSPEngine, WorkerStallError
from repro.bsp_algorithms.connected_components import DenseConnectedComponents
from repro.graph.generators import rmat

#: How long the injected hang sleeps.  Must dwarf every asserted bound:
#: if detection or shutdown waited for the worker, the timing asserts
#: below would trip long before this elapses.
HANG_SECONDS = 60.0


class SleepyComponents(DenseConnectedComponents):
    """Connected components whose payload hook wedges on chosen vertices.

    ``trap_vertices`` is chosen by the harness to lie on shard 1, so
    exactly that worker's gather goes silent while the others finish —
    the straggler-turned-stall shape the watchdog exists to catch.
    """

    def __init__(self, trap_vertices: np.ndarray) -> None:
        self.trap = np.asarray(trap_vertices, dtype=np.int64)

    def arc_payload(self, graph, values, selection):
        sources = graph.arc_sources()[selection]
        if np.isin(sources, self.trap).any():
            time.sleep(HANG_SECONDS)
        return super().arc_payload(graph, values, selection)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--stall-timeout", type=float, default=2.0)
    args = parser.parse_args(argv)

    graph = rmat(scale=args.scale, edge_factor=8, seed=7)
    engine = ShardedBSPEngine(
        graph, num_workers=2, stall_timeout=args.stall_timeout
    )
    # Trap every vertex on shard 1: any superstep that floods shard 1
    # arcs wedges that worker's gather.
    trap = np.flatnonzero(engine.assignment == 1)
    program = SleepyComponents(trap)

    t0 = time.monotonic()
    try:
        engine.run(program)
    except WorkerStallError as exc:
        detected_after = time.monotonic() - t0
        error = exc
    else:
        print("FAIL: engine completed without detecting the stall")
        return 1

    # Detection bound: generously 5x the deadline (poll granularity,
    # run startup) but nowhere near the 60s hang.
    budget = max(5 * args.stall_timeout, args.stall_timeout + 3)
    assert detected_after < budget, (
        f"stall detected after {detected_after:.1f}s; budget {budget:.1f}s"
    )
    assert error.worker == 1, f"expected shard 1, got {error.worker}"
    assert engine.stall_detected

    # The bundle must exist and decode.
    assert error.postmortem_path is not None, "no postmortem dumped"
    path = Path(error.postmortem_path)
    assert path.is_file(), f"missing bundle {path}"
    bundle = json.loads(path.read_text())
    assert bundle["format_version"] == 1
    assert bundle["reason"] == "stall"
    assert bundle["last_barrier"]["phase"] == "gather"
    assert bundle["partition"]["policy"] == "hash"
    assert len(bundle["workers"]) == 2
    stalled = bundle["workers"][1]
    assert stalled["status"]["phase"] == "gather", stalled["status"]
    kinds = {event["kind"] for event in stalled["events"]}
    assert "enter" in kinds, kinds

    # Bounded shutdown: worker 1 is still mid-sleep; close must
    # escalate to SIGKILL instead of waiting the sleep out.
    t1 = time.monotonic()
    engine.close()
    close_took = time.monotonic() - t1
    close_budget = 4 * args.stall_timeout + 5
    assert close_took < close_budget, (
        f"close took {close_took:.1f}s; budget {close_budget:.1f}s"
    )
    assert engine.workers_alive == 0

    print(
        f"stall smoke OK: detected in {detected_after:.2f}s "
        f"(timeout {args.stall_timeout}s), bundle {path.name}, "
        f"close in {close_took:.2f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
