"""Direction-optimized BFS and byte-packed wire framing.

Two performance claims from the frontier work, both gated by the bench
ledger:

* **Direction optimization** — the pre-frontier BFS always swept the
  whole arc array top-down and materialized the inbox every superstep.
  The adaptive run switches to sparse selections on small frontiers and
  to bottom-up past the apex, with bit-identical distances and modeled
  message counts — only wall time and performed arc scans change.
* **Wire framing** — the sharded engine's byte-packed sender frames
  replace whole-object pickling on the worker pipes;
  :attr:`~repro.bsp.parallel.ShardedBSPEngine.pipe_bytes` records the
  bytes actually crossing the pipes under each codec.  Raw byte counts
  are asserted inline (packed < pickled) but kept out of the ledger
  payload: the pickled frames embed worker counters whose integer
  encodings drift a few bytes run to run, which would trip the exact
  gate.  The gated metric is the noisy ``packed_fraction`` ratio.
"""

import time

from _emit import emit_bench
from conftest import once

import numpy as np

from repro.analysis.report import format_seconds
from repro.bsp import DenseBSPEngine, FrontierPolicy, ShardedBSPEngine
from repro.bsp_algorithms import DenseBreadthFirstSearch

#: Timing repetitions per strategy (min is reported — the ledger gates
#: the ratio, so the estimator must be stable at reduced CI scale).
REPS = 3


class _EagerBFS(DenseBreadthFirstSearch):
    """Pre-frontier execution: top-down with an eagerly delivered inbox.

    Reading ``ctx.messages`` forces the payload gather and combiner fold
    the lazy inbox otherwise skips; paired with a dense-forced policy
    this reproduces the engine's per-superstep work before the frontier
    abstraction (results are bit-identical either way).
    """

    def __init__(self, source):
        super().__init__(source, direction="top-down")

    def compute(self, ctx):
        if ctx.superstep > 0:
            ctx.messages
        return super().compute(ctx)


def bench_frontier(benchmark, workload, capsys):
    graph = workload.graph
    source = int(np.argmax(graph.degrees()))

    def timed(make_engine, make_program):
        best, result, program = np.inf, None, None
        for _ in range(REPS):
            program = make_program()
            with make_engine() as engine:
                t0 = time.perf_counter()
                result = engine.run(program)
                best = min(best, time.perf_counter() - t0)
        return best, result, program

    def run():
        # Legacy execution: full-mask selection, eager delivery.
        t_legacy, legacy, _ = timed(
            lambda: DenseBSPEngine(
                graph, frontier_policy=FrontierPolicy(mode="dense")
            ),
            lambda: _EagerBFS(source),
        )
        # Adaptive execution: GBBS mode switch + Beamer direction switch.
        t_adaptive, adaptive, adaptive_program = timed(
            lambda: DenseBSPEngine(graph),
            lambda: DenseBreadthFirstSearch(source),
        )
        # Wire framing: the same BFS over 2 workers under each codec.
        pipe_bytes = {}
        sharded_values = {}
        for wire in ("packed", "pickle"):
            with ShardedBSPEngine(
                graph, num_workers=2, wire=wire
            ) as engine:
                sharded = engine.run(DenseBreadthFirstSearch(source))
                pipe_bytes[wire] = engine.pipe_bytes
                sharded_values[wire] = sharded.values
        return (
            legacy, adaptive, adaptive_program,
            t_legacy, t_adaptive, pipe_bytes, sharded_values,
        )

    (
        legacy, adaptive, adaptive_program,
        t_legacy, t_adaptive, pipe_bytes, sharded_values,
    ) = once(benchmark, run)

    # Same computation under every execution strategy, not merely the
    # same distances.
    assert np.array_equal(legacy.values, adaptive.values)
    assert legacy.num_supersteps == adaptive.num_supersteps
    assert legacy.messages_per_superstep == adaptive.messages_per_superstep
    for wire in ("packed", "pickle"):
        assert np.array_equal(adaptive.values, sharded_values[wire])
    # Byte-packed frames must beat pickled frames on the pipe.
    assert 0 < pipe_bytes["packed"] < pipe_bytes["pickle"]

    speedup = t_legacy / t_adaptive
    packed_fraction = pipe_bytes["packed"] / pipe_bytes["pickle"]
    scanned = adaptive_program.edges_scanned
    info = dict(
        supersteps=adaptive.num_supersteps,
        messages=sum(adaptive.messages_per_superstep),
        bottom_up_supersteps=adaptive_program.direction_history.count(
            "bottom-up"
        ),
        edges_scanned=dict(scanned),
        packed_fraction=round(packed_fraction, 4),
        seconds={
            "legacy": round(t_legacy, 4),
            "adaptive": round(t_adaptive, 4),
        },
        speedup=round(speedup, 2),
    )
    benchmark.extra_info.update(info)
    emit_bench(
        "frontier",
        config={
            "algorithm": "bfs",
            "scale": workload.config.scale,
            "edge_factor": workload.config.edge_factor,
            "seed": workload.config.seed,
            "source": source,
        },
        data=info,
    )
    with capsys.disabled():
        print(
            f"\nfrontier (BFS, scale {workload.config.scale}): legacy "
            f"{format_seconds(t_legacy)} -> adaptive "
            f"{format_seconds(t_adaptive)} ({speedup:.1f}x, "
            f"{info['bottom_up_supersteps']} bottom-up supersteps, "
            f"{scanned['bottom-up']:,} arcs scanned); pipe "
            f"{pipe_bytes['pickle']:,} B pickled -> "
            f"{pipe_bytes['packed']:,} B packed "
            f"({1 / packed_fraction:.2f}x fewer)"
        )
