"""Ablation: fetch-and-add hotspot serialization in the machine model.

The paper singles out "serialization around a single atomic fetch-and-
add" as the BSP runtime's scalability hazard (§VII).  This ablation
prices the same BSP traces on an XMT whose atomic service time is zeroed
(an idealized combining network) to isolate the hotspot contribution,
and shows the effect concentrates where the paper says it does: in the
message-heavy BSP supersteps, not in the shared-memory kernels.
"""

from conftest import once

from repro.analysis.report import format_seconds
from repro.bsp_algorithms import bsp_breadth_first_search
from repro.graphct import breadth_first_search
from repro.xmt.cost_model import simulate
from repro.xmt.machine import XMTMachine


def bench_hotspot_ablation(benchmark, workload, capsys):
    graph, source = workload.graph, workload.bfs_source

    def run():
        return (
            bsp_breadth_first_search(graph, source).trace,
            breadth_first_search(graph, source).trace,
        )

    bsp_trace, shm_trace = once(benchmark, run)

    real = XMTMachine(num_processors=128)
    ideal = XMTMachine(num_processors=128, atomic_service_cycles=0.0)

    rows = {}
    for name, trace in (("bsp", bsp_trace), ("graphct", shm_trace)):
        with_hotspot = simulate(trace, real).total_seconds
        without = simulate(trace, ideal).total_seconds
        rows[name] = {
            "with": with_hotspot,
            "without": without,
            "penalty": with_hotspot / without,
        }

    # Hotspots must cost the BSP runtime relatively more than GraphCT's
    # chunked queue reservations.
    assert rows["bsp"]["penalty"] >= rows["graphct"]["penalty"] - 1e-9
    assert rows["graphct"]["penalty"] < 1.2

    benchmark.extra_info.update(
        {k: {kk: round(vv, 4) for kk, vv in v.items()}
         for k, v in rows.items()}
    )
    with capsys.disabled():
        print()
        for name, row in rows.items():
            print(
                f"hotspot ablation [{name}]: "
                f"{format_seconds(row['with'])} with serialization vs "
                f"{format_seconds(row['without'])} idealized "
                f"({row['penalty']:.2f}x)"
            )
