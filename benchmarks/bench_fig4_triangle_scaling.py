"""Figure 4: triangle-counting scalability, BSP vs GraphCT.

Paper reference: both implementations scale linearly to 128 processors;
BSP completes in 444 s vs GraphCT's 47.4 s (9.4:1).  The BSP algorithm
materializes 5.5 billion possible-triangle messages to find 30.9 million
actual triangles — 181x the shared-memory writes.  (At miniature scale
the wedge/triangle ratio, and hence the write ratio, is smaller; see
EXPERIMENTS.md.)
"""

from _emit import emit_bench
from conftest import once

from repro.analysis.experiments import run_fig4
from repro.analysis.report import format_scaling_table


def bench_fig4_triangle_counting(benchmark, config, capsys):
    result = once(benchmark, lambda: run_fig4(config))

    assert result.speedup("bsp", paper_scale=True) > 10, "BSP scales ~linearly"
    assert result.speedup("graphct", paper_scale=True) > 10
    p_max = max(config.processor_counts)
    ratio = result.bsp_times[p_max] / result.graphct_times[p_max]
    assert 1.5 <= ratio <= 20.0, "BSP slower, within the paper's band"
    assert result.write_ratio > 5
    assert result.bsp.possible_triangles > 2 * result.bsp.total_triangles
    assert result.bsp.total_triangles == result.graphct.total_triangles

    info = dict(
        bsp_times={p: round(v, 4) for p, v in result.bsp_times.items()},
        graphct_times={
            p: round(v, 4) for p, v in result.graphct_times.items()
        },
        possible_triangles=result.bsp.possible_triangles,
        actual_triangles=result.bsp.total_triangles,
        write_ratio=round(result.write_ratio, 1),
        paper="444s vs 47.4s; 5.5e9 possible vs 30.9e6 actual; 181x writes",
    )
    benchmark.extra_info.update(info)
    emit_bench(
        "fig4_triangle_counting",
        config={
            "scale": config.scale,
            "edge_factor": config.edge_factor,
            "seed": config.seed,
            "processor_counts": list(config.processor_counts),
        },
        data=info,
    )

    with capsys.disabled():
        print()
        print(format_scaling_table(
            "Figure 4 — triangle counting time vs P",
            config.processor_counts,
            {"BSP": result.bsp_times, "GraphCT": result.graphct_times},
        ))
        print(
            f"\npossible triangles {result.bsp.possible_triangles:,} -> "
            f"actual {result.bsp.total_triangles:,}; write ratio "
            f"{result.write_ratio:.0f}x "
            f"(paper: 5.5B -> 30.9M; 181x)"
        )
