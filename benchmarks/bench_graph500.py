"""Graph500-style BFS benchmark (paper §IV motivation).

Runs the benchmark shape — RMAT generation, a batch of validated BFS
searches, harmonic-mean TEPS on the simulated 128-processor XMT — for
both programming models.  The shared-memory model must post the higher
TEPS (Table I's 10.1:1 BFS ratio expressed as throughput).
"""

from conftest import BENCH_SCALE, once

from repro.analysis.graph500 import run_graph500


def bench_graph500_bfs(benchmark, capsys):
    scale = min(BENCH_SCALE, 13)  # 8 full searches; keep wall time sane

    result = once(
        benchmark, lambda: run_graph500(scale=scale, num_searches=8, seed=1)
    )

    hm_shm = result.harmonic_mean_teps("graphct")
    hm_bsp = result.harmonic_mean_teps("bsp")
    assert hm_shm > hm_bsp, "shared memory must post higher TEPS"
    assert 1.5 <= hm_shm / hm_bsp <= 20.0

    benchmark.extra_info.update(
        scale=scale,
        harmonic_mean_teps={"graphct": f"{hm_shm:.3e}", "bsp": f"{hm_bsp:.3e}"},
        searches=result.num_searches,
    )
    with capsys.disabled():
        print(
            f"\nGraph500 (scale {scale}, {result.num_searches} validated "
            f"searches): harmonic-mean simulated TEPS "
            f"GraphCT {hm_shm:.3e} vs BSP {hm_bsp:.3e} "
            f"({hm_shm / hm_bsp:.1f}x)"
        )
