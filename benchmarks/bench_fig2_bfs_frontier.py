"""Figure 2: BFS frontier size vs number of BSP messages per level.

Paper reference: initially almost every neighbour of the frontier is on
the next frontier, so messages track the frontier; once the bulk of the
graph is discovered, "the number of messages from superstep four to the
end is an order of magnitude larger than the real frontier", declining
exponentially.
"""

import numpy as np
from conftest import once

from repro.analysis.experiments import run_fig2
from repro.analysis.report import format_series


def bench_fig2_frontier_vs_messages(benchmark, config, capsys):
    result = once(benchmark, lambda: run_fig2(config))

    frontier = result.frontier_sizes
    messages = result.bsp_messages
    apex = int(np.argmax(frontier))
    assert 0 < apex < len(frontier) - 1, "frontier must ramp and contract"
    assert result.peak_message_to_frontier_ratio > 10, (
        "post-apex deliveries must dwarf the true frontier"
    )
    msg_apex = int(np.argmax(messages))
    assert all(
        messages[i] >= messages[i + 1]
        for i in range(msg_apex, len(messages) - 1)
    ), "messages must decline monotonically past their apex"

    benchmark.extra_info.update(
        frontier=frontier,
        messages=messages,
        peak_delivered_to_frontier=round(
            result.peak_message_to_frontier_ratio, 1
        ),
        paper="messages an order of magnitude above frontier post-apex",
    )

    with capsys.disabled():
        print()
        print(format_series(
            "Figure 2 — frontier (GraphCT) vs messages (BSP) by level",
            list(range(max(len(frontier), len(messages)))),
            ("frontier", frontier),
            ("messages", messages),
        ))
        print(
            f"\npeak delivered/frontier after apex: "
            f"{result.peak_message_to_frontier_ratio:.0f}x "
            f"(paper: 'an order of magnitude')"
        )
