"""Validation bench: the cycle-level stream scheduler vs the analytic
cost model's saturation law.

The analytic model assumes the XMT reaches full issue rate once enough
streams hold ready instructions, and degrades to a latency-dominated
regime below that (with ``stream_utilization`` capping the effective
stream count).  This bench measures utilization on the simulated
mechanism across stream counts and asserts the law's shape: monotone
rise, knee at the analytic saturation point, near-1.0 beyond it.
"""

from conftest import once

from repro.xmt.streams import StreamSimulator, StreamWorkload


def bench_stream_saturation(benchmark, capsys):
    latency = 120
    workload = StreamWorkload(instructions=240, memory_period=3)
    counts = [1, 2, 4, 8, 16, 32, 64, 128, 256]

    def run():
        return StreamSimulator(
            memory_latency_cycles=latency
        ).utilization_curve(workload, counts)

    curve = once(benchmark, run)

    values = [curve[c] for c in counts]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    saturation = StreamSimulator(
        memory_latency_cycles=latency
    ).saturation_streams(workload)
    below = max(c for c in counts if c <= saturation / 2)
    above = min(c for c in counts if c >= saturation * 2)
    assert curve[below] < 0.7
    assert curve[above] > 0.9

    benchmark.extra_info.update(
        latency=latency,
        saturation_streams=round(saturation, 1),
        curve={c: round(u, 3) for c, u in curve.items()},
    )
    with capsys.disabled():
        print(
            f"\nstream saturation (latency {latency} cycles, analytic "
            f"knee at {saturation:.0f} streams):"
        )
        for c in counts:
            bar = "#" * int(curve[c] * 40)
            print(f"  {c:4d} streams  {curve[c]:5.2f}  {bar}")
