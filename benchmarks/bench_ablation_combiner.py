"""Ablation: a Pregel min-combiner on BSP connected components.

The paper's runtime materializes every message (no combiners) — the
source of its write blow-up.  Pregel's combiner folds same-destination
messages before they hit the queue; this ablation measures how much of
the BSP/GraphCT gap a combiner would have closed on the Cray XMT.
"""

from conftest import once

from repro.analysis.report import format_seconds
from repro.bsp_algorithms import bsp_connected_components
from repro.graphct import connected_components
from repro.xmt.cost_model import simulate
from repro.xmt.machine import XMTMachine


def bench_combiner_ablation(benchmark, workload, capsys):
    graph = workload.graph

    def run():
        return (
            bsp_connected_components(graph),
            bsp_connected_components(graph, combine_messages=True),
            connected_components(graph),
        )

    plain, combined, shm = once(benchmark, run)

    assert (plain.labels == combined.labels).all()
    assert combined.total_messages < plain.total_messages / 5, (
        "the min-combiner must collapse queue traffic"
    )

    machine = XMTMachine(num_processors=128)
    t_plain = simulate(plain.trace, machine).total_seconds
    t_combined = simulate(combined.trace, machine).total_seconds
    t_shm = simulate(shm.trace, machine).total_seconds
    assert t_combined < t_plain
    assert t_combined > t_shm * 0.5  # supersteps still cost something

    benchmark.extra_info.update(
        messages_plain=plain.total_messages,
        messages_combined=combined.total_messages,
        seconds={"plain": round(t_plain, 5),
                 "combined": round(t_combined, 5),
                 "graphct": round(t_shm, 5)},
    )
    with capsys.disabled():
        print(
            f"\ncombiner ablation (CC @128P): plain BSP "
            f"{format_seconds(t_plain)} "
            f"({plain.total_messages:,} msgs) -> combined "
            f"{format_seconds(t_combined)} "
            f"({combined.total_messages:,} msgs); GraphCT "
            f"{format_seconds(t_shm)}"
        )
