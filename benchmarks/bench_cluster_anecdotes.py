"""Distributed-BSP anecdotes (paper §III-§IV narrative comparisons).

Paper reference:

* Giraph connected components on a Wikipedia graph (6M vertices, 200M
  edges): ~4 s on a 6-node cluster, 12 supersteps;
* Giraph SSSP on Twitter (43.7M / 688M): ~30 s on 60 machines, flat
  scaling from 30 to 85 machines (Kajdanowicz et al.);
* Trinity BFS on RMAT 512M / 6.6B: ~400 s on 14 machines.

Criterion: the cluster cost model must land within an order of magnitude
of each cited figure, and SSSP scaling must go flat.
"""

from conftest import once

from repro.analysis.experiments import run_cluster_anecdotes
from repro.analysis.report import format_seconds


def bench_cluster_anecdotes(benchmark, config, capsys):
    result = once(benchmark, lambda: run_cluster_anecdotes(config))

    for name in result.rows:
        assert result.within_order_of_magnitude(name), name
    assert 85 in result.sssp_flat_counts

    benchmark.extra_info.update(
        rows={
            k: {kk: round(vv, 2) for kk, vv in v.items()}
            for k, v in result.rows.items()
        },
        sssp_flat_counts=result.sssp_flat_counts,
    )

    with capsys.disabled():
        print()
        for name, row in result.rows.items():
            print(
                f"{name}: simulated {format_seconds(row['simulated'])} "
                f"vs paper ~{format_seconds(row['paper'])} on "
                f"{int(row['machines'])} machines"
            )
        print(
            f"Giraph SSSP flat scaling at machine counts "
            f"{result.sssp_flat_counts} (paper: 30-85)"
        )
