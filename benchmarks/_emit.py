"""Schema-versioned benchmark result emission.

Every benchmark in this directory writes a machine-readable
``BENCH_<name>.json`` next to its pytest-benchmark timing, so CI can
archive reproduced paper numbers without scraping stdout.  The default
output directory is ``results/bench`` (override with the
``REPRO_BENCH_OUT`` environment variable).

The payload layout is::

    {
      "schema_version": 1,
      "benchmark": "<name>",
      "config": {...},   # workload parameters (scale, seed, ...)
      "data": {...}      # reproduced numbers (the extra_info dict)
    }

Benchmarks are wired through this module automatically by the autouse
fixture in ``conftest.py``; a benchmark that needs a custom payload can
also call :func:`emit_bench` directly (the explicit file wins — the
autouse fixture skips names already emitted this session).
"""

import json
import os

import numpy as np

__all__ = ["SCHEMA_VERSION", "emit_bench"]

#: Bump on breaking changes to the BENCH_*.json payload layout.
SCHEMA_VERSION = 1

#: Names explicitly emitted this session (autouse fixture skips these).
_EMITTED: set = set()


def _jsonable(obj):
    """Recursively convert numpy scalars/arrays for ``json.dump``."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def emit_bench(name, *, config=None, data=None, path=None):
    """Write ``BENCH_<name>.json`` and return its path.

    ``config`` describes the workload (scale, seed, ...); ``data``
    carries the reproduced numbers.  ``path`` overrides the default
    ``$REPRO_BENCH_OUT/BENCH_<name>.json`` location.
    """
    out_dir = os.environ.get("REPRO_BENCH_OUT", "results/bench")
    if path is None:
        path = os.path.join(out_dir, f"BENCH_{name}.json")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "config": _jsonable(config or {}),
        "data": _jsonable(data or {}),
    }
    with open(path, "w", encoding="ascii") as fh:
        json.dump(payload, fh, indent=1, default=float)
        fh.write("\n")
    _EMITTED.add(name)
    return path
