"""Schema-versioned benchmark result emission.

Every benchmark in this directory writes a machine-readable
``BENCH_<name>.json`` next to its pytest-benchmark timing, so CI can
archive reproduced paper numbers without scraping stdout.  The default
output directory is ``results/bench`` (override with the
``REPRO_BENCH_OUT`` environment variable).

The payload layout (schema v2) is::

    {
      "schema_version": 2,
      "benchmark": "<name>",
      "config": {...},       # workload parameters (scale, seed, ...)
      "data": {...},         # reproduced numbers (the extra_info dict)
      "memory": {...},       # peak RSS of the emitting process
      "provenance": {...}    # git SHA/branch, UTC time, machine
                             # fingerprint, package version
    }

Provenance is stamped at emission time (see
:func:`repro.bench.ledger.collect_provenance`) so that ``repro bench
record`` can append the payload to the history ledger with full run
attribution even when recording happens later, on another machine.

Payloads are strict JSON: non-finite floats (``NaN``/``Inf``) are
sanitized to ``null`` before writing, and ``json.dump`` runs with
``allow_nan=False`` so a regression here fails loudly instead of
emitting tokens strict parsers reject.

Benchmarks are wired through this module automatically by the autouse
fixture in ``conftest.py``; a benchmark that needs a custom payload can
also call :func:`emit_bench` directly (the explicit file wins — the
autouse fixture skips names already emitted this session).
"""

import json
import math
import os

import numpy as np

from repro.bench.ledger import collect_provenance, sanitize
from repro.telemetry.core import peak_rss_bytes

__all__ = ["SCHEMA_VERSION", "emit_bench"]

#: Bump on breaking changes to the BENCH_*.json payload layout.
#: v2: added ``provenance`` and ``memory`` blocks, strict-JSON floats.
SCHEMA_VERSION = 2

#: Names explicitly emitted this session (autouse fixture skips these).
_EMITTED: set = set()


def _jsonable(obj):
    """Recursively convert numpy scalars/arrays for ``json.dump``.

    Non-finite floats become ``None``: the standard JSON grammar has no
    ``NaN``/``Infinity`` tokens, and the history ledger (plus any strict
    parser) must be able to read every payload back.
    """
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, np.generic):
        return _jsonable(obj.item())
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def emit_bench(name, *, config=None, data=None, path=None):
    """Write ``BENCH_<name>.json`` and return its path.

    ``config`` describes the workload (scale, seed, ...); ``data``
    carries the reproduced numbers.  ``path`` overrides the default
    ``$REPRO_BENCH_OUT/BENCH_<name>.json`` location.  The payload is
    stamped with run provenance and the emitting process's peak RSS.
    """
    out_dir = os.environ.get("REPRO_BENCH_OUT", "results/bench")
    if path is None:
        path = os.path.join(out_dir, f"BENCH_{name}.json")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    rss = peak_rss_bytes()
    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "config": _jsonable(config or {}),
        "data": _jsonable(data or {}),
        "memory": {"peak_rss_bytes": rss} if rss is not None else {},
        "provenance": sanitize(collect_provenance()),
    }
    with open(path, "w", encoding="ascii") as fh:
        json.dump(payload, fh, indent=1, default=float, allow_nan=False)
        fh.write("\n")
    _EMITTED.add(name)
    return path
