"""Ablation: BSP message-queue designs (the paper's §VII hazard).

§VII: "Without native support for message features such as enqueueing
and dequeueing, serialization around a single atomic fetch-and-add is
possible, inhibiting scalability."  This ablation re-prices the BSP BFS
trace under three queue designs — one global fetch-and-add tail, a tail
per destination vertex, and chunked block reservation — and shows the
single-tail design flattens the processor sweep exactly as the paper
warns, while either mitigation restores linear scaling.
"""

from conftest import once

from repro.bsp.instrumentation import QUEUE_DESIGNS, with_queue_design
from repro.bsp_algorithms import bsp_breadth_first_search
from repro.xmt.calibration import DEFAULT_COSTS
from repro.xmt.cost_model import simulate
from repro.xmt.machine import XMTMachine


def bench_queue_design_ablation(benchmark, workload, config, capsys):
    trace = once(
        benchmark,
        lambda: bsp_breadth_first_search(
            workload.graph, workload.bfs_source
        ).trace,
    )

    factor = config.extrapolation_factor  # price at paper-scale volume
    speedups = {}
    times = {}
    for design in QUEUE_DESIGNS:
        priced = with_queue_design(trace, design, DEFAULT_COSTS).scaled(
            factor
        )
        t = {
            p: simulate(priced, XMTMachine(num_processors=p)).total_seconds
            for p in config.processor_counts
        }
        times[design] = t
        speedups[design] = t[min(t)] / t[max(t)]

    # The paper's warning, quantified: the naive queue stops scaling...
    assert speedups["single-tail"] < 2.0
    # ...while either mitigation restores near-linear scaling.
    assert speedups["per-vertex"] > 10
    assert speedups["chunked"] > 10
    p_max = max(config.processor_counts)
    assert times["single-tail"][p_max] > 5 * times["per-vertex"][p_max]

    benchmark.extra_info.update(
        speedups={k: round(v, 1) for k, v in speedups.items()},
        seconds_at_pmax={
            k: round(v[p_max], 3) for k, v in times.items()
        },
    )
    with capsys.disabled():
        print("\nqueue-design ablation (BSP BFS, paper-scale work):")
        for design in QUEUE_DESIGNS:
            print(
                f"  {design:12s} speedup 8->{p_max}: "
                f"{speedups[design]:5.1f}x | at {p_max}P: "
                f"{times[design][p_max]:.3f}s"
            )
