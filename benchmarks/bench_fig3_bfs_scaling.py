"""Figure 3: scalability of the middle BFS levels, BSP vs GraphCT.

Paper reference (levels 3-8 of a scale-24 BFS): early/late levels show
flat scaling; the levels around the frontier apex scale near-linearly to
128 processors; BSP per-level times sit above GraphCT's because an
order of magnitude more queue traffic contends on the message queue.
Totals at 128P: 3.12 s (BSP) vs 310 ms (GraphCT).
"""

from conftest import once

from repro.analysis.experiments import run_fig3
from repro.analysis.report import format_scaling_table, format_seconds


def bench_fig3_bfs_level_scaling(benchmark, config, capsys):
    result = once(benchmark, lambda: run_fig3(config))

    # Apex levels scale near-linearly at paper-scale work ...
    best_bsp = max(
        result.speedup("bsp", lvl, paper_scale=True) for lvl in result.levels
    )
    best_shm = max(
        result.speedup("graphct", lvl, paper_scale=True)
        for lvl in result.levels
    )
    assert best_bsp > 8 and best_shm > 8
    # ... while the smallest interior level stays flat even there.
    worst = min(
        result.speedup("graphct", lvl, paper_scale=True)
        for lvl in result.levels
    )
    assert worst < 4
    # BSP is slower overall, within the paper's band.
    p_max = max(config.processor_counts)
    ratio = result.bsp_total[p_max] / result.graphct_total[p_max]
    assert 2.0 <= ratio <= 20.0

    benchmark.extra_info.update(
        levels=result.levels,
        bsp_total={p: round(v, 5) for p, v in result.bsp_total.items()},
        graphct_total={
            p: round(v, 6) for p, v in result.graphct_total.items()
        },
        best_speedups={"bsp": round(best_bsp, 1), "graphct": round(best_shm, 1)},
        paper="3.12s vs 310ms at 128P; apex levels linear, edges flat",
    )

    with capsys.disabled():
        for model in ("bsp", "graphct"):
            print()
            print(format_scaling_table(
                f"Figure 3 ({model}) — per-level time vs P "
                f"[paper-scale work]",
                config.processor_counts,
                {
                    f"level {lvl}": result.series_paper_scale[model][lvl]
                    for lvl in result.levels
                },
            ))
        print(
            f"\ntotals at P={p_max}: BSP "
            f"{format_seconds(result.bsp_total[p_max])} vs GraphCT "
            f"{format_seconds(result.graphct_total[p_max])} "
            f"(paper: 3.12s vs 310ms)"
        )
