"""Ablation: BSP triangle-counting message volume vs triangle density.

§V observes that the evaluation's RMAT graph "contains far fewer
triangles than a real-world graph.  The number of intermediate messages
will grow quickly with a higher triangle density."  This ablation holds
the size and degree sequence fixed (Watts–Strogatz, rewiring as the
clustering knob) and measures how the BSP algorithm's message volume and
simulated time respond to triangle density.
"""

from conftest import once

from repro.bsp_algorithms import bsp_count_triangles
from repro.graph import watts_strogatz
from repro.graphct import clustering_coefficients
from repro.xmt.cost_model import simulate
from repro.xmt.machine import XMTMachine

REWIRES = (0.02, 0.2, 0.9)


def bench_triangle_density_ablation(benchmark, capsys):
    def run():
        rows = {}
        for p in REWIRES:
            g = watts_strogatz(4000, k=12, rewire_prob=p, seed=1)
            cc = clustering_coefficients(g).global_coefficient
            tri = bsp_count_triangles(g)
            seconds = simulate(
                tri.trace, XMTMachine(num_processors=128)
            ).total_seconds
            rows[p] = {
                "clustering": cc,
                "triangles": tri.total_triangles,
                "messages": tri.total_messages,
                "messages_per_edge": tri.total_messages / g.num_edges,
                "seconds": seconds,
            }
        return rows

    rows = once(benchmark, run)

    ordered = [rows[p] for p in REWIRES]
    # Clustering, triangle counts and message volume fall together as
    # rewiring destroys the lattice's triangles.
    assert ordered[0]["clustering"] > ordered[-1]["clustering"] * 3
    assert ordered[0]["triangles"] > ordered[-1]["triangles"] * 3
    assert (
        ordered[0]["messages_per_edge"] > ordered[-1]["messages_per_edge"]
    )

    benchmark.extra_info["rows"] = {
        str(p): {k: round(v, 4) for k, v in row.items()}
        for p, row in rows.items()
    }
    with capsys.disabled():
        print("\ntriangle-density ablation (WS n=4000, k=12):")
        for p in REWIRES:
            r = rows[p]
            print(
                f"  rewire {p:4.2f}: clustering {r['clustering']:.3f}, "
                f"{r['triangles']:7,} triangles, "
                f"{r['messages']:9,} messages "
                f"({r['messages_per_edge']:.2f}/edge), "
                f"{r['seconds'] * 1e3:.2f} ms @128P"
            )
