"""Ablation: vertex-id vs degree total order in triangle counting.

Algorithm 3 orients wedges by vertex id.  On a scale-free graph, degree
ordering (hubs last) bounds oriented out-degrees and shrinks the wedge
set — directly reducing the BSP algorithm's superstep-1 message
explosion.  This quantifies how much of the paper's 5.5-billion-message
blow-up is an artifact of the id order.
"""

from conftest import once

from repro.graphct import count_triangles


def bench_degree_ordering_ablation(benchmark, workload, capsys):
    graph = workload.graph

    def run():
        return (
            count_triangles(graph, ordering="id"),
            count_triangles(graph, ordering="degree"),
        )

    by_id, by_degree = once(benchmark, run)

    assert by_id.total_triangles == by_degree.total_triangles
    assert by_degree.wedges_checked < by_id.wedges_checked, (
        "degree ordering must shrink the wedge (message) set on RMAT"
    )

    reduction = by_id.wedges_checked / by_degree.wedges_checked
    benchmark.extra_info.update(
        wedges_id_order=by_id.wedges_checked,
        wedges_degree_order=by_degree.wedges_checked,
        reduction=round(reduction, 2),
        triangles=by_id.total_triangles,
    )
    with capsys.disabled():
        print(
            f"\ndegree-ordering ablation: id order checks "
            f"{by_id.wedges_checked:,} wedges, degree order "
            f"{by_degree.wedges_checked:,} ({reduction:.1f}x fewer "
            f"possible-triangle messages for the same "
            f"{by_id.total_triangles:,} triangles)"
        )
