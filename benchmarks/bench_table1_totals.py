"""Table I: total execution times on the 128-processor Cray XMT.

Paper reference (scale-24 RMAT, 16M vertices / 268M edges):

    ==========================  ======  =======  ======
    Algorithm                   BSP     GraphCT  Ratio
    ==========================  ======  =======  ======
    Connected components        5.40s   1.31s    4.1:1
    Breadth-first search        3.12s   0.310s   10.1:1
    Triangle counting           444s    47.4s    9.4:1
    ==========================  ======  =======  ======

Reproduction criteria: GraphCT wins every row; BSP lands within 2-20x
(paper: "within a factor of 10").
"""

from conftest import once

from repro.analysis.experiments import run_table1
from repro.analysis.report import format_table1


def bench_table1(benchmark, config, capsys):
    result = once(benchmark, lambda: run_table1(config))

    for name, row in result.rows.items():
        assert row["ratio"] > 1.0, f"{name}: GraphCT must win"
        assert row["ratio"] <= 20.0, f"{name}: BSP within a factor of ~10"

    benchmark.extra_info["rows"] = {
        k: {kk: round(vv, 4) for kk, vv in v.items()}
        for k, v in result.rows.items()
    }
    benchmark.extra_info["extrapolated_rows"] = {
        k: {kk: round(vv, 3) for kk, vv in v.items()}
        for k, v in result.extrapolated_rows.items()
    }
    with capsys.disabled():
        print()
        print(format_table1(
            result.rows,
            title=f"Table I [measured, RMAT scale {config.scale}]",
            paper_rows=result.paper_rows,
        ))
        print()
        print(format_table1(
            result.extrapolated_rows,
            title="Table I [work extrapolated to paper scale 24]",
            paper_rows=result.paper_rows,
        ))
