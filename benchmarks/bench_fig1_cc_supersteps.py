"""Figure 1: connected-components execution time by iteration.

Paper reference: the BSP algorithm completes in 13 supersteps (first
four carry almost all vertices, then activity collapses); GraphCT
completes in 6 iterations of constant work.  Heavy iterations show even
vertical spacing across processor counts (linear scaling); the BSP tail
flattens as the active set shrinks.  Totals at 128P: 5.40 s (BSP) vs
1.31 s (GraphCT).
"""

from conftest import once

from repro.analysis.experiments import run_fig1
from repro.analysis.report import format_seconds, format_series


def bench_fig1_connected_components(benchmark, config, capsys):
    result = once(benchmark, lambda: run_fig1(config))

    # Shape criteria (DESIGN.md §4).
    assert result.superstep_inflation >= 1.4
    bsp_total, shm_total = result.totals_at(max(config.processor_counts))
    assert 2.0 <= bsp_total / shm_total <= 20.0

    # Heavy BSP supersteps scale; GraphCT iterations are constant work.
    heavy = result.bsp_times_paper_scale
    assert (
        heavy[8]["by_iteration"][0] / heavy[128]["by_iteration"][0] > 8
    ), "first superstep must scale near-linearly at paper-scale work"
    per_iter = list(result.graphct_times[128]["by_iteration"].values())
    assert max(per_iter) <= 1.2 * min(per_iter)

    benchmark.extra_info.update(
        bsp_supersteps=result.bsp.num_supersteps,
        graphct_iterations=result.graphct.num_iterations,
        inflation=round(result.superstep_inflation, 2),
        bsp_total_128=round(bsp_total, 5),
        graphct_total_128=round(shm_total, 5),
        paper="13 supersteps vs 6 iterations; 5.40s vs 1.31s",
    )

    with capsys.disabled():
        for model, sweep in (
            ("BSP", result.bsp_times), ("GraphCT", result.graphct_times)
        ):
            iters = sorted(next(iter(sweep.values()))["by_iteration"])
            cols = [
                (
                    f"P={p}",
                    [
                        format_seconds(sweep[p]["by_iteration"][i])
                        for i in iters
                    ],
                )
                for p in config.processor_counts
            ]
            print()
            print(format_series(
                f"Figure 1 ({model}) — time per iteration", iters, *cols
            ))
        print(
            f"\nBSP {result.bsp.num_supersteps} supersteps / GraphCT "
            f"{result.graphct.num_iterations} iterations "
            f"(paper: 13 / 6); totals at 128P "
            f"{format_seconds(bsp_total)} vs {format_seconds(shm_total)} "
            f"(paper: 5.40s vs 1.31s)"
        )
