"""Shared benchmark fixtures.

Benchmarks run at the default experiment scale (RMAT scale 14, edge
factor 16, seed 1 — the 1/1024 miniature of the paper's input).  Set
``REPRO_BENCH_SCALE`` to change it.  Every benchmark measures the *wall
time of this library's implementation* with pytest-benchmark and stashes
the reproduced paper numbers (simulated XMT seconds, ratios, counts) in
``benchmark.extra_info``, printing the paper-layout table to stdout.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os

import pytest

from repro.analysis.workload import ExperimentConfig, build_workload

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "14"))


@pytest.fixture(scope="session")
def config():
    return ExperimentConfig(scale=BENCH_SCALE, edge_factor=16, seed=1)


@pytest.fixture(scope="session")
def workload(config):
    return build_workload(config)


def once(benchmark, fn):
    """Benchmark ``fn`` with a single measured round.

    The heavyweight kernels (triangle counting at scale 14 runs for
    seconds) would otherwise be re-executed dozens of times; their
    variance is dominated by the algorithm, not the timer.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
