"""Shared benchmark fixtures.

Benchmarks run at the default experiment scale (RMAT scale 14, edge
factor 16, seed 1 — the 1/1024 miniature of the paper's input).  Set
``REPRO_BENCH_SCALE`` to change it.  Every benchmark measures the *wall
time of this library's implementation* with pytest-benchmark and stashes
the reproduced paper numbers (simulated XMT seconds, ratios, counts) in
``benchmark.extra_info``, printing the paper-layout table to stdout.

Each benchmark's ``extra_info`` is additionally written as a
schema-versioned ``results/bench/BENCH_<name>.json`` (see ``_emit.py``;
override the directory with ``REPRO_BENCH_OUT``) by the autouse fixture
below, so CI can archive reproduced numbers as artifacts.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os

import pytest

from _emit import _EMITTED, emit_bench
from repro.analysis.workload import ExperimentConfig, build_workload

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "14"))


@pytest.fixture(scope="session")
def config():
    return ExperimentConfig(scale=BENCH_SCALE, edge_factor=16, seed=1)


@pytest.fixture(scope="session")
def workload(config):
    return build_workload(config)


@pytest.fixture(autouse=True)
def _bench_json(request):
    """Emit ``BENCH_<name>.json`` for every benchmark's extra_info."""
    # Instantiate the benchmark fixture *before* the test so its object
    # is still alive (not torn down) when we read extra_info afterwards.
    bm = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if bm is None:
        return
    data = dict(bm.extra_info)
    stats = getattr(getattr(bm, "stats", None), "stats", None)
    if stats is not None:
        data["timing"] = {
            "mean_s": stats.mean,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
        }
    if not data:
        return
    name = request.node.name
    name = name[len("bench_"):] if name.startswith("bench_") else name
    if name in _EMITTED:  # benchmark already emitted a custom payload
        return
    emit_bench(
        name,
        config={"scale": BENCH_SCALE, "edge_factor": 16, "seed": 1},
        data=data,
    )


def once(benchmark, fn):
    """Benchmark ``fn`` with a single measured round.

    The heavyweight kernels (triangle counting at scale 14 runs for
    seconds) would otherwise be re-executed dozens of times; their
    variance is dominated by the algorithm, not the timer.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
