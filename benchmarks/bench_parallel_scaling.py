"""Measured strong scaling of the sharded BSP engine.

The paper's central experiment (Figures 1-4) is strong scaling of BSP
graph kernels from 1 to 128 XMT processors.  Everything else in
``benchmarks/`` reproduces those curves through the *cost model*; this
benchmark produces real measured speedup-vs-workers curves by running
the same dense programs on :class:`~repro.bsp.parallel.ShardedBSPEngine`
at 1, 2, 4, and 8 workers.  Overlay against ``bench_fig3_bfs_scaling``
to compare the measured shape with the paper's Figure 3 shape.

The equivalence suite guarantees every point on the curve computes the
same answer, so the only variable is worker count.  Speedup here is
bounded by the host's cores and by the serial fraction of a superstep
(the parent-side ``compute`` plus the combiner merge at the barrier) —
the measured curve bends exactly where Amdahl says it must, which is
the point of the exercise.
"""

import os
import time

from _emit import emit_bench
from conftest import once

import numpy as np

from repro.analysis.report import format_seconds
from repro.bsp import DenseBSPEngine, ShardedBSPEngine
from repro.bsp_algorithms import (
    DenseBreadthFirstSearch,
    DenseConnectedComponents,
)

WORKER_COUNTS = (1, 2, 4, 8)

PROGRAMS = {
    "cc": lambda: DenseConnectedComponents(),
    "bfs": lambda: DenseBreadthFirstSearch(0),
}


#: Warm-run repetitions for the recorder-overhead A/B (min-of-N damps
#: scheduler noise well below the 2% budget being measured).
OVERHEAD_REPEATS = 9


def _time_run(engine, make_program):
    t0 = time.perf_counter()
    result = engine.run(make_program())
    return result, time.perf_counter() - t0


def _best_time(engine, make_program, repeats=OVERHEAD_REPEATS):
    """Min wall-clock over ``repeats`` warm runs on an already-warm pool."""
    best = float("inf")
    for _ in range(repeats):
        _, elapsed = _time_run(engine, make_program)
        best = min(best, elapsed)
    return best


def bench_parallel_scaling(benchmark, workload, capsys):
    graph = workload.graph

    def run():
        times = {}  # (program, workers) -> seconds
        results = {}
        for name, make_program in PROGRAMS.items():
            dense = DenseBSPEngine(graph)
            results[name, "dense"], times[name, "dense"] = _time_run(
                dense, make_program
            )
            for workers in WORKER_COUNTS:
                with ShardedBSPEngine(
                    graph, num_workers=workers, partition="balanced-edge"
                ) as engine:
                    # Warm the pool so the curve measures superstep
                    # dispatch, not process start-up.
                    engine.run(make_program())
                    results[name, workers], times[name, workers] = _time_run(
                        engine, make_program
                    )
        # Flight-recorder overhead A/B: the same CC workload on the same
        # worker count with the recorder forced on vs. forced off.  The
        # recorder is default-on, so this measures what everyone pays;
        # the acceptance budget is <2% (asserted below at gating scale).
        # Both engines live simultaneously and the timed runs interleave
        # (on, off, on, off, ...), so host-load drift hits both sides
        # equally instead of biasing whichever ran second; min-of-N then
        # discards the scheduling outliers.
        overhead_workers = 4 if (os.cpu_count() or 1) >= 4 else 2
        engines = {
            recorder_on: ShardedBSPEngine(
                graph,
                num_workers=overhead_workers,
                partition="balanced-edge",
                flight_recorder=recorder_on,
            )
            for recorder_on in (True, False)
        }
        recorder_seconds = {True: float("inf"), False: float("inf")}
        try:
            for engine in engines.values():
                engine.run(PROGRAMS["cc"]())  # warm the pools
            for _ in range(OVERHEAD_REPEATS):
                for recorder_on, engine in engines.items():
                    _, elapsed = _time_run(engine, PROGRAMS["cc"])
                    recorder_seconds[recorder_on] = min(
                        recorder_seconds[recorder_on], elapsed
                    )
        finally:
            for engine in engines.values():
                engine.close()
        return results, times, overhead_workers, recorder_seconds

    results, times, overhead_workers, recorder_seconds = once(benchmark, run)
    recorder_overhead_pct = 100.0 * (
        recorder_seconds[True] - recorder_seconds[False]
    ) / recorder_seconds[False]

    # Every point on the curve is the same computation.
    for name in PROGRAMS:
        baseline = results[name, "dense"]
        for workers in WORKER_COUNTS:
            sharded = results[name, workers]
            assert np.array_equal(baseline.values, sharded.values)
            assert baseline.num_supersteps == sharded.num_supersteps
            assert (
                baseline.messages_per_superstep
                == sharded.messages_per_superstep
            )

    speedups = {
        name: {
            workers: times[name, 1] / times[name, workers]
            for workers in WORKER_COUNTS
        }
        for name in PROGRAMS
    }

    # Acceptance bar: >1.7x at 4 workers for CC or BFS — only meaningful
    # on a host that actually has 4 cores to scale onto, and at a scale
    # where superstep work dominates dispatch (small CI graphs measure
    # the pool round-trip, not the kernels).
    cores = os.cpu_count() or 1
    if cores >= 4 and workload.config.scale >= 12:
        best_at_4 = max(speedups[name][4] for name in PROGRAMS)
        assert best_at_4 > 1.7, (
            f"expected >1.7x at 4 workers on a {cores}-core host, "
            f"got {best_at_4:.2f}x"
        )
        # Default-on means the recorder's cost is everyone's cost: the
        # budget is <2% on the measured (min-of-N, warm-pool) CC run.
        # Gated like the speedup bar — small graphs measure dispatch
        # jitter, not the ~1-2us/record the recorder actually adds.
        assert recorder_overhead_pct < 2.0, (
            f"flight recorder overhead {recorder_overhead_pct:.2f}% "
            f"exceeds the 2% budget "
            f"(on={recorder_seconds[True]:.4f}s, "
            f"off={recorder_seconds[False]:.4f}s)"
        )

    info = dict(
        host_cores=cores,
        worker_counts=list(WORKER_COUNTS),
        seconds={
            name: {
                str(w): round(times[name, w], 4)
                for w in ("dense", *WORKER_COUNTS)
            }
            for name in PROGRAMS
        },
        speedup_vs_1_worker={
            name: {str(w): round(s, 2) for w, s in speedups[name].items()}
            for name in PROGRAMS
        },
        recorder_overhead_pct=round(recorder_overhead_pct, 3),
        recorder_on_seconds=round(recorder_seconds[True], 4),
        recorder_off_seconds=round(recorder_seconds[False], 4),
        recorder_overhead_workers=overhead_workers,
        paper="Figure 3 shape: near-linear at apex levels, flat tails",
    )
    benchmark.extra_info.update(info)
    emit_bench(
        "parallel_scaling",
        config={
            "scale": workload.config.scale,
            "edge_factor": workload.config.edge_factor,
            "seed": workload.config.seed,
            "partition": "balanced-edge",
        },
        data=info,
    )

    with capsys.disabled():
        print(
            f"\nmeasured strong scaling (scale {workload.config.scale}, "
            f"{cores} host core(s)):"
        )
        header = "".join(f"{f'{w}w':>10}" for w in WORKER_COUNTS)
        print(f"  {'kernel':<6}{'dense':>10}{header}   speedup@4w")
        for name in PROGRAMS:
            row = "".join(
                f"{format_seconds(times[name, w]):>10}"
                for w in WORKER_COUNTS
            )
            print(
                f"  {name:<6}{format_seconds(times[name, 'dense']):>10}"
                f"{row}   {speedups[name][4]:.2f}x"
            )
        print(
            f"  flight recorder overhead (cc, {overhead_workers}w, "
            f"min of {OVERHEAD_REPEATS}): {recorder_overhead_pct:+.2f}% "
            f"(on {format_seconds(recorder_seconds[True])}, "
            f"off {format_seconds(recorder_seconds[False])}; budget <2%)"
        )
