"""Library micro-benchmarks: wall time of the hot kernels themselves.

Unlike the figure benches (which report *simulated XMT seconds*), these
measure this library's own NumPy implementations — useful for tracking
performance regressions of the reproduction code.
"""

from repro.bsp_algorithms import (
    bsp_breadth_first_search,
    bsp_connected_components,
)
from repro.graph.generators import rmat
from repro.graphct import breadth_first_search, connected_components


def bench_rmat_generation(benchmark, config):
    graph = benchmark(
        rmat, scale=config.scale, edge_factor=16, seed=config.seed
    )
    assert graph.num_vertices == 2 ** config.scale


def bench_graphct_connected_components(benchmark, workload):
    res = benchmark(connected_components, workload.graph)
    assert res.num_components > 0


def bench_graphct_bfs(benchmark, workload):
    res = benchmark(breadth_first_search, workload.graph, workload.bfs_source)
    assert res.vertices_reached > 1


def bench_bsp_connected_components(benchmark, workload):
    res = benchmark(bsp_connected_components, workload.graph)
    assert res.num_components > 0


def bench_bsp_bfs(benchmark, workload):
    res = benchmark(
        bsp_breadth_first_search, workload.graph, workload.bfs_source
    )
    assert res.vertices_reached > 1


def bench_graphct_triangles(benchmark, config):
    from conftest import once

    from repro.graphct import count_triangles

    graph = rmat(scale=min(config.scale, 12), edge_factor=16, seed=1)
    res = once(benchmark, lambda: count_triangles(graph))
    assert res.total_triangles > 0


def bench_bsp_triangles(benchmark, config):
    from conftest import once

    from repro.bsp_algorithms import bsp_count_triangles

    graph = rmat(scale=min(config.scale, 12), edge_factor=16, seed=1)
    res = once(benchmark, lambda: bsp_count_triangles(graph))
    assert res.total_triangles > 0


def bench_graphct_kcore(benchmark, workload):
    from repro.graphct import k_core_decomposition

    res = benchmark(k_core_decomposition, workload.graph)
    assert res.max_core > 1


def bench_graphct_pagerank(benchmark, workload):
    from repro.graphct import pagerank

    res = benchmark(pagerank, workload.graph)
    assert abs(res.ranks.sum() - 1.0) < 1e-9


def bench_betweenness_sampled(benchmark, workload):
    from conftest import once

    from repro.graphct import betweenness_centrality

    res = once(
        benchmark,
        lambda: betweenness_centrality(
            workload.graph, num_sources=64, seed=1
        ),
    )
    assert (res.scores >= 0).all()


def bench_streaming_update(benchmark, config):
    """Single-edge incremental clustering update latency."""
    import numpy as np

    from repro.graph.streaming import StreamingGraph
    from repro.graphct.streaming_clustering import (
        StreamingClusteringCoefficients,
    )

    base = rmat(scale=min(config.scale, 12), edge_factor=16, seed=1)
    tracker = StreamingClusteringCoefficients(
        StreamingGraph.from_csr(base)
    )
    rng = np.random.default_rng(3)
    n = base.num_vertices
    pairs = iter(
        (int(a), int(b))
        for a, b in rng.integers(0, n, (100_000, 2))
        if a != b
    )

    def one_update():
        u, v = next(pairs)
        if not tracker.insert_edge(u, v):
            tracker.delete_edge(u, v)

    benchmark(one_update)
