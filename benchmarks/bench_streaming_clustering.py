"""Streaming clustering coefficients: incremental update vs recompute.

The headline of the paper's ref [12] (Ediger et al., MTAAP 2010): as
edges stream in, updating triangle counts incrementally — one
neighbourhood intersection per update — beats recounting the whole graph
by orders of magnitude.  This bench replays an update batch both ways
and checks the incremental path wins while producing identical counts.
"""

import time

import numpy as np
from conftest import once

from repro.graph import rmat
from repro.graph.streaming import StreamingGraph
from repro.graphct import count_triangles
from repro.graphct.streaming_clustering import (
    StreamingClusteringCoefficients,
)

BATCH = 100


def bench_streaming_vs_recompute(benchmark, capsys):
    base = rmat(scale=11, edge_factor=16, seed=2)
    rng = np.random.default_rng(5)
    n = base.num_vertices
    updates = [
        (int(a), int(b))
        for a, b in rng.integers(0, n, (BATCH, 2))
        if a != b
    ]

    def incremental():
        g = StreamingGraph.from_csr(base)
        cc = StreamingClusteringCoefficients(g)
        t0 = time.perf_counter()
        cc.apply_batch(insertions=updates)
        elapsed = time.perf_counter() - t0
        return cc, elapsed

    cc, incremental_seconds = once(benchmark, incremental)

    # Recompute path: static count on the updated snapshot.
    snapshot = cc.graph.snapshot()
    t0 = time.perf_counter()
    static = count_triangles(snapshot)
    recompute_seconds = time.perf_counter() - t0

    assert cc.total_triangles == static.total_triangles
    assert np.array_equal(cc._triangles, static.per_vertex)
    per_update = incremental_seconds / max(len(updates), 1)
    assert per_update < recompute_seconds, (
        "one incremental update must beat one full recount"
    )

    benchmark.extra_info.update(
        batch=len(updates),
        incremental_seconds=round(incremental_seconds, 4),
        recompute_seconds=round(recompute_seconds, 4),
        speedup_per_update=round(recompute_seconds / per_update, 1),
        triangles=cc.total_triangles,
    )
    with capsys.disabled():
        print(
            f"\nstreaming clustering: {len(updates)} updates in "
            f"{incremental_seconds * 1e3:.1f} ms "
            f"({per_update * 1e6:.0f} us/update) vs full recount "
            f"{recompute_seconds * 1e3:.1f} ms — "
            f"{recompute_seconds / per_update:.0f}x per update"
        )
