"""Ablation: hash vs degree-balanced vertex partitioning on a cluster.

Paper §II argues that Pregel's uniform vertex hashing leaves scale-free
edge (and therefore message) load uneven across machines.  This ablation
measures the imbalance on the benchmark RMAT graph, feeds it into the
cluster cost model, and quantifies how much of the distributed runtime a
degree-aware placement would recover.
"""

from conftest import once

from repro.bsp_algorithms import bsp_connected_components
from repro.cluster import (
    ClusterMachine,
    balanced_edge_partition,
    hash_partition,
    partition_stats,
    simulate_cluster_bsp,
)


def bench_partitioning_ablation(benchmark, workload, capsys):
    graph = workload.graph
    machines = 32

    def run():
        hashed = partition_stats(graph, hash_partition(graph, machines))
        balanced = partition_stats(
            graph, balanced_edge_partition(graph, machines)
        )
        cc = bsp_connected_components(graph)
        return hashed, balanced, cc

    hashed, balanced, cc = once(benchmark, run)

    assert hashed.edge_imbalance > balanced.edge_imbalance
    assert balanced.edge_imbalance < 1.1

    # Price at paper-scale message volume so network time (where the
    # imbalance bites) dominates the per-superstep barrier.
    factor = 1024.0
    scaled_trace = cc.trace.scaled(factor)
    scaled_msgs = [int(m * factor) for m in cc.messages_per_superstep]
    times = {}
    for name, stats in (("hash", hashed), ("balanced", balanced)):
        cluster = ClusterMachine(
            num_machines=machines,
            imbalance=max(stats.edge_imbalance, 1.0),
        )
        times[name] = simulate_cluster_bsp(
            scaled_trace, cluster, messages_per_superstep=scaled_msgs
        ).total_seconds
    assert times["balanced"] < times["hash"]
    assert times["hash"] / times["balanced"] > 1.2

    benchmark.extra_info.update(
        machines=machines,
        edge_imbalance={
            "hash": round(hashed.edge_imbalance, 2),
            "balanced": round(balanced.edge_imbalance, 3),
        },
        cut_fraction=round(hashed.cut_fraction, 3),
        cluster_seconds={k: round(v, 4) for k, v in times.items()},
    )
    with capsys.disabled():
        print(
            f"\npartitioning ablation ({machines} machines): hash edge "
            f"imbalance {hashed.edge_imbalance:.2f}x -> CC "
            f"{times['hash'] * 1e3:.1f} ms | degree-balanced "
            f"{balanced.edge_imbalance:.2f}x -> "
            f"{times['balanced'] * 1e3:.1f} ms"
        )
