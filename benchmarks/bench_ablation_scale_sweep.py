"""Ablation: BSP/GraphCT ratio stability across RMAT scales.

DESIGN.md's extrapolation argument rests on RMAT self-similarity: the
BSP-to-GraphCT ratios should vary smoothly (not wildly) with scale.
This sweep runs Table I at scales 10-13 and records the ratio per
algorithm, also exposing the known scale trends (the CC superstep count
grows with eccentricity; the triangle write blow-up grows with the
wedge/triangle ratio).
"""

from conftest import once

from repro.analysis.experiments import run_fig4, run_table1
from repro.analysis.workload import ExperimentConfig


def bench_scale_sweep(benchmark, capsys):
    scales = [10, 11, 12, 13]

    def run():
        rows = {}
        for scale in scales:
            cfg = ExperimentConfig(scale=scale, edge_factor=16, seed=1)
            t1 = run_table1(cfg)
            f4 = run_fig4(cfg)
            rows[scale] = {
                "ratios": {
                    name: round(row["ratio"], 2)
                    for name, row in t1.rows.items()
                },
                "write_ratio": round(f4.write_ratio, 1),
            }
        return rows

    rows = once(benchmark, run)

    for scale, data in rows.items():
        for name, ratio in data["ratios"].items():
            assert ratio > 1.0, f"scale {scale}, {name}: GraphCT must win"

    # The triangle write blow-up must grow with scale (toward the
    # paper's 181x at scale 24).
    write_ratios = [rows[s]["write_ratio"] for s in scales]
    assert write_ratios[-1] > write_ratios[0]

    benchmark.extra_info["sweep"] = rows
    with capsys.disabled():
        print()
        for scale, data in rows.items():
            print(
                f"scale {scale}: ratios {data['ratios']} "
                f"write_ratio {data['write_ratio']}x"
            )
