"""Community detection: shared-memory vs BSP label propagation.

An extension experiment in the spirit of the paper's three kernels: the
same algorithm family in both programming models on the same graph, with
partition quality (modularity) and superstep/iteration counts compared.
Uses a planted-partition workload (RMAT itself carries no community
structure to recover).
"""

import numpy as np
from conftest import once

from repro.bsp_algorithms import bsp_label_propagation_communities
from repro.graph import from_edge_list
from repro.graphct import label_propagation_communities
from repro.xmt.cost_model import simulate
from repro.xmt.machine import XMTMachine


def planted_partition(blocks=2, size=128, intra=6000, inter=60, seed=1):
    rng = np.random.default_rng(seed)
    chunks = []
    for b in range(blocks):
        lo = b * size
        chunks.append(rng.integers(lo, lo + size, (intra, 2)))
    chunks.append(
        np.column_stack(
            [
                rng.integers(0, blocks * size, inter),
                rng.integers(0, blocks * size, inter),
            ]
        )
    )
    return from_edge_list(np.vstack(chunks), blocks * size)


def bench_community_detection(benchmark, capsys):
    graph = planted_partition()

    def run():
        return (
            label_propagation_communities(graph),
            bsp_label_propagation_communities(graph),
        )

    shm, bsp = once(benchmark, run)

    # Both models must recover the planted structure.  (On many-block
    # workloads synchronous LPA is known to merge adjacent blocks — a
    # genuine artifact of simultaneous stale-label updates, analogous to
    # the paper's CC superstep blow-up — so the comparison workload is
    # the two-block instance both models solve.)
    assert shm.modularity > 0.4
    assert bsp.modularity > 0.4
    assert abs(shm.modularity - bsp.modularity) < 0.2
    # BSP rounds exceed shared-memory sweeps (stale labels), as with CC.
    assert bsp.num_supersteps >= shm.num_iterations

    machine = XMTMachine(num_processors=128)
    t_shm = simulate(shm.trace, machine).total_seconds
    t_bsp = simulate(bsp.trace, machine).total_seconds
    assert t_bsp > t_shm

    benchmark.extra_info.update(
        modularity={"graphct": round(shm.modularity, 3),
                    "bsp": round(bsp.modularity, 3)},
        rounds={"graphct": shm.num_iterations, "bsp": bsp.num_supersteps},
        seconds={"graphct": round(t_shm, 5), "bsp": round(t_bsp, 5)},
    )
    with capsys.disabled():
        print(
            f"\ncommunity detection (planted partition): GraphCT "
            f"Q={shm.modularity:.3f} in {shm.num_iterations} sweeps "
            f"({t_shm * 1e3:.2f} ms @128P) | BSP Q={bsp.modularity:.3f} "
            f"in {bsp.num_supersteps} supersteps ({t_bsp * 1e3:.2f} ms)"
        )
