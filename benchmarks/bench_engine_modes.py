"""Reference vs dense BSP engine on connected components.

Both engines execute the same superstep semantics — the equivalence
suite holds them to bit-identical results — so the only difference this
benchmark measures is interpretation overhead: the reference engine
dispatches a Python ``compute`` per vertex per superstep, while the
dense engine runs whole-superstep NumPy kernels.  The gap is what makes
paper-scale experiments tractable.
"""

import time

from _emit import emit_bench
from conftest import once

import numpy as np

from repro.analysis.report import format_seconds
from repro.bsp import BSPEngine, DenseBSPEngine
from repro.bsp_algorithms import (
    BSPConnectedComponents,
    DenseConnectedComponents,
)


def bench_engine_modes(benchmark, workload, capsys):
    graph = workload.graph

    def run():
        t0 = time.perf_counter()
        ref = BSPEngine(graph).run(BSPConnectedComponents())
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        dense = DenseBSPEngine(graph).run(DenseConnectedComponents())
        t_dense = time.perf_counter() - t0
        return ref, dense, t_ref, t_dense

    ref, dense, t_ref, t_dense = once(benchmark, run)

    # Same computation, not merely the same labels.
    assert np.array_equal(np.asarray(ref.values), dense.values)
    assert ref.num_supersteps == dense.num_supersteps
    assert ref.active_per_superstep == dense.active_per_superstep
    assert ref.messages_per_superstep == dense.messages_per_superstep

    speedup = t_ref / t_dense
    assert speedup >= 10, (
        f"dense engine must be >=10x the reference engine, got {speedup:.1f}x"
    )

    info = dict(
        supersteps=ref.num_supersteps,
        messages=ref.total_messages,
        seconds={"reference": round(t_ref, 4), "dense": round(t_dense, 4)},
        speedup=round(speedup, 1),
    )
    benchmark.extra_info.update(info)
    emit_bench(
        "engine_modes",
        config={
            "algorithm": "cc",
            "scale": workload.config.scale,
            "edge_factor": workload.config.edge_factor,
            "seed": workload.config.seed,
        },
        data=info,
    )
    with capsys.disabled():
        print(
            f"\nengine modes (CC, scale {workload.config.scale}): reference "
            f"{format_seconds(t_ref)} -> dense {format_seconds(t_dense)} "
            f"({speedup:.0f}x, {ref.num_supersteps} supersteps, "
            f"{ref.total_messages:,} msgs)"
        )
