"""Tests for ASCII report rendering and the CLI entry point."""

import re

import pytest

from repro.analysis.report import (
    format_scaling_table,
    format_seconds,
    format_series,
    format_table1,
)
from repro.cli import main


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (2.5, "2.50s"),
            (0.0456, "45.60ms"),
            (1.5e-5, "15.0us"),
            (3e-9, "3ns"),
        ],
    )
    def test_scales(self, value, expected):
        assert format_seconds(value) == expected


class TestFormatSeries:
    def test_aligned_columns(self):
        out = format_series(
            "T", [0, 1], ("a", [10, 20]), ("b", [1])
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        assert lines[-1].endswith("-")  # short column padded

    def test_empty_labels(self):
        out = format_series("T", [], ("a", []))
        assert "T" in out


class TestFormatScalingTable:
    def test_contains_all_cells(self):
        out = format_scaling_table(
            "S", [8, 128], {"m": {8: 1.0, 128: 0.1}}
        )
        assert "P=8" in out and "P=128" in out
        assert "1.00s" in out and "100.00ms" in out


class TestFormatTable1:
    def test_rows_and_paper_columns(self):
        rows = {"bfs": {"bsp": 3.0, "graphct": 0.3, "ratio": 10.0}}
        out = format_table1(rows, paper_rows=rows)
        assert "10.0:1" in out
        assert out.count("3.00s") == 2  # measured + paper columns

    def test_without_paper(self):
        rows = {"bfs": {"bsp": 3.0, "graphct": 0.3, "ratio": 10.0}}
        out = format_table1(rows)
        assert "Paper" not in out


class TestCLI:
    """End-to-end CLI runs at a tiny scale (kept fast)."""

    ARGS = ["--scale", "9", "--seed", "1"]

    @pytest.mark.parametrize("flag", ["--version", "version"])
    def test_version(self, capsys, flag):
        assert main([flag]) == 0
        out = capsys.readouterr().out.strip()
        assert re.fullmatch(r"repro \d+\.\d+(\.\d+)?([a-z0-9.+-]*)?", out)

    def test_table1(self, capsys):
        assert main(["table1", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "connected components" in out
        assert "Paper ratio" in out

    def test_fig1(self, capsys):
        assert main(["fig1", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 (BSP)" in out
        assert "supersteps" in out

    def test_fig2(self, capsys):
        assert main(["fig2", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "frontier (GraphCT)" in out

    def test_fig3_paper_scale(self, capsys):
        assert main(["fig3", "--paper-scale", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "paper-scale work" in out
        assert "level" in out

    def test_fig4(self, capsys):
        assert main(["fig4", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "triangle counting" in out
        assert "write ratio" in out

    def test_anecdotes(self, capsys):
        assert main(["anecdotes", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "trinity_bfs_rmat" in out

    def test_all(self, capsys):
        assert main(["all", *self.ARGS]) == 0
        out = capsys.readouterr().out
        for token in ("Figure 1", "Figure 2", "Figure 3", "Figure 4",
                      "Table I", "Giraph"):
            assert token in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["table1", *self.ARGS, "--json", str(path)]) == 0
        import json

        data = json.loads(path.read_text())
        assert set(data) == {
            "anecdotes", "config", "fig1", "fig2", "fig3", "fig4", "table1"
        }
        assert data["config"]["scale"] == 9
        assert data["table1"]["rows"]["triangle_counting"]["ratio"] > 1
        assert len(data["fig2"]["frontier_sizes"]) >= 3

    def test_graph500_subcommand(self, capsys):
        assert main(["graph500", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "harmonic-mean" in out
        assert "validated searches" in out

    def test_json_to_stdout(self, capsys):
        assert main(["table1", *self.ARGS, "--json", "-"]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert "fig1" in data
