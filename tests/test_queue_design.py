"""Tests for the message-queue design re-accounting (§VII)."""

import pytest

from repro.bsp.instrumentation import QUEUE_DESIGNS, with_queue_design
from repro.bsp_algorithms import bsp_connected_components
from repro.graph import rmat
from repro.xmt.calibration import DEFAULT_COSTS
from repro.xmt.cost_model import simulate
from repro.xmt.machine import XMTMachine
from repro.xmt.trace import RegionTrace, WorkTrace


@pytest.fixture(scope="module")
def bsp_trace():
    return bsp_connected_components(
        rmat(scale=11, edge_factor=16, seed=1)
    ).trace


class TestRewriting:
    def test_per_vertex_is_identity(self, bsp_trace):
        out = with_queue_design(bsp_trace, "per-vertex", DEFAULT_COSTS)
        assert [r.atomic_max_site for r in out] == [
            r.atomic_max_site for r in bsp_trace
        ]

    def test_single_tail_hotspot_equals_messages(self, bsp_trace):
        out = with_queue_design(bsp_trace, "single-tail", DEFAULT_COSTS)
        for before, after in zip(bsp_trace, out):
            if before.kind != "superstep" or before.atomics <= 0:
                continue
            sent = (
                before.writes - before.parallel_items
            ) / DEFAULT_COSTS.message_enqueue_writes
            if sent > 0:
                assert after.atomic_max_site == pytest.approx(sent)

    def test_chunked_divides_by_chunk(self, bsp_trace):
        single = with_queue_design(bsp_trace, "single-tail", DEFAULT_COSTS)
        chunked = with_queue_design(
            bsp_trace, "chunked", DEFAULT_COSTS, chunk=64
        )
        for s, c in zip(single, chunked):
            if s.atomic_max_site > 0 and s.kind == "superstep":
                # ceil(sent/64): at least 32x smaller, floored at one
                # reservation for near-empty supersteps.
                assert c.atomic_max_site <= max(s.atomic_max_site / 32, 1)

    def test_non_superstep_regions_untouched(self):
        t = WorkTrace()
        t.add(RegionTrace(name="loop", parallel_items=10, writes=100,
                          atomics=5, atomic_max_site=2))
        out = with_queue_design(t, "single-tail", DEFAULT_COSTS)
        assert out.regions[0].atomic_max_site == 2

    def test_unknown_design_rejected(self, bsp_trace):
        with pytest.raises(ValueError, match="design"):
            with_queue_design(bsp_trace, "lockfree", DEFAULT_COSTS)

    def test_zero_enqueue_writes_rejected(self, bsp_trace):
        # With message_enqueue_writes == 0 the traced writes cannot
        # encode message counts, so the rewrite would silently no-op.
        import dataclasses

        free_costs = dataclasses.replace(
            DEFAULT_COSTS, message_enqueue_writes=0.0
        )
        with pytest.raises(ValueError, match="message_enqueue_writes"):
            with_queue_design(bsp_trace, "single-tail", free_costs)

    def test_label_annotated(self, bsp_trace):
        out = with_queue_design(bsp_trace, "chunked", DEFAULT_COSTS)
        assert "[chunked]" in out.label


class TestScalingConsequences:
    """§VII quantified: the naive queue inhibits scalability."""

    @pytest.mark.parametrize("design", QUEUE_DESIGNS)
    def test_designs_price_consistently(self, bsp_trace, design):
        t = with_queue_design(bsp_trace, design, DEFAULT_COSTS)
        assert simulate(t, XMTMachine()).total_seconds > 0

    def test_single_tail_flattens_scaling(self, bsp_trace):
        scaled = {
            d: with_queue_design(bsp_trace, d, DEFAULT_COSTS).scaled(1024)
            for d in ("single-tail", "per-vertex")
        }
        speedup = {}
        for d, t in scaled.items():
            t8 = simulate(t, XMTMachine(num_processors=8)).total_seconds
            t128 = simulate(t, XMTMachine(num_processors=128)).total_seconds
            speedup[d] = t8 / t128
        assert speedup["single-tail"] < 2.5
        assert speedup["per-vertex"] > 8

    def test_single_tail_slower_at_full_machine(self, bsp_trace):
        m = XMTMachine(num_processors=128)
        single = simulate(
            with_queue_design(bsp_trace, "single-tail", DEFAULT_COSTS)
            .scaled(1024),
            m,
        ).total_seconds
        per_vertex = simulate(
            with_queue_design(bsp_trace, "per-vertex", DEFAULT_COSTS)
            .scaled(1024),
            m,
        ).total_seconds
        assert single > 3 * per_vertex
