"""Tests for the auxiliary GraphCT kernels: k-core, PageRank, SSSP,
betweenness, and the workflow framework."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edge_list, path_graph, ring_graph, star_graph
from repro.graph.properties import peripheral_vertex
from repro.graphct import (
    GraphCT,
    betweenness_centrality,
    breadth_first_search,
    k_core_decomposition,
    pagerank,
    sssp,
)


class TestKCore:
    def test_matches_networkx(self, small_rmat, small_rmat_nx):
        res = k_core_decomposition(small_rmat)
        oracle = nx.core_number(small_rmat_nx)
        assert res.core_numbers.tolist() == [
            oracle[v] for v in range(small_rmat.num_vertices)
        ]

    def test_ring_is_2core(self):
        res = k_core_decomposition(ring_graph(10))
        assert np.all(res.core_numbers == 2)
        assert res.max_core == 2

    def test_star_is_1core(self):
        res = k_core_decomposition(star_graph(5))
        assert np.all(res.core_numbers == 1)

    def test_isolated_vertices_are_0core(self):
        g = from_edge_list([(0, 1)], num_vertices=4)
        res = k_core_decomposition(g)
        assert res.core_numbers[2] == 0 and res.core_numbers[3] == 0

    def test_core_members(self):
        g = from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3)])
        res = k_core_decomposition(g)
        assert res.core_members(2).tolist() == [0, 1, 2]

    def test_directed_rejected(self):
        with pytest.raises(ValueError, match="undirected"):
            k_core_decomposition(from_edge_list([(0, 1)], directed=True))


class TestPageRank:
    def test_matches_networkx(self, small_rmat, small_rmat_nx):
        res = pagerank(small_rmat, tolerance=1e-12, max_iterations=200)
        oracle = nx.pagerank(small_rmat_nx, alpha=0.85, tol=1e-13,
                             max_iter=500)
        for v in range(small_rmat.num_vertices):
            assert res.ranks[v] == pytest.approx(oracle[v], abs=1e-8)

    def test_ranks_sum_to_one(self, small_rmat):
        res = pagerank(small_rmat)
        assert res.ranks.sum() == pytest.approx(1.0)

    def test_converged_flag(self):
        res = pagerank(ring_graph(10), tolerance=1e-10)
        assert res.converged
        capped = pagerank(star_graph(10), max_iterations=1)
        assert not capped.converged
        assert capped.num_iterations == 1

    def test_residuals_decrease(self, small_rmat):
        res = pagerank(small_rmat)
        assert res.residuals[-1] < res.residuals[0]

    def test_symmetric_graph_uniform(self):
        res = pagerank(ring_graph(8), tolerance=1e-14)
        assert np.allclose(res.ranks, 1 / 8)

    def test_hub_outranks_leaves(self):
        res = pagerank(star_graph(10))
        assert res.ranks[0] > res.ranks[1]

    @pytest.mark.parametrize(
        "kwargs", [{"damping": 0.0}, {"damping": 1.0}, {"tolerance": 0.0},
                   {"max_iterations": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            pagerank(ring_graph(4), **kwargs)

    def test_empty_graph(self):
        res = pagerank(from_edge_list([], num_vertices=0))
        assert res.converged and res.ranks.size == 0


class TestSSSP:
    def test_unweighted_equals_bfs(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        d_sssp = sssp(small_rmat, src).distances
        d_bfs = breadth_first_search(small_rmat, src).distances
        reached = d_bfs >= 0
        assert np.array_equal(d_sssp[reached], d_bfs[reached].astype(float))
        assert np.all(np.isinf(d_sssp[~reached]))

    def test_weighted_matches_networkx(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]
        weights = [1.0, 2.0, 5.0, 1.0, 9.0]
        g = from_edge_list(edges, weights=weights)
        gx = nx.Graph()
        for (u, v), w in zip(edges, weights):
            gx.add_edge(u, v, weight=w)
        res = sssp(g, 0)
        oracle = nx.single_source_dijkstra_path_length(gx, 0)
        for v, d in oracle.items():
            assert res.distances[v] == pytest.approx(d)

    def test_weighted_shortcut_found(self):
        # 0-1-2 with weights 1+1 beats direct 0-2 with weight 10.
        g = from_edge_list([(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 10.0])
        res = sssp(g, 0)
        assert res.distances[2] == pytest.approx(2.0)

    def test_negative_weight_rejected(self):
        g = from_edge_list([(0, 1)], weights=[-1.0])
        with pytest.raises(ValueError, match="non-negative"):
            sssp(g, 0)

    def test_source_out_of_range(self):
        with pytest.raises(IndexError):
            sssp(ring_graph(4), 7)

    def test_active_counts_recorded(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        res = sssp(small_rmat, src)
        assert res.active_per_round[0] == 1
        assert len(res.active_per_round) == res.num_rounds


class TestBetweenness:
    def test_path_center_is_max(self):
        res = betweenness_centrality(path_graph(5))
        assert np.argmax(res.scores) == 2
        assert res.exact

    def test_matches_networkx(self):
        g = from_edge_list(
            [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (3, 4)]
        )
        res = betweenness_centrality(g)
        oracle = nx.betweenness_centrality(
            nx.Graph(list(g.edges())), normalized=False
        )
        # Brandes accumulates each (s, t) pair from both endpoints.
        for v in range(g.num_vertices):
            assert res.scores[v] == pytest.approx(2 * oracle[v])

    def test_star_hub_dominates(self):
        res = betweenness_centrality(star_graph(6))
        assert res.scores[0] > 0
        assert np.all(res.scores[1:] == 0)

    def test_sampled_estimates_exact(self, small_rmat):
        exact = betweenness_centrality(small_rmat)
        approx = betweenness_centrality(small_rmat, num_sources=256, seed=7)
        assert not approx.exact
        # Top exact vertex should rank highly under sampling.
        top = int(np.argmax(exact.scores))
        rank = int((approx.scores >= approx.scores[top]).sum())
        assert rank <= max(20, small_rmat.num_vertices // 50)

    def test_num_sources_validated(self):
        with pytest.raises(ValueError):
            betweenness_centrality(ring_graph(4), num_sources=0)
        with pytest.raises(ValueError):
            betweenness_centrality(ring_graph(4), num_sources=5)


class TestGraphCTWorkflow:
    def test_kernel_dispatch_and_cache(self, small_rmat):
        wf = GraphCT(small_rmat)
        first = wf.connected_components()
        second = wf.run("connected_components")
        assert first is second  # cached

    def test_unknown_kernel(self, small_rmat):
        with pytest.raises(ValueError, match="unknown kernel"):
            GraphCT(small_rmat).run("community_detection")

    def test_requires_csr(self):
        with pytest.raises(TypeError):
            GraphCT([(0, 1)])

    def test_clear_cache(self, small_rmat):
        wf = GraphCT(small_rmat)
        a = wf.connected_components()
        wf.clear_cache()
        assert wf.connected_components() is not a

    def test_subgraph_workflow(self, small_rmat):
        wf = GraphCT(small_rmat)
        sub = wf.subgraph(range(100))
        assert isinstance(sub, GraphCT)
        assert sub.graph.num_vertices == 100

    def test_utilities(self, small_rmat):
        wf = GraphCT(small_rmat)
        assert wf.degree_statistics().max_degree > 0
        v = wf.giant_component_vertex()
        assert 0 <= v < small_rmat.num_vertices

    def test_from_file_roundtrip(self, small_rmat, tmp_path):
        from repro.graph import save_graph

        path = tmp_path / "g.npz"
        save_graph(small_rmat, path)
        wf = GraphCT.from_file(path)
        assert wf.graph.num_edges == small_rmat.num_edges

    def test_bad_attribute(self, small_rmat):
        with pytest.raises(AttributeError):
            GraphCT(small_rmat).not_a_kernel
