"""Tests for networkx interoperability."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edge_list, rmat
from repro.graph.interop import from_networkx, to_networkx


class TestToNetworkx:
    def test_undirected(self):
        g = from_edge_list([(0, 1), (1, 2)], num_vertices=4)
        nxg = to_networkx(g)
        assert not nxg.is_directed()
        assert nxg.number_of_nodes() == 4  # isolated vertex kept
        assert set(nxg.edges()) == {(0, 1), (1, 2)}

    def test_directed(self):
        g = from_edge_list([(0, 1), (1, 0), (1, 2)], directed=True)
        nxg = to_networkx(g)
        assert nxg.is_directed()
        assert set(nxg.edges()) == {(0, 1), (1, 0), (1, 2)}

    def test_weights_transfer(self):
        g = from_edge_list([(0, 1)], weights=[2.5])
        nxg = to_networkx(g)
        assert nxg[0][1]["weight"] == 2.5

    def test_rmat_round_trip(self):
        g = rmat(scale=8, edge_factor=8, seed=1)
        back = from_networkx(to_networkx(g))
        assert np.array_equal(g.row_ptr, back.row_ptr)
        assert np.array_equal(g.col_idx, back.col_idx)


class TestFromNetworkx:
    def test_basic(self):
        nxg = nx.Graph([(0, 1), (1, 2)])
        g = from_networkx(nxg)
        assert g.num_vertices == 3
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_directed(self):
        nxg = nx.DiGraph([(0, 1)])
        g = from_networkx(nxg)
        assert g.directed
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_weighted(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 1, weight=4.0)
        g = from_networkx(nxg)
        assert g.is_weighted
        assert g.edge_weights(0).tolist() == [4.0]

    def test_partial_weights_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 1, weight=4.0)
        nxg.add_edge(1, 2)
        g = from_networkx(nxg)
        assert not g.is_weighted

    def test_empty(self):
        g = from_networkx(nx.Graph())
        assert g.num_vertices == 0

    def test_noninteger_labels_rejected(self):
        nxg = nx.Graph([("a", "b")])
        with pytest.raises(ValueError, match="integer"):
            from_networkx(nxg)

    def test_sparse_labels_rejected(self):
        nxg = nx.Graph([(0, 10)])
        with pytest.raises(ValueError, match="integer"):
            from_networkx(nxg)

    def test_isolated_nodes_kept(self):
        nxg = nx.Graph()
        nxg.add_nodes_from(range(5))
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_kernel_agreement_via_interop(self):
        """End-to-end: import from networkx, run a kernel, compare."""
        from repro.graphct import connected_components

        nxg = nx.erdos_renyi_graph(60, 0.05, seed=4)
        g = from_networkx(nxg)
        ours = connected_components(g).num_components
        assert ours == nx.number_connected_components(nxg)
