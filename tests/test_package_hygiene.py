"""Package hygiene: every module imports, every __all__ name resolves,
the README quickstart actually runs, docstrings exist on public API."""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__: {name}"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    """Every name a module exports must carry a docstring."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if callable(obj) and getattr(obj, "__module__", "").startswith(
            "repro"
        ):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def _extract_python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.S)


def test_readme_quickstart_runs():
    readme = Path(repro.__file__).parents[2] / "README.md"
    blocks = _extract_python_blocks(readme.read_text())
    assert blocks, "README must contain python examples"
    namespace: dict = {}
    for block in blocks:
        # Shrink the quickstart graph so the doc test stays fast.
        block = block.replace("scale=14", "scale=10")
        exec(compile(block, "<README>", "exec"), namespace)
    assert "graph" in namespace


def test_top_level_version():
    assert re.match(r"\d+\.\d+\.\d+", repro.__version__)


def test_module_docstring_quickstart_runs():
    lines = repro.__doc__.splitlines()
    start = lines.index("Quick start::") + 1
    code_lines = []
    for line in lines[start:]:
        if line.startswith("    "):
            code_lines.append(line[4:])
        elif line.strip() == "":
            code_lines.append("")
        else:
            break
    code = "\n".join(code_lines).replace("scale=14", "scale=10")
    assert "rmat" in code
    exec(compile(code, "<repro.__doc__>", "exec"), {})
