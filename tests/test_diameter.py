"""Tests for diameter estimation."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_list, path_graph, ring_graph, rmat, star_graph
from repro.graphct.diameter import estimate_diameter


class TestExact:
    def test_path(self):
        res = estimate_diameter(path_graph(7), exact=True)
        assert res.diameter == 6
        assert res.exact
        assert set(res.endpoints) == {0, 6}

    def test_ring(self):
        assert estimate_diameter(ring_graph(10), exact=True).diameter == 5

    def test_star(self):
        assert estimate_diameter(star_graph(5), exact=True).diameter == 2

    def test_matches_networkx(self):
        g = rmat(scale=7, edge_factor=8, seed=3)
        from repro.graph.subgraph import largest_component_subgraph

        giant, _ = largest_component_subgraph(g)
        res = estimate_diameter(giant, exact=True)
        nxg = nx.Graph(list(giant.edges()))
        nxg.add_nodes_from(range(giant.num_vertices))
        assert res.diameter == nx.diameter(nxg)


class TestDoubleSweep:
    def test_lower_bound_never_exceeds_exact(self):
        g = rmat(scale=8, edge_factor=8, seed=5)
        approx = estimate_diameter(g)
        # Exact within the component swept from the same start.
        exact = estimate_diameter(g, exact=True)
        assert approx.diameter <= exact.diameter
        assert not approx.exact

    def test_exact_on_paths(self):
        """Double sweep is exact on trees."""
        res = estimate_diameter(path_graph(31))
        assert res.diameter == 30

    def test_small_world_diameter_is_small(self):
        """The paper's premise: small-world graphs have tiny diameters."""
        g = rmat(scale=12, edge_factor=16, seed=1)
        res = estimate_diameter(g)
        assert res.diameter <= 12

    def test_endpoints_realize_distance(self):
        g = rmat(scale=8, edge_factor=8, seed=2)
        res = estimate_diameter(g)
        from repro.graphct import breadth_first_search

        check = breadth_first_search(g, res.endpoints[0])
        assert check.distances[res.endpoints[1]] == res.diameter

    def test_sweep_budget_respected(self):
        g = rmat(scale=9, edge_factor=8, seed=1)
        res = estimate_diameter(g, max_sweeps=2)
        assert res.num_sweeps <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_diameter(from_edge_list([], num_vertices=0))
        with pytest.raises(ValueError):
            estimate_diameter(ring_graph(4), max_sweeps=1)

    def test_trace_accumulates_bfs_regions(self):
        res = estimate_diameter(ring_graph(16))
        assert len(res.trace) > 0

    @given(st.integers(min_value=3, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_ring_property(self, n):
        assert estimate_diameter(ring_graph(n)).diameter == n // 2
