"""Tests for the runtime telemetry subsystem.

Covers the core span/counter recorder (with a deterministic fake
clock), the Chrome-trace and report exports, the disabled-mode no-op
guarantees, per-worker attribution on the sharded engine, the
measured-vs-modeled correlation, and the equivalence guard: telemetry
must never perturb results, histories, or modeled work traces.
"""

import json

import numpy as np
import pytest

from repro.bsp import BSPEngine, DenseBSPEngine, ShardedBSPEngine
from repro.bsp_algorithms import (
    BSPConnectedComponents,
    DenseConnectedComponents,
)
from repro.bsp_algorithms.connected_components import (
    bsp_connected_components,
)
from repro.bsp_algorithms.triangles import bsp_count_triangles
from repro.graph import rmat
from repro.graphct.framework import GraphCT
from repro.telemetry.compare import (
    correlate,
    format_measured_vs_modeled,
    measured_vs_modeled,
)
from repro.telemetry.core import (
    MAIN_TRACK,
    NULL_TELEMETRY,
    Span,
    Telemetry,
    peak_rss_bytes,
    tracemalloc_peak_bytes,
    worker_track,
)
from repro.telemetry.export import (
    chrome_trace,
    memory_summary,
    telemetry_report,
)
from repro.xmt.machine import XMTMachine


class FakeClock:
    """Deterministic nanosecond clock: advances 1000 ns per reading."""

    def __init__(self):
        self.t = 0

    def __call__(self):
        self.t += 1000
        return self.t


@pytest.fixture
def graph():
    return rmat(scale=8, edge_factor=8, seed=3)


# ---------------------------------------------------------------------
# Core recorder
# ---------------------------------------------------------------------
class TestCore:
    def test_span_nesting_and_ordering(self):
        tel = Telemetry("t", clock=FakeClock())
        with tel.span("outer", category="phase"):
            with tel.span("inner", superstep=2):
                pass
        # Completion order: inner closes first.
        assert [s.name for s in tel.spans] == ["inner", "outer"]
        inner, outer = tel.spans
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert inner.superstep == 2 and outer.superstep == -1
        assert outer.category == "phase"

    def test_add_span_and_queries(self):
        tel = Telemetry("t", clock=FakeClock())
        tel.add_span("superstep", 100, 400, superstep=0, active=7)
        tel.add_span("superstep", 500, 600, superstep=1)
        tel.add_span("scan", 100, 200, track=worker_track(0))
        assert len(tel.spans_named("superstep")) == 2
        assert tel.spans_named("scan", track=worker_track(0))[0].args == {}
        assert tel.total_seconds("superstep") == pytest.approx(400 / 1e9)
        assert tel.tracks() == [MAIN_TRACK, worker_track(0)]
        summary = tel.span_summary()
        assert summary["superstep"]["count"] == 2
        assert summary["superstep"]["max_seconds"] == pytest.approx(
            300 / 1e9
        )

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError, match="end"):
            Span("bad", 100, 50)

    def test_counters_record_track_and_superstep(self):
        tel = Telemetry("t", clock=FakeClock())
        tel.counter("messages_sent", 42, superstep=3)
        tel.counter("worker_busy_ns", 7, track=worker_track(1), t_ns=123)
        (c1, c2) = tel.counters
        assert (c1.name, c1.value, c1.superstep) == ("messages_sent", 42, 3)
        assert (c2.track, c2.t_ns) == (worker_track(1), 123)


# ---------------------------------------------------------------------
# Disabled mode
# ---------------------------------------------------------------------
class TestDisabled:
    def test_null_telemetry_is_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.now() == 0
        # The disabled span path allocates nothing: one shared no-op.
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")
        with NULL_TELEMETRY.span("x", superstep=1):
            pass
        NULL_TELEMETRY.add_span("y", 0, 1)
        NULL_TELEMETRY.counter("z", 1.0)
        assert NULL_TELEMETRY.spans == ()
        assert NULL_TELEMETRY.counters == ()
        assert NULL_TELEMETRY.span_summary() == {}

    def test_engines_default_to_null(self, graph):
        assert BSPEngine(graph).telemetry is NULL_TELEMETRY
        assert DenseBSPEngine(graph).telemetry is NULL_TELEMETRY
        assert GraphCT(graph).telemetry is NULL_TELEMETRY


# ---------------------------------------------------------------------
# Chrome trace / report export
# ---------------------------------------------------------------------
class TestExport:
    def _loaded(self, tel):
        # Round-trip through the JSON codec, as Perfetto would read it.
        return json.loads(json.dumps(chrome_trace(tel)))

    def test_chrome_trace_round_trip(self):
        tel = Telemetry("unit", clock=FakeClock())
        with tel.span("superstep", category="superstep", superstep=0):
            pass
        tel.add_span("scatter", 5000, 6000, track=worker_track(0))
        tel.counter("active_vertices", 9, superstep=0)
        tel.counter("worker_busy_ns", 3, track=worker_track(0))
        doc = self._loaded(tel)
        events = doc["traceEvents"]

        meta = [e for e in events if e["ph"] == "M"]
        names = {
            e["tid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert names[MAIN_TRACK] == "engine"
        assert names[worker_track(0)] == "worker 0"

        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"superstep", "scatter"}
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0

        cs = {e["name"] for e in events if e["ph"] == "C"}
        assert cs == {"active_vertices", "worker_busy_ns[w0]"}

    def test_report_is_schema_versioned(self):
        tel = Telemetry("unit", clock=FakeClock())
        with tel.span("superstep", superstep=0, active=4):
            pass
        report = json.loads(json.dumps(telemetry_report(tel)))
        assert report["format_version"] == 1
        assert report["label"] == "unit"
        (span,) = report["spans"]
        assert span["args"] == {"active": 4}
        assert span["duration_ns"] > 0


# ---------------------------------------------------------------------
# Engine instrumentation
# ---------------------------------------------------------------------
def _cc_run(graph, engine_cls, telemetry=None, **kwargs):
    engine = engine_cls(graph, telemetry=telemetry, **kwargs)
    try:
        program = (
            BSPConnectedComponents()
            if engine_cls is BSPEngine
            else DenseConnectedComponents()
        )
        return engine.run(program)
    finally:
        if hasattr(engine, "close"):
            engine.close()


def _trace_rows(trace):
    return [
        (
            r.name,
            r.kind,
            r.iteration,
            r.parallel_items,
            r.reads,
            r.writes,
            r.atomics,
            r.atomic_max_site,
        )
        for r in trace
    ]


class TestEngineInstrumentation:
    @pytest.mark.parametrize("engine_cls", [BSPEngine, DenseBSPEngine])
    def test_superstep_spans_match_result(self, graph, engine_cls):
        tel = Telemetry("cc")
        result = _cc_run(graph, engine_cls, telemetry=tel)
        steps = tel.spans_named("superstep", track=MAIN_TRACK)
        assert [s.superstep for s in steps] == list(
            range(result.num_supersteps)
        )
        assert [s.args["active"] for s in steps] == (
            result.active_per_superstep
        )
        assert [s.args["sent"] for s in steps] == (
            result.messages_per_superstep
        )
        # Phase spans nest within their superstep span.
        for phase in ("compute",):
            for ph in tel.spans_named(phase, track=MAIN_TRACK):
                step = steps[ph.superstep]
                assert step.contains(ph)

    def test_dense_records_phases_and_counters(self, graph):
        tel = Telemetry("cc")
        result = _cc_run(graph, DenseBSPEngine, telemetry=tel)
        for phase in ("gather", "compute", "scatter"):
            assert len(tel.spans_named(phase)) >= result.num_supersteps - 1
        active = [
            c.value for c in tel.counters if c.name == "active_vertices"
        ]
        assert active == result.active_per_superstep

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_per_worker_attribution(self, graph, workers):
        tel = Telemetry("cc-sharded")
        result = _cc_run(
            graph, ShardedBSPEngine, telemetry=tel, num_workers=workers
        )
        assert result.num_supersteps > 1
        expected = {MAIN_TRACK} | {worker_track(w) for w in range(workers)}
        assert set(tel.tracks()) == expected
        for w in range(workers):
            for phase in ("scatter", "gather"):
                spans = tel.spans_named(phase, track=worker_track(w))
                assert spans, f"no {phase} spans for worker {w}"
                assert all(s.args["worker"] == w for s in spans)
        # Barrier spans and busy/wait samples on the main track.
        assert tel.spans_named("barrier", track=MAIN_TRACK)
        busy = [c for c in tel.counters if c.name == "worker_busy_ns"]
        assert {c.track for c in busy} == {
            worker_track(w) for w in range(workers)
        }
        assert [c.name for c in tel.counters].count("worker_wait_ns") == len(
            busy
        )

    def test_equivalence_guard_dense(self, graph):
        plain = _cc_run(graph, DenseBSPEngine)
        tel = Telemetry("cc")
        instrumented = _cc_run(graph, DenseBSPEngine, telemetry=tel)
        assert np.array_equal(plain.values, instrumented.values)
        assert plain.num_supersteps == instrumented.num_supersteps
        assert (
            plain.active_per_superstep == instrumented.active_per_superstep
        )
        assert (
            plain.messages_per_superstep
            == instrumented.messages_per_superstep
        )
        assert _trace_rows(plain.trace) == _trace_rows(instrumented.trace)

    def test_equivalence_guard_sharded(self, graph):
        plain = _cc_run(graph, ShardedBSPEngine, num_workers=2)
        instrumented = _cc_run(
            graph, ShardedBSPEngine, telemetry=Telemetry(), num_workers=2
        )
        assert np.array_equal(plain.values, instrumented.values)
        assert _trace_rows(plain.trace) == _trace_rows(instrumented.trace)

    def test_wrapper_passes_telemetry(self, graph):
        tel = Telemetry("cc")
        res = bsp_connected_components(graph, telemetry=tel)
        assert len(tel.spans_named("superstep")) == res.num_supersteps

    def test_graphct_kernel_span_on_cache_miss_only(self, graph):
        tel = Telemetry("wf")
        wf = GraphCT(graph, telemetry=tel)
        wf.connected_components()
        spans = tel.spans_named("graphct/connected_components")
        assert len(spans) == 1
        wf.connected_components()  # cache hit: no work, no span
        assert len(tel.spans_named("graphct/connected_components")) == 1


class TestTriangleSharding:
    def test_sharded_scan_bit_identical(self, graph):
        serial = bsp_count_triangles(graph)
        tel = Telemetry("tri")
        sharded = bsp_count_triangles(graph, num_workers=2, telemetry=tel)
        assert serial.total_triangles == sharded.total_triangles
        assert np.array_equal(serial.per_vertex, sharded.per_vertex)
        assert (
            serial.messages_per_superstep == sharded.messages_per_superstep
        )
        assert _trace_rows(serial.trace) == _trace_rows(sharded.trace)
        # One superstep span per superstep, worker scan spans present.
        assert len(tel.spans_named("superstep")) == serial.num_supersteps
        scans = [s for s in tel.spans if s.name == "scan"]
        assert {s.track for s in scans} == {worker_track(0), worker_track(1)}


# ---------------------------------------------------------------------
# Sharded engine context manager / close
# ---------------------------------------------------------------------
class TestShardedLifecycle:
    def test_context_manager_closes(self, graph):
        with ShardedBSPEngine(graph, num_workers=2) as engine:
            result = engine.run(DenseConnectedComponents())
            assert result.num_supersteps > 1
        assert engine._closed

    def test_close_is_idempotent(self, graph):
        engine = ShardedBSPEngine(graph, num_workers=2)
        engine.close()
        engine.close()  # second close must be a no-op, not an error
        assert engine._closed


# ---------------------------------------------------------------------
# Memory footprint sampling
# ---------------------------------------------------------------------
class TestMemorySampling:
    def test_peak_rss_reads_positive(self):
        rss = peak_rss_bytes()
        assert rss is not None and rss > 0

    def test_tracemalloc_requires_tracing(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        assert tracemalloc_peak_bytes() is None
        tracemalloc.start()
        try:
            blob = bytearray(1 << 20)
            peak = tracemalloc_peak_bytes(reset=True)
            assert peak is not None and peak >= len(blob)
            del blob
            # Re-arm after freeing: the next interval no longer
            # includes the old megabyte peak.
            tracemalloc_peak_bytes(reset=True)
            assert tracemalloc_peak_bytes() < 1 << 20
        finally:
            tracemalloc.stop()

    def test_sample_memory_records_counters(self):
        tel = Telemetry("mem")
        tel.sample_memory(superstep=3)
        (c,) = [c for c in tel.counters if c.name == "peak_rss_bytes"]
        assert c.value > 0 and c.superstep == 3 and c.track == MAIN_TRACK
        assert not [
            c for c in tel.counters if c.name == "tracemalloc_peak_bytes"
        ]

    def test_sample_memory_includes_heap_when_tracing(self):
        import tracemalloc

        tel = Telemetry("mem")
        tracemalloc.start()
        try:
            tel.sample_memory(superstep=0)
        finally:
            tracemalloc.stop()
        names = {c.name for c in tel.counters}
        assert {"peak_rss_bytes", "tracemalloc_peak_bytes"} <= names

    def test_null_telemetry_sample_memory_is_inert(self):
        NULL_TELEMETRY.sample_memory(superstep=1)
        assert NULL_TELEMETRY.counters == ()

    @pytest.mark.parametrize(
        "engine_cls", [BSPEngine, DenseBSPEngine]
    )
    def test_engines_sample_memory_per_superstep(self, graph, engine_cls):
        tel = Telemetry("cc")
        result = _cc_run(graph, engine_cls, telemetry=tel)
        samples = [
            c for c in tel.counters if c.name == "peak_rss_bytes"
        ]
        assert [c.superstep for c in samples] == list(
            range(result.num_supersteps)
        )
        assert all(c.track == MAIN_TRACK for c in samples)

    def test_sharded_engine_samples_worker_rss(self, graph):
        tel = Telemetry("cc-sharded")
        result = _cc_run(
            graph, ShardedBSPEngine, telemetry=tel, num_workers=2
        )
        main = [c for c in tel.counters if c.name == "peak_rss_bytes"]
        assert len(main) == result.num_supersteps
        workers = [
            c for c in tel.counters if c.name == "worker_peak_rss_bytes"
        ]
        assert {c.track for c in workers} == {
            worker_track(0), worker_track(1),
        }
        assert all(c.value > 0 for c in workers)

    def test_graphct_samples_on_kernel_miss_only(self, graph):
        tel = Telemetry("wf")
        wf = GraphCT(graph, telemetry=tel)
        wf.connected_components()
        n = len([c for c in tel.counters if c.name == "peak_rss_bytes"])
        assert n == 1
        wf.connected_components()  # cache hit: no kernel, no sample
        assert (
            len([c for c in tel.counters if c.name == "peak_rss_bytes"])
            == n
        )

    def test_memory_summary_shapes(self, graph):
        assert memory_summary(Telemetry("empty")) == {}
        tel = Telemetry("cc-sharded")
        _cc_run(graph, ShardedBSPEngine, telemetry=tel, num_workers=2)
        summary = memory_summary(tel)
        assert summary["peak_rss_bytes"] > 0
        assert set(summary["worker_peak_rss_bytes"]) == {"0", "1"}
        report = telemetry_report(tel)
        assert report["memory"] == summary


# ---------------------------------------------------------------------
# Measured vs modeled
# ---------------------------------------------------------------------
class TestCorrelation:
    def test_correlate_joins_on_superstep(self, graph):
        tel = Telemetry("cc")
        res = bsp_connected_components(graph, telemetry=tel)
        rows = correlate(tel, res.trace, XMTMachine())
        assert [r.superstep for r in rows] == list(
            range(res.num_supersteps)
        )
        for r in rows:
            assert r.regions and r.measured_seconds > 0
            assert r.modeled_seconds > 0 and r.ratio is not None

    def test_correlate_sharded_two_workers(self, graph):
        tel = Telemetry("cc-sharded")
        res = _cc_run(
            graph, ShardedBSPEngine, telemetry=tel, num_workers=2
        )
        # The parallel barrier/combine machinery is instrumented...
        assert tel.spans_named("barrier", track=MAIN_TRACK)
        assert tel.spans_named("combine", track=MAIN_TRACK)
        # ...and the join still lines up superstep for superstep: the
        # sharded engine replays the same program, so the modeled trace
        # correlates against measured sharded supersteps unchanged.
        rows = correlate(tel, res.trace, XMTMachine())
        assert [r.superstep for r in rows] == list(
            range(res.num_supersteps)
        )
        for r in rows:
            assert r.regions and r.measured_seconds > 0
            assert r.modeled_seconds > 0 and r.ratio is not None
        # Barrier + combine wall-clock is part of the measured superstep.
        steps = tel.spans_named("superstep", track=MAIN_TRACK)
        for name in ("barrier", "combine"):
            for sp in tel.spans_named(name, track=MAIN_TRACK):
                assert steps[sp.superstep].contains(sp)

    def test_missing_measured_side_is_visible(self, graph):
        res = bsp_connected_components(graph)
        rows = correlate(Telemetry("empty"), res.trace, XMTMachine())
        assert rows and all(r.span.category == "missing" for r in rows)
        assert all(r.measured_seconds == 0.0 for r in rows)

    def test_table_renders(self, graph):
        tel = Telemetry("cc")
        res = bsp_connected_components(graph, telemetry=tel)
        rows = measured_vs_modeled(tel, res.trace, XMTMachine())
        table = format_measured_vs_modeled(
            rows, processors=128, title="cc"
        )
        assert "meas/model" in table and "all" in table
        # title + header + 2 separators + totals row around the rows
        assert len(table.splitlines()) == len(rows) + 5


# ---------------------------------------------------------------------
# The profile CLI
# ---------------------------------------------------------------------
class TestProfileCLI:
    def test_profile_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "profile",
                "--algorithm", "cc",
                "--engine", "dense",
                "--scale", "8",
                "--out-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "meas/model" in out
        trace = json.loads((tmp_path / "trace_cc-dense.json").read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        report = json.loads(
            (tmp_path / "profile_cc-dense.json").read_text()
        )
        assert report["schema_version"] == 1
        assert report["config"]["algorithm"] == "cc"
        assert report["measured_vs_modeled"]
        assert report["telemetry"]["spans"]
        # Memory footprint block: tracemalloc is on by default.
        assert report["memory"]["peak_rss_bytes"] > 0
        assert report["memory"]["tracemalloc_peak_bytes"] > 0
        assert "memory  peak_rss_bytes:" in out

    def test_profile_no_tracemalloc_flag(self, tmp_path, capsys):
        from repro.telemetry.profile import main

        rc = main(
            [
                "--algorithm", "cc",
                "--engine", "reference",
                "--scale", "8",
                "--no-tracemalloc",
                "--out-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        report = json.loads(
            (tmp_path / "profile_cc-reference.json").read_text()
        )
        assert report["memory"]["peak_rss_bytes"] > 0
        assert "tracemalloc_peak_bytes" not in report["memory"]

    def test_profile_sharded_has_worker_rows(self, tmp_path, capsys):
        from repro.telemetry.profile import main

        rc = main(
            [
                "--algorithm", "cc",
                "--engine", "sharded",
                "--workers", "2",
                "--scale", "8",
                "--out-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        trace = json.loads(
            (tmp_path / "trace_cc-sharded-w2.json").read_text()
        )
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"engine", "worker 0", "worker 1"} <= names
        report = json.loads(
            (tmp_path / "profile_cc-sharded-w2.json").read_text()
        )
        workers = report["memory"]["worker_peak_rss_bytes"]
        assert set(workers) == {"0", "1"}
        assert all(v > 0 for v in workers.values())
