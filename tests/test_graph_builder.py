"""Unit tests for graph construction and normalization."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, from_edge_array, from_edge_list


class TestNormalization:
    def test_self_loops_removed(self):
        g = from_edge_list([(0, 0), (0, 1), (1, 1)])
        assert sorted(g.edges()) == [(0, 1)]

    def test_self_loops_kept_when_disabled(self):
        g = from_edge_list([(0, 0), (0, 1)], remove_self_loops=False)
        assert (0, 0) in list(g.edges())

    def test_duplicates_removed(self):
        g = from_edge_list([(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1

    def test_duplicates_kept_when_disabled(self):
        g = from_edge_list([(0, 1), (0, 1)], deduplicate=False, directed=True)
        assert g.num_arcs == 2

    def test_undirected_symmetrized(self):
        g = from_edge_list([(0, 1)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_directed_not_symmetrized(self):
        g = from_edge_list([(0, 1)], directed=True)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_adjacency_sorted(self):
        g = from_edge_list([(0, 5), (0, 2), (0, 9), (0, 1)], num_vertices=10)
        assert g.neighbors(0).tolist() == [1, 2, 5, 9]

    def test_isolated_vertices_via_num_vertices(self):
        g = from_edge_list([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list([(0, 7)], num_vertices=3)

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list([(-1, 0)], num_vertices=3)

    def test_empty_graph(self):
        g = from_edge_list([], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0

    def test_zero_vertex_graph(self):
        g = from_edge_list([])
        assert g.num_vertices == 0

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(m, 2\)"):
            from_edge_array(np.array([[0, 1, 2]]))


class TestWeightedConstruction:
    def test_weights_follow_symmetrization(self):
        g = from_edge_list([(0, 1), (1, 2)], weights=[3.0, 4.0])
        assert g.edge_weights(0).tolist() == [3.0]
        assert sorted(g.edge_weights(1).tolist()) == [3.0, 4.0]

    def test_weight_length_checked(self):
        with pytest.raises(ValueError, match="one entry per"):
            from_edge_list([(0, 1)], weights=[1.0, 2.0])

    def test_duplicate_weight_keeps_first_sorted(self):
        g = from_edge_list(
            [(0, 1), (0, 1)], weights=[9.0, 9.0], directed=True
        )
        assert g.edge_weights(0).tolist() == [9.0]


class TestGraphBuilder:
    def test_incremental_batches(self):
        b = GraphBuilder(num_vertices=4)
        b.add_edge(0, 1)
        b.add_edges([(1, 2), (2, 3)])
        g = b.build()
        assert g.num_edges == 3
        assert b.num_buffered_edges == 3

    def test_empty_build(self):
        g = GraphBuilder(num_vertices=2).build()
        assert g.num_vertices == 2 and g.num_edges == 0

    def test_weighted_batches(self):
        b = GraphBuilder(num_vertices=3)
        b.add_edges([(0, 1)], weights=[1.5])
        b.add_edge(1, 2, weight=2.5)
        g = b.build()
        assert g.is_weighted
        assert g.edge_weights(2).tolist() == [2.5]

    def test_mixed_weighting_rejected(self):
        b = GraphBuilder()
        b.add_edges([(0, 1)])
        with pytest.raises(ValueError, match="mix"):
            b.add_edges([(1, 2)], weights=[1.0])

    def test_weight_length_validated(self):
        b = GraphBuilder()
        with pytest.raises(ValueError, match="one entry per edge"):
            b.add_edges([(0, 1), (1, 2)], weights=[1.0])

    def test_directed_builder(self):
        b = GraphBuilder(directed=True)
        b.add_edges([(0, 1), (1, 0)])
        g = b.build()
        assert g.num_arcs == 2 and g.directed

    def test_builder_reusable_after_build(self):
        b = GraphBuilder(num_vertices=3)
        b.add_edges([(0, 1)])
        g1 = b.build()
        b.add_edges([(1, 2)])
        g2 = b.build()
        assert g1.num_edges == 1
        assert g2.num_edges == 2
