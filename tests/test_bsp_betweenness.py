"""Tests for BSP betweenness centrality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp_algorithms import bsp_betweenness_centrality
from repro.graph import from_edge_list, path_graph, ring_graph, star_graph
from repro.graphct import betweenness_centrality


class TestCorrectness:
    def test_matches_shared_memory_exact(self, small_rmat):
        shm = betweenness_centrality(small_rmat)
        bsp = bsp_betweenness_centrality(small_rmat)
        assert np.allclose(shm.scores, bsp.scores)
        assert bsp.exact

    def test_path_center_dominates(self):
        res = bsp_betweenness_centrality(path_graph(7))
        assert int(np.argmax(res.scores)) == 3
        assert res.scores[0] == 0 and res.scores[6] == 0

    def test_star_hub(self):
        res = bsp_betweenness_centrality(star_graph(8))
        assert res.scores[0] > 0
        assert np.all(res.scores[1:] == 0)

    def test_ring_uniform(self):
        res = bsp_betweenness_centrality(ring_graph(9))
        assert np.allclose(res.scores, res.scores[0])

    def test_sampled_scaling(self, small_rmat):
        exact = bsp_betweenness_centrality(small_rmat)
        approx = bsp_betweenness_centrality(
            small_rmat, num_sources=128, seed=3
        )
        assert not approx.exact
        top = int(np.argmax(exact.scores))
        rank = int((approx.scores >= approx.scores[top]).sum())
        assert rank <= small_rmat.num_vertices // 20

    def test_validation(self):
        with pytest.raises(ValueError):
            bsp_betweenness_centrality(ring_graph(4), num_sources=0)
        with pytest.raises(ValueError):
            bsp_betweenness_centrality(ring_graph(4), num_sources=9)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_matches_shared_memory(self, data):
        n = data.draw(st.integers(min_value=2, max_value=12))
        m = data.draw(st.integers(min_value=0, max_value=30))
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=m, max_size=m,
            )
        )
        g = from_edge_list(edges, n)
        shm = betweenness_centrality(g)
        bsp = bsp_betweenness_centrality(g)
        assert np.allclose(shm.scores, bsp.scores)


class TestSuperstepAccounting:
    def test_waves_recorded(self):
        res = bsp_betweenness_centrality(path_graph(4), num_sources=1,
                                         seed=0)
        # One source on a path: forward wave + backward wave supersteps.
        assert res.num_supersteps == len(res.messages_per_superstep)
        assert len(res.trace) == res.num_supersteps
        assert all(r.kind == "superstep" for r in res.trace)

    def test_forward_messages_bound_by_arcs_per_level(self, small_rmat):
        res = bsp_betweenness_centrality(small_rmat, num_sources=4, seed=2)
        assert all(
            m <= small_rmat.num_arcs for m in res.messages_per_superstep
        )

    def test_scores_nonnegative(self, small_rmat):
        res = bsp_betweenness_centrality(small_rmat, num_sources=16, seed=5)
        assert (res.scores >= -1e-9).all()
