"""Tests for community detection (both programming models) and
modularity."""

import numpy as np
import pytest

from repro.bsp import BSPEngine
from repro.bsp_algorithms import (
    BSPLabelPropagation,
    bsp_label_propagation_communities,
)
from repro.graph import from_edge_list, ring_graph, rmat
from repro.graphct import label_propagation_communities, modularity


def clique(vertices):
    return [
        (a, b) for i, a in enumerate(vertices) for b in vertices[i + 1:]
    ]


@pytest.fixture
def two_cliques():
    """Two 5-cliques joined by one bridge edge: two clear communities."""
    return from_edge_list(
        clique([0, 1, 2, 3, 4]) + clique([5, 6, 7, 8, 9]) + [(4, 5)]
    )


@pytest.fixture
def planted_partition():
    """Two dense random blocks with sparse cross links."""
    rng = np.random.default_rng(1)
    edges = np.vstack(
        [
            rng.integers(0, 30, (400, 2)),
            rng.integers(30, 60, (400, 2)),
            np.column_stack(
                [rng.integers(0, 30, 10), rng.integers(30, 60, 10)]
            ),
        ]
    )
    return from_edge_list(edges, 60)


class TestModularity:
    def test_perfect_split(self, two_cliques):
        labels = np.array([0] * 5 + [5] * 5)
        q = modularity(two_cliques, labels)
        assert q > 0.4

    def test_single_community_is_zero(self, two_cliques):
        assert modularity(two_cliques, np.zeros(10)) == pytest.approx(0.0)

    def test_singletons_negative(self, two_cliques):
        q = modularity(two_cliques, np.arange(10))
        assert q < 0

    def test_empty_graph(self):
        g = from_edge_list([], num_vertices=3)
        assert modularity(g, np.zeros(3)) == 0.0

    def test_label_shape_checked(self, two_cliques):
        with pytest.raises(ValueError, match="one entry per vertex"):
            modularity(two_cliques, np.zeros(3))

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(ValueError):
            modularity(g, np.zeros(2))

    def test_bounded_above_by_one(self, planted_partition):
        labels = np.array([0] * 30 + [30] * 30)
        assert modularity(planted_partition, labels) <= 1.0


class TestSharedMemoryLPA:
    def test_two_cliques_recovered(self, two_cliques):
        res = label_propagation_communities(two_cliques)
        assert res.num_communities == 2
        assert res.modularity > 0.4
        # Each clique is uniform.
        assert len(set(res.labels[:5].tolist())) == 1
        assert len(set(res.labels[5:].tolist())) == 1

    def test_planted_partition_recovered(self, planted_partition):
        res = label_propagation_communities(planted_partition)
        assert res.modularity > 0.3

    def test_labels_are_member_ids(self, two_cliques):
        res = label_propagation_communities(two_cliques)
        for label in np.unique(res.labels):
            assert res.labels[label] == label  # canonical smallest member

    def test_terminates_with_no_changes(self, two_cliques):
        res = label_propagation_communities(two_cliques)
        assert res.changes_per_iteration[-1] == 0

    def test_max_iterations_cap(self, planted_partition):
        res = label_propagation_communities(
            planted_partition, max_iterations=1
        )
        assert res.num_iterations == 1

    def test_validation(self, two_cliques):
        with pytest.raises(ValueError):
            label_propagation_communities(two_cliques, max_iterations=0)
        with pytest.raises(ValueError):
            label_propagation_communities(
                from_edge_list([(0, 1)], directed=True)
            )

    def test_communities_never_cross_components(self):
        g = from_edge_list([(0, 1), (2, 3)], num_vertices=4)
        res = label_propagation_communities(g)
        assert res.labels[0] != res.labels[2]

    def test_trace_has_one_region_per_sweep(self, two_cliques):
        res = label_propagation_communities(two_cliques)
        assert len(res.trace) == res.num_iterations


class TestBSPLPA:
    def test_two_cliques_recovered(self, two_cliques):
        res = bsp_label_propagation_communities(two_cliques)
        assert res.num_communities == 2
        assert res.modularity > 0.4

    def test_planted_partition_recovered(self, planted_partition):
        res = bsp_label_propagation_communities(planted_partition)
        assert res.modularity > 0.3

    def test_engine_equivalence(self, two_cliques):
        eng = BSPEngine(two_cliques).run(BSPLabelPropagation())
        vec = bsp_label_propagation_communities(two_cliques)
        ev = np.asarray(eng.values, dtype=np.int64)
        for label in np.unique(ev):
            members = np.flatnonzero(ev == label)
            ev[members] = members.min()
        assert np.array_equal(ev, vec.labels)
        assert eng.messages_per_superstep == vec.messages_per_superstep

    def test_superstep0_floods_all_edges(self, two_cliques):
        res = bsp_label_propagation_communities(two_cliques)
        assert res.messages_per_superstep[0] == two_cliques.num_arcs

    def test_max_supersteps_bounds_churn(self):
        """Community-free RMAT may never settle; the cap must hold."""
        g = rmat(scale=9, edge_factor=16, seed=1)
        res = bsp_label_propagation_communities(g, max_supersteps=10)
        assert res.num_supersteps <= 10

    def test_validation(self, two_cliques):
        with pytest.raises(ValueError):
            bsp_label_propagation_communities(
                two_cliques, max_supersteps=0
            )
        with pytest.raises(ValueError):
            bsp_label_propagation_communities(
                from_edge_list([(0, 1)], directed=True)
            )

    def test_ring_does_not_collapse_to_one_label_epidemic(self):
        """The per-vertex jitter must prevent global label flooding."""
        res = bsp_label_propagation_communities(ring_graph(64))
        assert res.num_communities > 2


class TestModelComparison:
    def test_same_quality_on_structured_graphs(
        self, two_cliques, planted_partition
    ):
        """Partitions may differ (stale reads) but quality must match."""
        for g in (two_cliques, planted_partition):
            shm = label_propagation_communities(g)
            bsp = bsp_label_propagation_communities(g)
            assert abs(shm.modularity - bsp.modularity) < 0.25

    def test_graphct_workflow_dispatch(self, two_cliques):
        from repro.graphct import GraphCT

        wf = GraphCT(two_cliques)
        res = wf.label_propagation_communities()
        assert res.num_communities == 2
