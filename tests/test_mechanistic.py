"""Cross-validation of the analytic cost model against the mechanistic
(stream-scheduler) pricing — the evidence that licenses using the
analytic model for every experiment."""

import pytest

from repro.analysis.workload import ExperimentConfig, build_workload
from repro.bsp_algorithms import bsp_connected_components
from repro.graphct import breadth_first_search, connected_components
from repro.xmt import RegionTrace, XMTMachine
from repro.xmt.cost_model import simulate_region
from repro.xmt.mechanistic import price_region_mechanistically


@pytest.fixture(scope="module")
def machine():
    return XMTMachine(num_processors=128)


@pytest.fixture(scope="module")
def experiment_regions():
    wl = build_workload(ExperimentConfig(scale=11))
    regions = []
    regions += list(connected_components(wl.graph).trace)
    regions += list(breadth_first_search(wl.graph, wl.bfs_source).trace)
    regions += list(bsp_connected_components(wl.graph).trace)
    return regions


class TestCrossValidation:
    def test_real_regions_agree_within_25_percent(
        self, experiment_regions, machine
    ):
        """Every region the experiments actually produce must price the
        same under both models (hotspot-bound regions excluded: the
        mechanistic path has no memory-controller model)."""
        checked = 0
        for region in experiment_regions:
            analytic = simulate_region(region, machine)
            if analytic.bound == "hotspot":
                continue
            mech = price_region_mechanistically(region, machine)
            ratio = mech.cycles / max(analytic.total_cycles, 1.0)
            assert 0.7 <= ratio <= 1.4, (
                f"{region.name} iter {region.iteration}: ratio {ratio}"
            )
            checked += 1
        assert checked >= 10  # the comparison covered real work

    def test_processor_scaling_agrees(self, machine):
        region = RegionTrace(
            name="r", parallel_items=500_000,
            instructions=4e6, reads=1e6, writes=5e5,
        )
        for p in (8, 32, 128):
            m = machine.with_processors(p)
            analytic = simulate_region(region, m).total_cycles
            mech = price_region_mechanistically(region, m).cycles
            assert 0.6 <= mech / analytic <= 1.6, f"P={p}"

    def test_serial_region_priced_by_latency_chain(self, machine):
        region = RegionTrace(
            name="s", parallel_items=1, reads=200, instructions=200,
        )
        analytic = simulate_region(region, machine)
        mech = price_region_mechanistically(region, machine)
        assert 0.7 <= mech.cycles / analytic.total_cycles <= 1.4


class TestMechanisticEdgeCases:
    def test_empty_region_costs_overhead_only(self, machine):
        region = RegionTrace(name="empty", parallel_items=0)
        price = price_region_mechanistically(region, machine)
        analytic = simulate_region(region, machine)
        assert price.cycles == pytest.approx(analytic.overhead_cycles)
        assert price.utilization == 0.0

    def test_superstep_overhead_included(self, machine):
        loop = RegionTrace(name="l", parallel_items=10, instructions=100)
        superstep = RegionTrace(
            name="s", parallel_items=10, instructions=100, kind="superstep"
        )
        diff = (
            price_region_mechanistically(superstep, machine).cycles
            - price_region_mechanistically(loop, machine).cycles
        )
        assert diff == pytest.approx(machine.superstep_overhead_cycles)

    def test_sampling_kicks_in_for_huge_regions(self, machine):
        region = RegionTrace(
            name="huge", parallel_items=10_000_000,
            instructions=5e9, reads=1e9,
        )
        price = price_region_mechanistically(region, machine)
        assert price.sampling_factor < 1.0
        analytic = simulate_region(region, machine)
        assert 0.5 <= price.cycles / analytic.total_cycles <= 2.0

    def test_pure_alu_region_high_utilization(self, machine):
        region = RegionTrace(
            name="alu", parallel_items=100_000, instructions=1e6,
        )
        price = price_region_mechanistically(region, machine)
        # Short 10-instruction chains leave a pipeline-drain tail; the
        # scheduler still keeps the issue slot >80% busy.
        assert price.utilization > 0.8
