"""Tests for the BSP engine, messages, combiners, and aggregators."""

import numpy as np
import pytest

from repro.bsp import (
    BSPEngine,
    LogicalAndAggregator,
    LogicalOrAggregator,
    MaxAggregator,
    MaxCombiner,
    MessageBuffer,
    MinAggregator,
    MinCombiner,
    SumAggregator,
    SumCombiner,
    VertexProgram,
)
from repro.graph import from_edge_list, path_graph, ring_graph


class Noop(VertexProgram):
    def compute(self, ctx, messages):
        ctx.vote_to_halt()


class EchoOnce(VertexProgram):
    """Superstep 0: send own id to neighbours; superstep 1: store max."""

    def initial_value(self, vertex, graph):
        return -1

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_to_neighbors(ctx.vertex_id)
        else:
            ctx.value = max(messages)
        ctx.vote_to_halt()


class TestMessageBuffer:
    def test_send_and_receive(self):
        buf = MessageBuffer(4)
        buf.send(0, 2, "a")
        buf.send(1, 2, "b")
        assert buf.messages_for(2) == ["a", "b"]
        assert buf.messages_for(3) == []
        assert buf.total_sent == 2
        assert list(buf.destinations()) == [2]

    def test_out_of_range_target(self):
        buf = MessageBuffer(2)
        with pytest.raises(IndexError):
            buf.send(0, 2, "x")
        with pytest.raises(IndexError):
            buf.send(0, -1, "x")

    def test_combiner_folds(self):
        buf = MessageBuffer(3, MinCombiner())
        buf.send(0, 1, 5)
        buf.send(2, 1, 3)
        buf.send(2, 1, 9)
        assert buf.messages_for(1) == [3]
        assert buf.total_sent == 3        # send-side accounting unchanged
        assert buf.total_delivered == 1   # one folded message delivered

    def test_queue_pressure(self):
        buf = MessageBuffer(3)
        for _ in range(5):
            buf.send(0, 1, 0)
        buf.send(0, 2, 0)
        assert buf.max_queue_pressure() == 5
        assert buf.enqueues_per_destination.tolist() == [0, 5, 1]

    def test_empty(self):
        buf = MessageBuffer(2)
        assert buf.is_empty
        assert buf.max_queue_pressure() == 0

    def test_zero_vertices(self):
        assert MessageBuffer(0).max_queue_pressure() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MessageBuffer(-1)

    def test_messages_for_returns_a_copy(self):
        """Mutating the returned list must not corrupt the queue."""
        buf = MessageBuffer(3)
        buf.send(0, 1, "a")
        got = buf.messages_for(1)
        got.clear()
        got.append("bogus")
        assert buf.messages_for(1) == ["a"]

    def test_restore_replays_pending(self):
        buf = MessageBuffer(3)
        buf.send(0, 1, "a")
        buf.send(0, 2, "b")
        clone = MessageBuffer.restore(3, None, buf.all_messages())
        assert sorted(clone.all_messages()) == sorted(buf.all_messages())
        assert clone.total_sent == buf.total_sent
        assert (
            clone.enqueues_per_destination.tolist()
            == buf.enqueues_per_destination.tolist()
        )

    def test_restore_reproduces_combined_counters(self):
        """A combined buffer keeps only folded messages, so a replay
        alone undercounts the send-side accounting; the explicit counters
        restore it exactly."""
        buf = MessageBuffer(3, MinCombiner())
        for m in (5, 3, 9):
            buf.send(0, 1, m)
        buf.send(0, 2, 7)
        pending = buf.all_messages()
        assert len(pending) == 2  # folded: one message per destination
        replayed = MessageBuffer.restore(3, MinCombiner(), pending)
        assert replayed.total_sent == 2  # the undercount being fixed
        exact = MessageBuffer.restore(
            3,
            MinCombiner(),
            pending,
            total_sent=buf.total_sent,
            enqueues_per_destination=buf.enqueues_per_destination,
        )
        assert exact.total_sent == 4
        assert exact.enqueues_per_destination.tolist() == [0, 3, 1]
        assert exact.messages_for(1) == [3]

    def test_restore_rejects_misshaped_histogram(self):
        """Regression: a truncated checkpoint histogram used to restore
        verbatim, misaligning the hotspot counters against vertex ids."""
        buf = MessageBuffer(4)
        buf.send(0, 1, "a")
        pending = buf.all_messages()
        with pytest.raises(ValueError, match="enqueues_per_destination"):
            MessageBuffer.restore(
                4, None, pending,
                enqueues_per_destination=np.array([1, 0], dtype=np.int64),
            )
        with pytest.raises(ValueError, match="enqueues_per_destination"):
            MessageBuffer.restore(
                4, None, pending,
                enqueues_per_destination=np.zeros((2, 4), dtype=np.int64),
            )

    def test_restore_rejects_negative_histogram_entry(self):
        with pytest.raises(ValueError, match="negative"):
            MessageBuffer.restore(
                2, None, [],
                enqueues_per_destination=np.array([1, -1], dtype=np.int64),
            )

    def test_restore_rejects_undercounting_total_sent(self):
        """total_sent must cover the replayed deliveries: a corrupt
        counter below the pending-message count means lost accounting."""
        buf = MessageBuffer(3)
        buf.send(0, 1, "a")
        buf.send(0, 2, "b")
        with pytest.raises(ValueError, match="total_sent"):
            MessageBuffer.restore(3, None, buf.all_messages(), total_sent=1)
        # Exactly covering (or exceeding, for combined replays) is fine.
        ok = MessageBuffer.restore(
            3, None, buf.all_messages(), total_sent=2
        )
        assert ok.total_sent == 2

    def test_restore_valid_counters_roundtrip_unchanged(self):
        buf = MessageBuffer(3)
        for _ in range(4):
            buf.send(0, 1, 1)
        clone = MessageBuffer.restore(
            3, None, buf.all_messages(),
            total_sent=buf.total_sent,
            enqueues_per_destination=buf.enqueues_per_destination,
        )
        assert clone.total_sent == 4
        assert clone.enqueues_per_destination.tolist() == [0, 4, 0]


class TestCombiners:
    def test_min_max_sum(self):
        assert MinCombiner().combine(3, 5) == 3
        assert MaxCombiner().combine(3, 5) == 5
        assert SumCombiner().combine(3, 5) == 8


class TestAggregators:
    def test_identities(self):
        assert SumAggregator().identity() == 0
        assert MinAggregator().identity() is None
        assert MaxAggregator().identity() is None
        assert LogicalAndAggregator().identity() is True
        assert LogicalOrAggregator().identity() is False

    def test_reduce(self):
        assert SumAggregator().reduce(1, 2) == 3
        assert MinAggregator().reduce(None, 7) == 7
        assert MinAggregator().reduce(7, 9) == 7
        assert MaxAggregator().reduce(None, 7) == 7
        assert MaxAggregator().reduce(7, 9) == 9
        assert LogicalAndAggregator().reduce(True, False) is False
        assert LogicalOrAggregator().reduce(False, True) is True


class TestEngineSemantics:
    def test_halt_terminates_immediately(self):
        res = BSPEngine(ring_graph(4)).run(Noop())
        assert res.num_supersteps == 1
        assert res.active_per_superstep == [4]
        assert res.messages_per_superstep == [0]

    def test_messages_cross_superstep_boundary(self):
        res = BSPEngine(path_graph(3)).run(EchoOnce())
        assert res.num_supersteps == 2
        assert res.values == [1, 2, 1]

    def test_message_reactivates_halted_vertex(self):
        class Chain(VertexProgram):
            def initial_value(self, vertex, graph):
                return None

            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    if ctx.vertex_id == 0:
                        ctx.value = 0
                        ctx.send(1, 0)
                elif messages:
                    ctx.value = messages[0] + 1
                    nxt = ctx.vertex_id + 1
                    if nxt < ctx.num_vertices:
                        ctx.send(nxt, ctx.value)
                ctx.vote_to_halt()

        res = BSPEngine(path_graph(4)).run(Chain())
        assert res.values == [0, 1, 2, 3]
        assert res.num_supersteps == 4

    def test_initial_active_restricts_superstep0(self):
        class CountCompute(VertexProgram):
            def initial_value(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                ctx.value += 1
                ctx.vote_to_halt()

        res = BSPEngine(ring_graph(5)).run(
            CountCompute(), initial_active=[2]
        )
        assert res.active_per_superstep == [1]
        assert res.values == [0, 0, 1, 0, 0]

    def test_initial_active_out_of_range(self):
        with pytest.raises(IndexError):
            BSPEngine(ring_graph(3)).run(Noop(), initial_active=[9])

    def test_max_supersteps_cap(self):
        class Forever(VertexProgram):
            def compute(self, ctx, messages):
                ctx.send_to_neighbors(0)

        res = BSPEngine(ring_graph(3)).run(Forever(), max_supersteps=5)
        assert res.num_supersteps == 5

    def test_max_supersteps_validated(self):
        with pytest.raises(ValueError):
            BSPEngine(ring_graph(3)).run(Noop(), max_supersteps=0)

    def test_not_halting_keeps_vertex_active(self):
        class TwoSteps(VertexProgram):
            def initial_value(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                ctx.value += 1
                if ctx.superstep >= 1:
                    ctx.vote_to_halt()

        res = BSPEngine(ring_graph(3)).run(TwoSteps())
        assert res.values == [2, 2, 2]
        assert res.num_supersteps == 2

    def test_combiner_reduces_delivered_messages(self):
        class SendAll(VertexProgram):
            def initial_value(self, vertex, graph):
                return None

            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send_to_neighbors(ctx.vertex_id)
                else:
                    ctx.value = messages
                ctx.vote_to_halt()

        g = from_edge_list([(0, 2), (1, 2)], num_vertices=3)
        plain = BSPEngine(g).run(SendAll())
        combined = BSPEngine(g, combiner=MinCombiner()).run(SendAll())
        assert sorted(plain.values[2]) == [0, 1]
        assert combined.values[2] == [0]

    def test_aggregator_visible_next_superstep(self):
        class AggProgram(VertexProgram):
            def initial_value(self, vertex, graph):
                return None

            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    assert ctx.aggregated("total") == 0  # identity
                    ctx.aggregate("total", 1)
                    ctx.send_to_neighbors(0)  # keep everyone alive
                elif ctx.superstep == 1:
                    ctx.value = ctx.aggregated("total")
                    ctx.vote_to_halt()
                else:
                    ctx.vote_to_halt()

        res = BSPEngine(
            ring_graph(4), aggregators={"total": SumAggregator()}
        ).run(AggProgram())
        assert res.values == [4, 4, 4, 4]
        assert res.aggregator_history["total"][0] == 4

    def test_unknown_aggregator_raises(self):
        class BadAgg(VertexProgram):
            def compute(self, ctx, messages):
                ctx.aggregate("nope", 1)

        with pytest.raises(KeyError, match="nope"):
            BSPEngine(ring_graph(3)).run(BadAgg())

    def test_program_may_mutate_its_messages(self):
        """A program sorting/popping its ``messages`` argument must not
        corrupt the queue another vertex still reads (regression: the
        buffer used to hand out its internal list)."""

        class GreedyMin(VertexProgram):
            def initial_value(self, vertex, graph):
                return None

            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send(2, ctx.vertex_id)
                    ctx.send(2, ctx.vertex_id + 10)
                elif messages:
                    messages.sort()
                    ctx.value = messages.pop(0)
                    messages.clear()
                ctx.vote_to_halt()

        g = from_edge_list([(0, 2), (1, 2)], num_vertices=3)
        res = BSPEngine(g).run(GreedyMin())
        assert res.values[2] == 0

    def test_result_values_do_not_alias_engine_state(self):
        """A stored result must survive later mutation of the engine's
        run state (regression: ``BSPResult.values`` aliased it)."""
        engine = BSPEngine(path_graph(3))
        res = engine.run(EchoOnce())
        assert res.values == [1, 2, 1]
        engine.values[0] = 999
        assert res.values == [1, 2, 1]
        rerun = engine.run(Noop())
        assert res.values == [1, 2, 1]
        assert rerun.values == [None, None, None]

    def test_send_to_arbitrary_vertex(self):
        """Pregel: a vertex may message any vertex it can identify."""

        class Remote(VertexProgram):
            def initial_value(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.send(ctx.num_vertices - 1, 42)  # not a neighbour
                for m in messages:
                    ctx.value += m
                ctx.vote_to_halt()

        res = BSPEngine(path_graph(5)).run(Remote())
        assert res.values[4] == 42


class TestEngineInstrumentation:
    def test_one_superstep_region_each(self):
        res = BSPEngine(ring_graph(4)).run(EchoOnce())
        assert len(res.trace) == res.num_supersteps
        assert all(r.kind == "superstep" for r in res.trace)
        assert [r.iteration for r in res.trace] == [0, 1]

    def test_message_traffic_accounted(self):
        res = BSPEngine(ring_graph(4)).run(EchoOnce())
        first = res.trace.regions[0]
        assert first.writes >= 8  # 8 messages x enqueue writes
        assert first.atomics > 0
        second = res.trace.regions[1]
        assert second.reads >= 8  # deliveries

    def test_hotspot_reflects_indegree(self):
        g = from_edge_list([(i, 9) for i in range(9)], num_vertices=10)
        res = BSPEngine(g).run(EchoOnce())
        first = res.trace.regions[0]
        assert first.atomic_max_site >= 9  # hub queue takes 9 enqueues

    def test_values_array_helper(self):
        res = BSPEngine(path_graph(3)).run(EchoOnce())
        arr = res.values_array(dtype=np.float64)
        assert arr.tolist() == [1.0, 2.0, 1.0]

    def test_values_array_maps_none(self):
        class Lazy(VertexProgram):
            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        res = BSPEngine(path_graph(2)).run(Lazy())
        arr = res.values_array(none_as=-5.0)
        assert arr.tolist() == [-5.0, -5.0]
