"""Tests for cluster vertex partitioning — the paper's §II load-balance
claim made measurable."""

import numpy as np
import pytest

from repro.cluster.partition import (
    balanced_edge_partition,
    hash_partition,
    partition_stats,
    shard_indices,
)
from repro.graph import ring_graph, rmat, star_graph


class TestHashPartition:
    def test_assignment_shape_and_range(self, small_rmat):
        a = hash_partition(small_rmat, 8)
        assert a.shape == (small_rmat.num_vertices,)
        assert a.min() >= 0 and a.max() < 8

    def test_deterministic_per_seed(self, small_rmat):
        assert np.array_equal(
            hash_partition(small_rmat, 8, seed=1),
            hash_partition(small_rmat, 8, seed=1),
        )
        assert not np.array_equal(
            hash_partition(small_rmat, 8, seed=1),
            hash_partition(small_rmat, 8, seed=2),
        )

    def test_vertices_balanced(self, small_rmat):
        stats = partition_stats(
            small_rmat, hash_partition(small_rmat, 8)
        )
        assert stats.vertex_imbalance < 1.3

    def test_validation(self, small_rmat):
        with pytest.raises(ValueError):
            hash_partition(small_rmat, 0)


class TestPaperClaim:
    """§II: uniform vertex hashing leaves edges uneven on scale-free
    graphs; degree-aware placement fixes it."""

    def test_hash_partition_edges_imbalanced_on_rmat(self):
        # The effect strengthens with machine count (the hub's machine
        # load stays put while the mean shrinks): 1.3x at 8 machines,
        # 2x at 32 on the scale-12 miniature.
        g = rmat(scale=12, edge_factor=16, seed=1)
        stats = partition_stats(g, hash_partition(g, 32))
        assert stats.edge_imbalance > 1.5

    def test_imbalance_grows_with_machines(self):
        g = rmat(scale=12, edge_factor=16, seed=1)
        small = partition_stats(g, hash_partition(g, 8)).edge_imbalance
        large = partition_stats(g, hash_partition(g, 64)).edge_imbalance
        assert large > small

    def test_balanced_partition_fixes_edge_imbalance(self):
        g = rmat(scale=12, edge_factor=16, seed=1)
        hashed = partition_stats(g, hash_partition(g, 32))
        balanced = partition_stats(g, balanced_edge_partition(g, 32))
        assert balanced.edge_imbalance < hashed.edge_imbalance
        assert balanced.edge_imbalance < 1.15

    def test_uniform_graph_is_balanced_either_way(self):
        g = ring_graph(1024)
        stats = partition_stats(g, hash_partition(g, 8))
        assert stats.edge_imbalance < 1.2

    def test_star_hub_dominates_one_machine(self):
        g = star_graph(1000)
        stats = partition_stats(g, hash_partition(g, 8))
        # The hub's machine receives ~1000 incoming arcs; others ~125.
        assert stats.edge_imbalance > 4


class TestShardIndices:
    """The sharded BSP engine's view of an assignment array."""

    def test_inverse_of_assignment(self, small_rmat):
        assignment = hash_partition(small_rmat, 8)
        shards = shard_indices(assignment)
        assert len(shards) == 8
        merged = np.concatenate(shards)
        assert np.array_equal(np.sort(merged), np.arange(assignment.size))
        for m, shard in enumerate(shards):
            assert np.all(np.diff(shard) > 0)  # ascending, no duplicates
            assert np.all(assignment[shard] == m)

    def test_num_shards_extends_with_empty_shards(self):
        assignment = np.array([0, 0, 1])
        shards = shard_indices(assignment, num_shards=4)
        assert len(shards) == 4
        assert shards[2].size == 0 and shards[3].size == 0

    def test_num_shards_too_small_rejected(self):
        with pytest.raises(ValueError, match="references machine 3"):
            shard_indices(np.array([0, 3]), num_shards=2)

    def test_validation(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            shard_indices(np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError, match="non-negative"):
            shard_indices(np.array([0, -1]))

    def test_empty_assignment(self):
        shards = shard_indices(np.empty(0, dtype=np.int64), num_shards=3)
        assert len(shards) == 3
        assert all(s.size == 0 for s in shards)


class TestPartitionStats:
    def test_cut_fraction(self):
        g = ring_graph(8)
        all_one = partition_stats(g, np.zeros(8, dtype=int))
        assert all_one.cut_fraction == 0.0
        alternating = partition_stats(g, np.arange(8) % 2)
        assert alternating.cut_fraction == 1.0

    def test_arc_conservation(self, small_rmat):
        stats = partition_stats(small_rmat, hash_partition(small_rmat, 8))
        assert int(stats.arcs_per_machine.sum()) == small_rmat.num_arcs
        assert int(stats.vertices_per_machine.sum()) == (
            small_rmat.num_vertices
        )

    def test_shape_validated(self, small_rmat):
        with pytest.raises(ValueError, match="one entry per vertex"):
            partition_stats(small_rmat, np.zeros(3))

    def test_negative_machine_rejected(self, small_rmat):
        bad = np.zeros(small_rmat.num_vertices, dtype=int)
        bad[0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            partition_stats(small_rmat, bad)

    def test_balanced_partition_validation(self, small_rmat):
        with pytest.raises(ValueError):
            balanced_edge_partition(small_rmat, 0)
